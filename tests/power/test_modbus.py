"""Modbus register map, framing and CRC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.modbus import (
    ModbusError,
    ModbusMaster,
    ModbusSlave,
    crc16,
    decode_fixed,
    encode_fixed,
)


def make_pair():
    slave = ModbusSlave(unit_id=1)
    return slave, ModbusMaster(slave)


class TestCRC:
    def test_known_vector(self):
        # Standard Modbus reference vector.
        assert crc16(bytes([0x01, 0x03, 0x00, 0x00, 0x00, 0x01])) == 0x0A84

    def test_detects_corruption(self):
        slave, master = make_pair()
        body = bytes([1, 3, 0, 0, 0, 1])
        frame = body + b"\x00\x00"  # wrong CRC
        with pytest.raises(ModbusError):
            slave.handle(frame)


class TestFixedPoint:
    def test_roundtrip(self):
        assert decode_fixed(encode_fixed(25.43)) == pytest.approx(25.43)

    def test_negative_values(self):
        assert decode_fixed(encode_fixed(-8.5)) == pytest.approx(-8.5)

    def test_overflow_rejected(self):
        with pytest.raises(ModbusError):
            encode_fixed(400.0, scale=100.0)

    def test_decode_range_checked(self):
        with pytest.raises(ModbusError):
            decode_fixed(70000)

    @given(value=st.floats(-300.0, 300.0))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, value):
        # Half an LSB of quantisation error, plus float epsilon.
        assert decode_fixed(encode_fixed(value)) == pytest.approx(value, abs=0.0051)


class TestTransactions:
    def test_holding_roundtrip(self):
        _, master = make_pair()
        master.write_holding(10, 1234)
        assert master.read_holding(10) == [1234]

    def test_write_many(self):
        _, master = make_pair()
        master.write_many(5, [1, 2, 3])
        assert master.read_holding(5, 3) == [1, 2, 3]

    def test_input_registers(self):
        slave, master = make_pair()
        slave.set_input(0, encode_fixed(25.4))
        assert decode_fixed(master.read_input(0)[0]) == pytest.approx(25.4)

    def test_multi_register_read(self):
        slave, master = make_pair()
        for i in range(4):
            slave.set_input(i, i * 100)
        assert master.read_input(0, 4) == [0, 100, 200, 300]

    def test_read_beyond_bank(self):
        _, master = make_pair()
        with pytest.raises(ModbusError):
            master.read_holding(250, 10)

    def test_wrong_unit_id(self):
        slave = ModbusSlave(unit_id=2)
        other = ModbusSlave(unit_id=1)
        master = ModbusMaster(other)
        body = bytes([2, 3, 0, 0, 0, 1])
        import struct

        frame = body + struct.pack("<H", crc16(body))
        with pytest.raises(ModbusError):
            other.handle(frame)
        del slave, master

    def test_empty_write_many(self):
        _, master = make_pair()
        with pytest.raises(ValueError):
            master.write_many(0, [])

    @given(values=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_write_read_property(self, values):
        _, master = make_pair()
        master.write_many(0, values)
        assert master.read_holding(0, len(values)) == values


class TestValidation:
    def test_bad_unit_id(self):
        with pytest.raises(ValueError):
            ModbusSlave(unit_id=300)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            ModbusSlave(size=0)

    def test_address_bounds(self):
        slave = ModbusSlave(size=8)
        with pytest.raises(ModbusError):
            slave.set_input(8, 0)
