"""Transducers and the PLC scan cycle."""

import pytest

from repro.power.modbus import ModbusMaster, decode_fixed
from repro.power.plc import AnalogInputModule, ProgrammableLogicController
from repro.power.sensors import CurrentTransducer, Transducer, VoltageTransducer
from repro.sim.clock import Clock
from repro.sim.rng import RandomStreams


class TestTransducer:
    def test_ideal_passthrough_with_quantisation(self):
        sensor = Transducer(lambda: 25.4, lo=0.0, hi=50.0)
        assert sensor.read() == pytest.approx(25.4, abs=0.02)

    def test_range_clipping(self):
        sensor = Transducer(lambda: 99.0, lo=0.0, hi=50.0)
        assert sensor.read() == 50.0
        negative = Transducer(lambda: -5.0, lo=0.0, hi=50.0)
        assert negative.read() == 0.0

    def test_quantisation_levels(self):
        sensor = Transducer(lambda: 25.0, lo=0.0, hi=50.0, resolution_bits=4)
        step = 50.0 / 15
        assert sensor.read() % step == pytest.approx(0.0, abs=1e-9)

    def test_noise_applied(self):
        rng = RandomStreams(0).stream("noise")
        sensor = Transducer(lambda: 25.0, lo=0.0, hi=50.0, noise_std=0.5, rng=rng)
        readings = {round(sensor.read(), 3) for _ in range(20)}
        assert len(readings) > 1

    def test_gain_error(self):
        sensor = Transducer(lambda: 10.0, lo=0.0, hi=50.0, gain_error=0.1)
        assert sensor.read() == pytest.approx(11.0, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            Transducer(lambda: 0.0, lo=10.0, hi=5.0)
        with pytest.raises(ValueError):
            Transducer(lambda: 0.0, lo=0.0, hi=1.0, resolution_bits=0)

    def test_specialised_ranges(self):
        v = VoltageTransducer(lambda: 28.8)
        i = CurrentTransducer(lambda: -19.0)
        assert v.read() == pytest.approx(28.8, abs=0.1)
        assert i.read() == pytest.approx(-19.0, abs=0.15)


class TestAnalogModule:
    def test_binding_and_scan(self):
        plc = ProgrammableLogicController(scan_period_s=0.5)
        module = plc.add_module(AnalogInputModule(base_address=0))
        module.bind(0, Transducer(lambda: 12.5, lo=0.0, hi=50.0))
        clock = Clock(dt=1.0)
        plc.step(clock)
        master = ModbusMaster(plc.slave)
        assert decode_fixed(master.read_input(0)[0]) == pytest.approx(12.5, abs=0.02)

    def test_duplicate_channel_rejected(self):
        module = AnalogInputModule(base_address=0)
        module.bind(0, Transducer(lambda: 0.0, lo=0.0, hi=1.0))
        with pytest.raises(ValueError):
            module.bind(0, Transducer(lambda: 0.0, lo=0.0, hi=1.0))

    def test_channel_out_of_range(self):
        module = AnalogInputModule(base_address=0, channels=2)
        with pytest.raises(ValueError):
            module.bind(5, Transducer(lambda: 0.0, lo=0.0, hi=1.0))

    def test_overlapping_modules_rejected(self):
        plc = ProgrammableLogicController()
        plc.add_module(AnalogInputModule(base_address=0, channels=4))
        with pytest.raises(ValueError):
            plc.add_module(AnalogInputModule(base_address=2, channels=4))


class TestScanCycle:
    def test_scan_period_respected(self):
        plc = ProgrammableLogicController(scan_period_s=2.0)
        clock = Clock(dt=1.0)
        for _ in range(6):
            plc.step(clock)
            clock.advance()
        # First step always scans, then every 2 s: t=0, 2, 4.
        assert plc.scan_count == 3

    def test_program_executed_on_scan(self):
        plc = ProgrammableLogicController(scan_period_s=1.0)
        calls = []
        plc.set_program(lambda clock, p: calls.append(clock.t))
        clock = Clock(dt=1.0)
        for _ in range(3):
            plc.step(clock)
            clock.advance()
        assert len(calls) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ProgrammableLogicController(scan_period_s=0.0)
