"""Relay-network safety under randomised PLC command sequences.

The paper's hierarchy lets a (possibly buggy) coordinator write arbitrary
bus requests into the PLC's holding registers; the scan-cycle program and
the relay pair are the last line of defence.  Hypothesis drives that
surface: for *any* interleaving of requests, sensed voltages and scan
cycles — even with a mechanically stuck contact — no cabinet may ever
bridge the charge and load buses.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plc_program import BatterySwitchProgram
from repro.power.modbus import encode_fixed
from repro.power.plc import ProgrammableLogicController
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock

NAMES = ["battery-1", "battery-2", "battery-3"]
BUSES = ("offline", "charge", "load")
V_CUTOFF = 23.3

commands = st.lists(
    st.tuples(
        st.integers(0, len(NAMES) - 1),          # cabinet
        st.sampled_from(BUSES),                  # requested bus
        st.floats(18.0, 28.0),                   # sensed terminal voltage
    ),
    min_size=1,
    max_size=40,
)


def make_plant():
    switchnet = SwitchNetwork(list(NAMES))
    plc = ProgrammableLogicController()
    program = BatterySwitchProgram(switchnet, list(NAMES), v_cutoff=V_CUTOFF)
    return switchnet, plc, program


def set_voltage(plc, index, voltage):
    plc.slave.set_input(index * 2, encode_fixed(voltage))


def scan(program, plc, clock):
    program(clock, plc)
    clock.t += clock.dt
    clock.step_index += 1


def assert_never_bridged(switchnet):
    for name, pair in switchnet.pairs.items():
        assert not (pair.charge.closed and pair.discharge.closed), (
            f"{name}: charge and discharge contacts closed together"
        )


@given(commands=commands)
@settings(max_examples=120, deadline=None)
def test_no_command_sequence_bridges_a_cabinet(commands):
    switchnet, plc, program = make_plant()
    clock = Clock(dt=5.0)
    for index in range(len(NAMES)):
        set_voltage(plc, index, 25.5)
    for cabinet, bus, voltage in commands:
        set_voltage(plc, cabinet, voltage)
        program.request(plc, NAMES[cabinet], bus)
        scan(program, plc, clock)
        assert_never_bridged(switchnet)
    # Drain any pending break-before-make sequences.
    for _ in range(3):
        scan(program, plc, clock)
        assert_never_bridged(switchnet)


@given(commands=commands, stuck_cabinet=st.integers(0, len(NAMES) - 1),
       stuck_bus=st.sampled_from(BUSES))
@settings(max_examples=120, deadline=None)
def test_stuck_contact_never_lets_a_cabinet_bridge(commands, stuck_cabinet,
                                                   stuck_bus):
    """A mechanically stuck pair must freeze, not bridge: the scan program
    only closes a contact from the fully open state, so whatever position
    the fault froze, no request sequence can close the opposite contact."""
    switchnet, plc, program = make_plant()
    clock = Clock(dt=5.0)
    for index in range(len(NAMES)):
        set_voltage(plc, index, 25.5)
    name = NAMES[stuck_cabinet]
    switchnet.attach(name, stuck_bus)
    pair = switchnet.pairs[name]
    pair.charge.force_stick()
    pair.discharge.force_stick()
    frozen = pair.state

    for cabinet, bus, voltage in commands:
        set_voltage(plc, cabinet, voltage)
        program.request(plc, NAMES[cabinet], bus)
        scan(program, plc, clock)
        assert_never_bridged(switchnet)
        assert pair.state == frozen


@given(
    requests=st.lists(st.sampled_from(BUSES), min_size=1, max_size=10),
    voltage=st.floats(18.0, 23.3),
)
@settings(max_examples=60, deadline=None)
def test_low_voltage_lockout_keeps_cabinet_off_load_bus(requests, voltage):
    """At or below the LVD threshold, no request lands a cabinet on load."""
    switchnet, plc, program = make_plant()
    clock = Clock(dt=5.0)
    for index in range(len(NAMES)):
        set_voltage(plc, index, voltage)
    for bus in requests:
        program.request(plc, NAMES[0], bus)
        scan(program, plc, clock)
        assert switchnet.state_of(NAMES[0]) != "load"
    if "load" in requests:
        assert program.lockout_refusals > 0


@given(
    finals=st.lists(st.sampled_from(BUSES), min_size=len(NAMES),
                    max_size=len(NAMES)),
    churn=commands,
)
@settings(max_examples=60, deadline=None)
def test_healthy_requests_converge_after_break_before_make(finals, churn):
    """With healthy voltages the network settles on the last request per
    cabinet within two scans (one for the break-before-make open step)."""
    switchnet, plc, program = make_plant()
    clock = Clock(dt=5.0)
    for index in range(len(NAMES)):
        set_voltage(plc, index, 25.5)
    for cabinet, bus, _ in churn:
        program.request(plc, NAMES[cabinet], bus)
        scan(program, plc, clock)
    for name, bus in zip(NAMES, finals, strict=True):
        program.request(plc, name, bus)
    for _ in range(2):
        scan(program, plc, clock)
    state_to_bus = {"charging": "charge", "load": "load", "offline": "offline"}
    for name, bus in zip(NAMES, finals, strict=True):
        assert state_to_bus[switchnet.state_of(name)] == bus
        assert_never_bridged(switchnet)
