"""Relays and the reconfigurable switch network."""

import pytest

from repro.power.relays import Relay, RelayPair, SwitchNetwork
from repro.sim.events import EventLog


class TestRelay:
    def test_actuation_counts_cycles(self):
        relay = Relay("r")
        assert relay.set(True) is True
        assert relay.set(True) is False  # no change, no cycle
        assert relay.set(False) is True
        assert relay.cycles == 2

    def test_life_fraction(self):
        relay = Relay("r", rated_cycles=10)
        for i in range(20):
            relay.set(i % 2 == 0)
        assert relay.life_fraction_used == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Relay("r", switching_time_s=-1.0)
        with pytest.raises(ValueError):
            Relay("r", rated_cycles=0)


class TestRelayPair:
    def test_never_both_closed(self):
        pair = RelayPair("b1")
        pair.to_charging()
        assert pair.state == "charging"
        pair.to_load()
        assert pair.state == "load"
        pair.validate()  # must not raise

    def test_offline_opens_both(self):
        pair = RelayPair("b1")
        pair.to_charging()
        pair.to_offline()
        assert pair.state == "offline"
        assert not pair.charge.closed and not pair.discharge.closed

    def test_actuation_counting(self):
        pair = RelayPair("b1")
        assert pair.to_charging() == 1
        assert pair.to_load() == 2  # open charge, close discharge
        assert pair.to_load() == 0


class TestSwitchNetwork:
    def test_attach_and_query(self):
        net = SwitchNetwork(["b1", "b2"])
        net.attach("b1", "charge")
        net.attach("b2", "load")
        assert net.on_bus("charge") == ["b1"]
        assert net.on_bus("load") == ["b2"]
        assert net.state_of("b1") == "charging"

    def test_switch_operations_counted_per_mode_change(self):
        net = SwitchNetwork(["b1"])
        net.attach("b1", "charge")
        net.attach("b1", "load")
        net.attach("b1", "load")  # no-op
        assert net.switch_operations == 2
        assert net.total_actuations == 3

    def test_events_emitted(self):
        events = EventLog()
        net = SwitchNetwork(["b1"], events)
        net.attach("b1", "charge", t=5.0)
        assert events.count("relay.switch") == 1
        assert events.last("relay.switch").data["bus"] == "charge"

    def test_unknown_battery(self):
        net = SwitchNetwork(["b1"])
        with pytest.raises(KeyError):
            net.attach("nope", "charge")

    def test_unknown_bus(self):
        net = SwitchNetwork(["b1"])
        with pytest.raises(ValueError):
            net.attach("b1", "sideways")
        with pytest.raises(ValueError):
            net.on_bus("sideways")

    def test_requires_batteries(self):
        with pytest.raises(ValueError):
            SwitchNetwork([])
