"""Series/parallel array reconfiguration (the P1-P3 switches)."""

import pytest

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryUnit
from repro.power.topology import (
    MAX_SERIES_SOC_SPREAD,
    ReconfigurableArray,
    Topology,
    TopologyError,
)


def units(*socs):
    return [BatteryUnit(f"u{i}", soc=s) for i, s in enumerate(socs)]


class TestRatings:
    def test_parallel_sums_capacity(self):
        array = ReconfigurableArray(units(0.9, 0.9, 0.9))
        rating = array.configure(Topology.PARALLEL)
        assert rating.output_voltage == pytest.approx(24.0)
        assert rating.capacity_ah == pytest.approx(105.0)

    def test_series_sums_voltage(self):
        array = ReconfigurableArray(units(0.9, 0.9, 0.9))
        rating = array.configure(Topology.SERIES)
        assert rating.output_voltage == pytest.approx(72.0)
        assert rating.capacity_ah == pytest.approx(35.0)

    def test_energy_identical_either_way(self):
        array = ReconfigurableArray(units(0.9, 0.9))
        parallel = array.configure(Topology.PARALLEL)
        series = array.configure(Topology.SERIES)
        assert parallel.energy_wh == pytest.approx(series.energy_wh)

    def test_series_limited_by_weakest(self):
        array = ReconfigurableArray(units(0.9, 0.8))
        series = array.configure(Topology.SERIES)
        weakest = min(u.max_discharge_current(5.0) for u in array.units)
        assert series.max_discharge_a == pytest.approx(weakest)


class TestSafety:
    def test_series_refuses_mismatched_soc(self):
        array = ReconfigurableArray(units(0.9, 0.9 - MAX_SERIES_SOC_SPREAD - 0.1))
        with pytest.raises(TopologyError):
            array.configure(Topology.SERIES)

    def test_parallel_tolerates_mismatch(self):
        array = ReconfigurableArray(units(0.9, 0.4))
        array.configure(Topology.PARALLEL)  # must not raise

    def test_mixed_voltages_rejected(self):
        mixed = [
            BatteryUnit("a"),
            BatteryUnit("b", params=BatteryParams(nominal_voltage=12.0)),
        ]
        with pytest.raises(TopologyError):
            ReconfigurableArray(mixed)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReconfigurableArray([])


class TestElectricalConsequences:
    def test_series_halves_bus_current(self):
        array = ReconfigurableArray(units(0.9, 0.9))
        array.configure(Topology.PARALLEL)
        parallel_current = array.bus_current_for(480.0)
        array.configure(Topology.SERIES)
        series_current = array.bus_current_for(480.0)
        assert series_current == pytest.approx(parallel_current / 2.0)

    def test_series_quarters_wiring_loss(self):
        array = ReconfigurableArray(units(0.9, 0.9))
        array.configure(Topology.PARALLEL)
        parallel_loss = array.distribution_loss_w(480.0)
        array.configure(Topology.SERIES)
        series_loss = array.distribution_loss_w(480.0)
        assert series_loss == pytest.approx(parallel_loss / 4.0)

    def test_preferred_topology_prefers_series_when_safe(self):
        array = ReconfigurableArray(units(0.9, 0.9))
        assert array.preferred_topology_for(400.0) is Topology.SERIES

    def test_preferred_falls_back_to_parallel_on_mismatch(self):
        array = ReconfigurableArray(units(0.9, 0.5))
        assert array.preferred_topology_for(200.0) is Topology.PARALLEL

    def test_preferred_respects_deliverability(self):
        array = ReconfigurableArray(units(0.9, 0.9))
        with pytest.raises(TopologyError):
            array.preferred_topology_for(50_000.0)

    def test_preferred_restores_original_topology(self):
        array = ReconfigurableArray(units(0.9, 0.9))
        array.configure(Topology.PARALLEL)
        array.preferred_topology_for(400.0)
        assert array.topology is Topology.PARALLEL

    def test_negative_power_rejected(self):
        array = ReconfigurableArray(units(0.9))
        with pytest.raises(ValueError):
            array.bus_current_for(-1.0)
