"""Power-bus invariants under randomised operating points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.bank import BatteryBank
from repro.battery.unit import BatteryMode
from repro.power.bus import PowerBus

MODES = (
    BatteryMode.OFFLINE,
    BatteryMode.CHARGING,
    BatteryMode.STANDBY,
    BatteryMode.DISCHARGING,
)


def build_bus(socs, modes):
    bank = BatteryBank.build(count=len(socs), soc=1.0)
    for unit, soc, mode in zip(bank, socs, modes, strict=True):
        unit.kibam.set_soc(soc)
        unit.set_mode(mode)
    return bank, PowerBus(bank)


@given(
    socs=st.lists(st.floats(0.05, 1.0), min_size=3, max_size=3),
    mode_idx=st.lists(st.integers(0, 3), min_size=3, max_size=3),
    solar=st.floats(0.0, 2000.0),
    demand=st.floats(0.0, 2000.0),
)
@settings(max_examples=120, deadline=None)
def test_bus_resolution_invariants(socs, mode_idx, solar, demand):
    bank, bus = build_bus(socs, [MODES[i] for i in mode_idx])
    energy_before = bank.stored_energy_wh

    report = bus.resolve(solar, demand, dt_seconds=5.0)

    # All flows are non-negative.
    assert report.solar_to_load_w >= 0.0
    assert report.battery_to_load_w >= -1e-9
    assert report.charge_power_w >= -1e-9
    assert report.curtailed_w >= -1e-9
    assert report.unserved_w >= -1e-9

    # Solar is split, never created: direct + charging + curtailed = solar.
    solar_split = report.solar_to_load_w + report.charge_power_w + report.curtailed_w
    assert solar_split == pytest.approx(solar, abs=max(1.0, solar * 0.02))

    # Demand is met or declared unserved, never silently dropped.
    assert report.served_w + report.unserved_w == pytest.approx(
        report.demand_w, abs=1.0
    )

    # Battery power only flows when the converter-side demand needs it.
    if report.demand_w <= solar:
        assert report.battery_to_load_w == pytest.approx(0.0, abs=1e-6)

    # Physical sanity: no battery exceeds full charge; big energy swings
    # in one 5 s tick are impossible.
    for unit in bank:
        assert unit.soc <= 1.0 + 1e-9
    assert abs(bank.stored_energy_wh - energy_before) < 10.0


@given(
    solar=st.floats(0.0, 1500.0),
    demand=st.floats(0.0, 1500.0),
    steps=st.integers(1, 30),
)
@settings(max_examples=40, deadline=None)
def test_repeated_resolution_monotone_energy(solar, demand, steps):
    """Discharging banks only lose charge; charging banks only gain."""
    bank, bus = build_bus([0.6, 0.6, 0.6],
                          [BatteryMode.DISCHARGING] * 3)
    start = bank.stored_energy_wh
    for _ in range(steps):
        bus.resolve(solar, demand, 5.0)
    if demand > solar:
        assert bank.stored_energy_wh <= start + 1e-6
    # A discharging-only bank can never gain beyond self-discharge noise.
    assert bank.stored_energy_wh <= start + 1.0
