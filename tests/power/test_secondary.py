"""Diesel backup generator and the hybrid source."""

import pytest

from repro.power.secondary import DieselGenerator, HybridSource
from repro.sim.clock import Clock
from repro.sim.events import EventLog
from repro.solar.field import ConstantSource


def run_steps(component, steps, dt=5.0, clock=None):
    clock = clock or Clock(dt=dt)
    for _ in range(steps):
        component.step(clock)
        clock.advance()
    return clock


class TestGenerator:
    def test_startup_delay(self):
        genset = DieselGenerator(startup_s=20.0)
        genset.request(True)
        run_steps(genset, 2)  # 10 s: still cranking
        assert genset.output_w == 0.0
        run_steps(genset, 3)
        assert genset.output_w == genset.rated_w

    def test_minimum_runtime_enforced(self):
        genset = DieselGenerator(startup_s=0.0, min_runtime_s=600.0)
        genset.request(True)
        clock = run_steps(genset, 2)
        genset.request(False)
        run_steps(genset, 10, clock=clock)  # only 50 s after stop request
        assert genset.running
        run_steps(genset, 120, clock=clock)
        assert not genset.running

    def test_fuel_ledger(self):
        genset = DieselGenerator(rated_w=2000.0, startup_s=0.0,
                                 litres_per_kwh=0.5)
        genset.request(True)
        run_steps(genset, 720)  # one hour
        assert genset.fuel_litres == pytest.approx(1.0, rel=0.02)
        assert genset.fuel_cost_usd > 0.0
        assert genset.runtime_s == pytest.approx(3600.0, rel=0.01)

    def test_start_counted_once_per_request(self):
        genset = DieselGenerator()
        genset.request(True)
        genset.request(True)
        assert genset.starts == 1

    def test_events_emitted(self):
        events = EventLog()
        genset = DieselGenerator(startup_s=0.0, min_runtime_s=0.0, events=events)
        genset.request(True, t=1.0)
        assert events.count("genset.start") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DieselGenerator(rated_w=0.0)
        with pytest.raises(ValueError):
            DieselGenerator(litres_per_kwh=0.0)


class TestHybridSource:
    def test_genset_starts_when_solar_collapses(self):
        genset = DieselGenerator(startup_s=0.0)
        hybrid = HybridSource("h", ConstantSource("s", 50.0), genset)
        run_steps(hybrid, 5)
        assert genset.running
        assert hybrid.available_power_w == pytest.approx(50.0 + genset.rated_w)

    def test_genset_stays_off_with_good_solar(self):
        genset = DieselGenerator(startup_s=0.0)
        hybrid = HybridSource("h", ConstantSource("s", 900.0), genset)
        run_steps(hybrid, 5)
        assert not genset.running
        assert hybrid.available_power_w == pytest.approx(900.0)

    def test_hysteresis_band(self):
        genset = DieselGenerator(startup_s=0.0, min_runtime_s=0.0)
        # Solar in the dead band between start and stop thresholds.
        hybrid = HybridSource("h", ConstantSource("s", 250.0), genset,
                              start_below_w=150.0, stop_above_w=400.0)
        run_steps(hybrid, 5)
        assert not genset.running  # never requested

    def test_bad_band_rejected(self):
        genset = DieselGenerator()
        with pytest.raises(ValueError):
            HybridSource("h", ConstantSource("s", 100.0), genset,
                         start_below_w=500.0, stop_above_w=400.0)
