"""DC/DC converter, PDU, and power-bus resolution."""

import pytest

from repro.battery.bank import BatteryBank
from repro.battery.unit import BatteryMode
from repro.power.bus import PowerBus
from repro.power.converters import DCDCConverter, PowerDistributionUnit


class TestConverter:
    def test_efficiency_peaks_mid_load(self):
        conv = DCDCConverter(rated_w=2000.0)
        light = conv.efficiency(50.0)
        mid = conv.efficiency(1000.0)
        assert mid > light

    def test_input_exceeds_output(self):
        conv = DCDCConverter()
        assert conv.input_for(1000.0) > 1000.0

    def test_no_load_draws_fixed_loss(self):
        conv = DCDCConverter(fixed_loss_w=12.0)
        assert conv.input_for(0.0) == 12.0

    def test_negative_output_rejected(self):
        with pytest.raises(ValueError):
            DCDCConverter().input_for(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DCDCConverter(rated_w=0.0)
        with pytest.raises(ValueError):
            DCDCConverter(peak_efficiency=1.5)


class TestPDU:
    def test_port_overhead_counts_active_only(self):
        pdu = PowerDistributionUnit(port_overhead_w=2.0)
        assert pdu.draw([100.0, 0.0]) == pytest.approx(102.0)

    def test_over_capacity_raises(self):
        pdu = PowerDistributionUnit(capacity_w=100.0)
        with pytest.raises(ValueError):
            pdu.draw([60.0, 60.0])

    def test_too_many_servers(self):
        pdu = PowerDistributionUnit(ports=1)
        with pytest.raises(ValueError):
            pdu.draw([10.0, 10.0])


def bank_in_mode(mode, count=3, soc=0.9):
    bank = BatteryBank.build(count=count, soc=soc)
    bank.set_all_modes(mode)
    return bank


class TestBusResolution:
    def test_solar_covers_load_directly(self):
        bank = bank_in_mode(BatteryMode.STANDBY)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=1500.0, server_demand_w=1000.0, dt_seconds=5.0)
        assert report.solar_to_load_w > 1000.0  # includes conversion loss
        assert report.battery_to_load_w == 0.0
        assert report.unserved_w == 0.0

    def test_battery_covers_deficit(self):
        bank = bank_in_mode(BatteryMode.DISCHARGING)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=200.0, server_demand_w=900.0, dt_seconds=5.0)
        assert report.battery_to_load_w > 0.0
        assert report.unserved_w == pytest.approx(0.0, abs=1.0)

    def test_unserved_when_bank_offline(self):
        bank = bank_in_mode(BatteryMode.OFFLINE)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=100.0, server_demand_w=900.0, dt_seconds=5.0)
        assert report.unserved_w > 500.0

    def test_surplus_charges_charging_units(self):
        bank = bank_in_mode(BatteryMode.CHARGING, soc=0.3)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=800.0, server_demand_w=100.0, dt_seconds=5.0)
        assert report.charge_power_w > 0.0

    def test_curtailment_when_everything_full(self):
        bank = bank_in_mode(BatteryMode.OFFLINE, soc=1.0)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=1000.0, server_demand_w=0.0, dt_seconds=5.0)
        assert report.curtailed_w == pytest.approx(1000.0, abs=1.0)

    def test_power_conservation(self):
        bank = bank_in_mode(BatteryMode.CHARGING, soc=0.4)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=600.0, server_demand_w=300.0, dt_seconds=5.0)
        total = report.solar_to_load_w + report.charge_power_w + report.curtailed_w
        assert total == pytest.approx(600.0, abs=1.0)

    def test_solar_utilisation_metric(self):
        bank = bank_in_mode(BatteryMode.OFFLINE, soc=1.0)
        bus = PowerBus(bank)
        report = bus.resolve(solar_w=1000.0, server_demand_w=0.0, dt_seconds=5.0)
        assert report.solar_utilisation == pytest.approx(0.0, abs=0.01)

    def test_every_unit_stepped_once(self):
        """Charging units and idle units must both see time pass."""
        bank = BatteryBank.build(count=3, soc=0.5)
        bank[0].set_mode(BatteryMode.CHARGING)
        bank[1].set_mode(BatteryMode.DISCHARGING)
        bank[2].set_mode(BatteryMode.OFFLINE)
        bus = PowerBus(bank)
        # Surplus tick: the charging unit draws, others idle or serve.
        bus.resolve(solar_w=500.0, server_demand_w=100.0, dt_seconds=5.0)
        assert bank[0].last_current < 0.0
        assert bank[2].last_current == 0.0
        # Deficit tick: the discharging unit serves the gap.
        bus.resolve(solar_w=200.0, server_demand_w=700.0, dt_seconds=5.0)
        assert bank[1].last_current > 0.0
        assert bank[2].last_current == 0.0

    def test_input_validation(self):
        bus = PowerBus(bank_in_mode(BatteryMode.STANDBY))
        with pytest.raises(ValueError):
            bus.resolve(-1.0, 100.0, 5.0)
        with pytest.raises(ValueError):
            bus.resolve(100.0, -1.0, 5.0)
