"""Manifest schema: validation, cell expansion, render/parse round-trip."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.manifest import (
    CONTROLLERS,
    DEFAULT_TICK_SLICE,
    ManifestError,
    SessionManifest,
    WEATHERS,
    WORKLOADS,
    parse_manifest,
    render_manifest,
)
from repro.validate.golden import DURATION_S, available_cell_ids


class TestCellForm:
    def test_matrix_cell_expands_pinned_config(self):
        m = parse_manifest({"cell": "insure:seismic:cloudy"})
        assert m.cell == "insure:seismic:cloudy"
        assert (m.controller, m.workload, m.weather) == \
            ("insure", "seismic", "cloudy")
        assert m.duration_s == DURATION_S
        assert m.policies == ()
        assert m.seed > 0  # derived, not the base seed verbatim

    def test_scenario_cell_carries_policies(self):
        m = parse_manifest({"cell": "scenario-grid-hybrid"})
        assert m.cell == "scenario-grid-hybrid"
        assert len(m.policies) >= 1
        names = [p.name for p in m.policies]
        assert len(names) == len(set(names))

    def test_pacing_overrides_allowed(self):
        m = parse_manifest({"cell": "insure:video:sunny",
                            "duration_s": 3600.0, "tick_slice": 60})
        assert m.duration_s == 3600.0
        assert m.tick_slice == 60

    def test_plant_overrides_rejected(self):
        with pytest.raises(ManifestError, match="pin the plant"):
            parse_manifest({"cell": "insure:video:sunny", "seed": 9})

    def test_unknown_cell_lists_available(self):
        with pytest.raises(ManifestError) as excinfo:
            parse_manifest({"cell": "bogus:video:sunny"})
        message = str(excinfo.value)
        for cell_id in available_cell_ids():
            assert cell_id in message

    def test_every_available_cell_parses(self):
        for cell_id in available_cell_ids():
            m = parse_manifest({"cell": cell_id})
            assert m.cell == cell_id


class TestExplicitForm:
    def test_defaults(self):
        m = parse_manifest({})
        assert isinstance(m, SessionManifest)
        assert m.cell is None
        assert m.tick_slice == DEFAULT_TICK_SLICE

    @pytest.mark.parametrize("payload, match", [
        ({"controller": "x"}, "controller"),
        ({"workload": "x"}, "workload"),
        ({"weather": "x"}, "weather"),
        ({"mean_w": -1}, "mean_w"),
        ({"mean_w": "800"}, "mean_w"),
        ({"seed": -1}, "seed"),
        ({"seed": 1.5}, "seed"),
        ({"seed": True}, "seed"),
        ({"initial_soc": 0.0}, "initial_soc"),
        ({"initial_soc": 1.5}, "initial_soc"),
        ({"dt": 0}, "dt"),
        ({"duration_s": 0}, "duration_s"),
        ({"tick_slice": 0}, "tick_slice"),
        ({"trace_stride": 0}, "trace_stride"),
        ({"bogus_key": 1}, "unknown manifest keys"),
        ({"policies": "nope"}, "policies"),
    ])
    def test_field_validation(self, payload, match):
        with pytest.raises(ManifestError, match=match):
            parse_manifest(payload)

    @pytest.mark.parametrize("policy, match", [
        ({"name": "", "signal": "carbon", "governor": "const:1",
          "control": "duty_cap"}, "name"),
        ({"name": "p", "signal": "nope", "governor": "const:1",
          "control": "duty_cap"}, "unknown signal"),
        ({"name": "p", "signal": "carbon", "governor": "const:1",
          "control": "nope"}, "unknown control"),
        ({"name": "p", "signal": "carbon", "governor": "wat:1",
          "control": "duty_cap"}, "governor"),
        ({"name": "p", "signal": "carbon", "governor": "const:1",
          "control": "duty_cap", "interval_s": 0}, "interval_s"),
        ({"name": "p", "signal": "carbon", "governor": "const:1",
          "control": "duty_cap", "extra": 1}, "unknown policy keys"),
    ])
    def test_policy_validation(self, policy, match):
        with pytest.raises(ManifestError, match=match):
            parse_manifest({"policies": [policy]})

    def test_duty_cap_requires_insure(self):
        payload = {
            "controller": "baseline",
            "policies": [{"name": "cap", "signal": "carbon",
                          "governor": "const:0.8", "control": "duty_cap"}],
        }
        with pytest.raises(ManifestError, match="insure"):
            parse_manifest(payload)
        # The same overlay on insure is fine.
        parse_manifest({**payload, "controller": "insure"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ManifestError, match="JSON object"):
            parse_manifest([1, 2, 3])


# ----------------------------------------------------------------------
# Property: parse(render(m)) == m over generated manifests
# ----------------------------------------------------------------------
_GOVERNORS = st.one_of(
    st.floats(min_value=0.1, max_value=1.0,
              allow_nan=False).map(lambda f: f"const:{f:.3f}"),
    st.just("list:green=1.0:yellow=0.7:red=0.5:default=0.6"),
    st.just("step:100=80%:200=50%:below=max"),
    st.just("linear:100:500"),
)

_SIGNALS = st.sampled_from(["carbon", "price", "soc", "solar"])


def _controls_for(controller: str):
    names = ["vm_retarget", "checkpoint_shed", "charge_current_cap"]
    if controller == "insure":
        names.append("duty_cap")
    return st.sampled_from(names)


def _policy_dicts(controller: str):
    return st.builds(
        dict,
        name=st.uuids().map(lambda u: f"p-{u.hex[:8]}"),
        signal=_SIGNALS,
        governor=_GOVERNORS,
        control=_controls_for(controller),
        interval_s=st.floats(min_value=5.0, max_value=7200.0,
                             allow_nan=False),
    )


@st.composite
def explicit_manifests(draw):
    controller = draw(st.sampled_from(CONTROLLERS))
    policies = draw(st.lists(_policy_dicts(controller), max_size=3,
                             unique_by=lambda p: p["name"]))
    return {
        "controller": controller,
        "workload": draw(st.sampled_from(WORKLOADS)),
        "weather": draw(st.sampled_from(WEATHERS)),
        "mean_w": draw(st.floats(min_value=50.0, max_value=5000.0,
                                 allow_nan=False)),
        "seed": draw(st.integers(min_value=0, max_value=2**31)),
        "initial_soc": draw(st.floats(min_value=0.05, max_value=1.0,
                                      allow_nan=False)),
        "dt": draw(st.floats(min_value=0.5, max_value=60.0,
                             allow_nan=False)),
        "duration_s": draw(st.floats(min_value=60.0, max_value=1e6,
                                     allow_nan=False)),
        "tick_slice": draw(st.integers(min_value=1, max_value=10_000)),
        "trace_stride": draw(st.integers(min_value=1, max_value=256)),
        "policies": policies,
    }


@given(explicit_manifests())
def test_explicit_round_trip(payload):
    manifest = parse_manifest(payload)
    rendered = render_manifest(manifest)
    assert parse_manifest(rendered) == manifest
    # Rendering is canonical: a second round trip is a fixed point.
    assert render_manifest(parse_manifest(rendered)) == rendered


@given(
    cell=st.sampled_from(available_cell_ids()),
    duration_s=st.floats(min_value=60.0, max_value=1e6, allow_nan=False),
    tick_slice=st.integers(min_value=1, max_value=10_000),
)
def test_cell_round_trip(cell, duration_s, tick_slice):
    manifest = parse_manifest({"cell": cell, "duration_s": duration_s,
                               "tick_slice": tick_slice})
    rendered = render_manifest(manifest)
    assert set(rendered) == {"cell", "duration_s", "tick_slice",
                             "trace_stride"}
    assert parse_manifest(rendered) == manifest
