"""Daemon end-to-end over real sockets: HTTP API, SSE streaming, resume.

The daemon runs on its own event loop in a background thread; the
blocking :class:`~repro.serve.client.ServeClient` talks to it exactly
the way the CI smoke driver does.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeDaemon

#: Manifest small enough that a session finishes in well under a second.
QUICK = {
    "controller": "insure", "workload": "seismic", "weather": "cloudy",
    "seed": 7, "duration_s": 1800.0, "tick_slice": 60,
    "policies": [{"name": "cap", "signal": "carbon",
                  "governor": "const:0.9", "control": "duty_cap"}],
}


@pytest.fixture()
def daemon():
    instance = ServeDaemon(port=0, max_sessions=4)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(instance.start())
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "daemon failed to boot"
    yield instance
    asyncio.run_coroutine_threadsafe(instance.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


@pytest.fixture()
def client(daemon):
    c = ServeClient(port=daemon.port, timeout=30.0)
    c.wait_ready(timeout=10.0)
    return c


@pytest.mark.serve
class TestDaemonEndToEnd:
    def test_healthz_and_cells(self, client):
        health = client.healthz()
        assert health["ok"] is True
        cells = client.cells()
        assert "insure:seismic:cloudy" in cells
        assert any(c.startswith("scenario-") for c in cells)

    def test_session_runs_to_completion_over_sse(self, client):
        info = client.create_session(QUICK)
        events = list(client.stream(info["session"]))
        kinds = [e.event for e in events]
        assert kinds[0] == "hello"
        assert kinds[-1] == "end"
        for required in ("state", "metrics", "ledger", "summary"):
            assert required in kinds
        ids = [e.id for e in events]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        summary = client.summary(info["session"])
        assert summary["closure"]["ok"]
        streamed = next(e for e in events if e.event == "summary")
        assert streamed.payload == summary

    def test_last_event_id_resume(self, client):
        info = client.create_session(QUICK)
        sid = info["session"]
        events = list(client.stream(sid))
        cut = events[len(events) // 2].id
        resumed = list(client.stream(sid, last_event_id=cut))
        assert resumed[0].id == cut + 1
        assert [e.id for e in resumed] == [e.id for e in events
                                           if e.id > cut]

    def test_pause_inject_resume(self, client):
        info = client.create_session(QUICK, autostart=False)
        sid = info["session"]
        assert info["state"] == "created"
        client.start(sid)
        client.pause(sid)
        paused = client.get_session(sid)
        assert paused["state"] == "paused"
        ack = client.inject(sid, {"kind": "limit", "policy": "cap",
                                  "limit": 0.6})
        assert ack["kind"] == "limit"
        client.resume(sid)
        done = client.wait_done(sid, timeout=60.0)
        assert done["state"] == "done"
        assert done["injections"] == 1
        summary = client.summary(sid)
        assert summary["injected"] is True
        assert summary["decision_counts"]["inject.limit"] == 1

    def test_concurrent_sessions_interleave(self, client):
        sids = [client.create_session({**QUICK, "seed": s})["session"]
                for s in (1, 2, 3)]
        for sid in sids:
            done = client.wait_done(sid, timeout=60.0)
            assert done["state"] == "done"
        listing = {s["session"]: s for s in client.list_sessions()}
        assert set(sids) <= set(listing)

    def test_http_error_mapping(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.get_session("s-9999")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.create_session({"cell": "bogus:x:y"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client._request("GET", "/no/such/route")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._request("PUT", "/v1/sessions")
        assert excinfo.value.status == 405

    def test_summary_conflict_until_done(self, client):
        info = client.create_session(QUICK, autostart=False)
        with pytest.raises(ServeError) as excinfo:
            client.summary(info["session"])
        assert excinfo.value.status == 409

    def test_capacity_maps_to_503(self, client, daemon):
        sids = []
        for _ in range(daemon.manager.max_sessions):
            sids.append(client.create_session(
                QUICK, autostart=False)["session"])
        with pytest.raises(ServeError) as excinfo:
            client.create_session(QUICK)
        assert excinfo.value.status == 503
        for sid in sids:
            client.delete_session(sid)

    def test_metrics_endpoints(self, client):
        info = client.create_session(QUICK)
        client.wait_done(info["session"], timeout=60.0)
        daemon_metrics = client.metrics()
        assert "serve_sessions_created_total" in daemon_metrics
        session_metrics = client.session_metrics(info["session"])
        assert "engine_ticks" in session_metrics

    def test_reap(self, client):
        info = client.create_session(QUICK, autostart=False)
        sid = info["session"]
        assert client.delete_session(sid)["reaped"] is True
        with pytest.raises(ServeError) as excinfo:
            client.get_session(sid)
        assert excinfo.value.status == 404
