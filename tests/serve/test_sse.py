"""SSE wire framing, replay buffer and parser round-trips."""

from __future__ import annotations

import pytest

from repro.serve.sse import (
    EventBuffer,
    SSEParser,
    encode_comment,
    encode_event,
)


class TestEncodeEvent:
    def test_minimal_event(self):
        assert encode_event("hi") == b"data: hi\n\n"

    def test_full_frame_field_order(self):
        wire = encode_event("x", event="metrics", id=7, retry=1500)
        assert wire == b"id: 7\nevent: metrics\nretry: 1500\ndata: x\n\n"

    def test_empty_payload_still_dispatches(self):
        # A block with no data: line never dispatches client-side; the
        # encoder must emit one empty data: line.
        assert encode_event("", event="ping") == b"event: ping\ndata: \n\n"

    def test_multiline_data_splits_into_repeated_lines(self):
        wire = encode_event("a\nb\nc")
        assert wire == b"data: a\ndata: b\ndata: c\n\n"

    def test_comment(self):
        assert encode_comment("keep-alive") == b": keep-alive\n\n"


class TestEventBuffer:
    def test_ids_increase_from_one(self):
        buf = EventBuffer()
        ids = [buf.append("e", str(i)).id for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert buf.last_id == 5

    def test_events_after_replays_suffix(self):
        buf = EventBuffer()
        for i in range(10):
            buf.append("e", str(i))
        replay = buf.events_after(7)
        assert [e.id for e in replay] == [8, 9, 10]
        assert buf.events_after(0)[0].id == 1
        assert buf.events_after(10) == []

    def test_bounded_buffer_drops_oldest(self):
        buf = EventBuffer(max_events=3)
        for i in range(10):
            buf.append("e", str(i))
        assert len(buf) == 3
        assert buf.first_buffered_id == 8
        # Ids keep counting even after the drop: Last-Event-ID stays
        # unambiguous.
        assert buf.last_id == 10
        assert [e.id for e in buf.events_after(0)] == [8, 9, 10]

    def test_listeners_see_appends_and_unsubscribe(self):
        buf = EventBuffer()
        seen = []
        buf.subscribe(seen.append)
        buf.append("e", "1")
        buf.unsubscribe(seen.append)
        buf.append("e", "2")
        assert [e.data for e in seen] == ["1"]
        buf.unsubscribe(seen.append)  # double-unsubscribe is a no-op

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            EventBuffer(max_events=0)


class TestSSEParser:
    def test_round_trip(self):
        parser = SSEParser()
        wire = encode_event("payload", event="metrics", id=3)
        events = parser.feed(wire)
        assert len(events) == 1
        assert events[0].event == "metrics"
        assert events[0].data == "payload"
        assert events[0].id == 3
        assert parser.last_event_id == 3

    def test_chunk_boundaries_anywhere(self):
        wire = encode_event("alpha\nbeta", event="decision", id=42)
        for chunk_size in (1, 2, 3, 7):
            parser = SSEParser()
            events = []
            for i in range(0, len(wire), chunk_size):
                events.extend(parser.feed(wire[i:i + chunk_size]))
            assert len(events) == 1, f"chunk_size={chunk_size}"
            assert events[0].data == "alpha\nbeta"
            assert events[0].id == 42

    def test_crlf_line_endings(self):
        wire = b"id: 5\r\nevent: e\r\ndata: x\r\n\r\n"
        events = SSEParser().feed(wire)
        assert len(events) == 1
        assert events[0].data == "x"
        assert events[0].id == 5

    def test_comments_and_stray_blanks_ignored(self):
        parser = SSEParser()
        assert parser.feed(b": keep-alive\n\n") == []
        assert parser.feed(b"\n\n") == []
        events = parser.feed(encode_event("x"))
        assert [e.data for e in events] == ["x"]

    def test_default_event_type_is_message(self):
        events = SSEParser().feed(b"data: x\n\n")
        assert events[0].event == "message"

    def test_resume_replays_only_after_last_id(self):
        # The server half of Last-Event-ID: replay from the buffer, then
        # parse on the client — end-to-end through both codecs.
        buf = EventBuffer()
        for i in range(6):
            buf.append("tick", f"payload-{i}")
        parser = SSEParser()
        wire = b"".join(e.encode() for e in buf.events_after(4))
        events = parser.feed(wire)
        assert [e.id for e in events] == [5, 6]
        assert [e.data for e in events] == ["payload-4", "payload-5"]
