"""Session lifecycle, injection semantics, sliced-run determinism."""

from __future__ import annotations

import json

import pytest

from repro.serve.manager import CapacityError, SessionManager
from repro.serve.manifest import parse_manifest
from repro.serve.session import Session, SessionError, SessionState

#: A short explicit manifest the lifecycle tests run (30 sim-minutes).
SHORT = {
    "controller": "insure", "workload": "seismic", "weather": "cloudy",
    "seed": 3, "duration_s": 1800.0, "tick_slice": 60,
    "policies": [{"name": "cap", "signal": "carbon",
                  "governor": "const:0.9", "control": "duty_cap"}],
}


def drive(manager: SessionManager, session: Session, max_turns: int = 10_000):
    turns = 0
    while session.state == SessionState.RUNNING:
        manager.step_once()
        turns += 1
        assert turns < max_turns, "session did not finish"


def events_of(session: Session, kind: str):
    return [e for e in session.events.events_after(0) if e.event == kind]


class TestLifecycle:
    def test_create_to_completion(self):
        manager = SessionManager(max_sessions=2)
        session = manager.create(parse_manifest(SHORT), autostart=True)
        assert session.state == SessionState.RUNNING
        drive(manager, session)
        assert session.state == SessionState.DONE
        assert session.ticks_done == session.total_ticks == 360
        summary = session.summary_payload
        assert summary["closure"]["ok"]
        assert not summary["injected"]
        assert summary["golden"] is None  # explicit manifests have no pin
        # Stream shape: hello first, end last, ids strictly increasing.
        all_events = session.events.events_after(0)
        assert all_events[0].event == "hello"
        assert all_events[-1].event == "end"
        ids = [e.id for e in all_events]
        assert ids == sorted(ids)

    def test_hello_event_carries_manifest(self):
        session = Session("t-1", parse_manifest(SHORT))
        hello = json.loads(events_of(session, "hello")[0].data)
        assert hello["session"] == "t-1"
        assert hello["total_ticks"] == 360
        assert hello["manifest"]["controller"] == "insure"

    def test_pause_resume(self):
        manager = SessionManager()
        session = manager.create(parse_manifest(SHORT), autostart=True)
        manager.step_once()
        session.pause()
        ticks_at_pause = session.ticks_done
        assert manager.step_once() == 0  # paused sessions do not step
        assert session.ticks_done == ticks_at_pause
        session.resume()
        drive(manager, session)
        assert session.state == SessionState.DONE

    def test_state_transition_guards(self):
        session = Session("t-2", parse_manifest(SHORT))
        with pytest.raises(SessionError):
            session.pause()  # created, not running
        with pytest.raises(SessionError):
            session.resume()
        session.start()
        with pytest.raises(SessionError):
            session.start()

    def test_created_sessions_do_not_step(self):
        manager = SessionManager()
        session = manager.create(parse_manifest(SHORT), autostart=False)
        assert manager.step_once() == 0
        assert session.state == SessionState.CREATED

    def test_capacity_counts_live_only(self):
        manager = SessionManager(max_sessions=1)
        first = manager.create(parse_manifest(SHORT), autostart=True)
        with pytest.raises(CapacityError):
            manager.create(parse_manifest(SHORT))
        drive(manager, first)  # DONE sessions free their slot
        manager.create(parse_manifest(SHORT))

    def test_reap(self):
        manager = SessionManager()
        session = manager.create(parse_manifest(SHORT))
        assert manager.remove(session.id) is session
        with pytest.raises(KeyError):
            manager.get(session.id)

    def test_manager_metrics(self):
        manager = SessionManager()
        session = manager.create(parse_manifest(SHORT), autostart=True)
        drive(manager, session)
        samples = {s["name"]: s["value"]
                   for s in manager.registry.collect()}
        assert samples["serve.sessions_created_total"] == 1.0
        assert samples["serve.sessions_completed_total"] == 1.0
        assert samples["serve.sessions_live"] == 0.0


class TestInjection:
    def make_running(self):
        manager = SessionManager()
        session = manager.create(parse_manifest(SHORT), autostart=True)
        manager.step_once()
        return manager, session

    def test_limit_injection_records_decision(self):
        manager, session = self.make_running()
        ack = session.inject({"kind": "limit", "policy": "cap",
                              "limit": 0.6})
        assert ack["changed"] is True
        assert session.injections == 1
        decisions = [json.loads(e.data) for e in events_of(session, "decision")]
        kinds = [d["kind"] for d in decisions]
        assert "inject.limit" in kinds
        drive(manager, session)
        assert session.summary_payload["injected"] is True
        assert session.summary_payload["golden"] is None
        assert session.summary_payload["decision_counts"]["inject.limit"] == 1

    def test_governor_swap_takes_effect(self):
        manager, session = self.make_running()
        ack = session.inject({"kind": "governor", "policy": "cap",
                              "governor": "const:0.5"})
        assert ack["governor"] == "const:0.5"
        policy = session.system.controller.policies[0]
        assert policy.governor.describe() == "const:0.5"
        drive(manager, session)
        # The reset _last_limit forces the swapped governor to re-announce
        # its limit at the next evaluation, so the new rule provably ran.
        assert policy._last_limit == 0.5
        decisions = [json.loads(e.data) for e in events_of(session, "decision")]
        limits = [d["data"]["limit"] for d in decisions
                  if d["kind"] == "policy.limit" and d["source"] == "cap"]
        assert 0.5 in limits

    def test_policy_attach(self):
        manager, session = self.make_running()
        session.inject({"kind": "policy", "policy": {
            "name": "soc-guard", "signal": "soc",
            "governor": "linear:0.2:0.5", "control": "vm_retarget"}})
        names = [p.name for p in session.system.controller.policies]
        assert names == ["cap", "soc-guard"]
        with pytest.raises(SessionError, match="already attached"):
            session.inject({"kind": "policy", "policy": {
                "name": "soc-guard", "signal": "soc",
                "governor": "const:1", "control": "vm_retarget"}})
        drive(manager, session)

    def test_raw_control_injection(self):
        manager, session = self.make_running()
        # charge_current_cap starts at 1.0, so capping to 0.5 always
        # actuates (unlike vm_retarget, whose target may already be low).
        ack = session.inject({"kind": "control",
                              "control": "charge_current_cap",
                              "limit": 0.5})
        assert ack["changed"] is True
        assert session.system.plant.bus.charger.cap_fraction == 0.5
        decisions = [json.loads(e.data) for e in events_of(session, "decision")]
        sources = {d["source"] for d in decisions
                   if d["kind"] == "charge.current_cap"}
        assert "serve:" + session.id in sources
        drive(manager, session)

    @pytest.mark.parametrize("payload, match", [
        ({"kind": "bogus"}, "unknown injection kind"),
        ({}, "unknown injection kind"),
        ({"kind": "limit", "policy": "nope", "limit": 0.5}, "no attached"),
        ({"kind": "limit", "policy": "cap", "limit": "x"}, "number"),
        ({"kind": "limit", "policy": "cap", "limit": True}, "number"),
        ({"kind": "governor", "policy": "cap", "governor": "wat:1"},
         "governor"),
        ({"kind": "control", "control": "nope", "limit": 0.5},
         "unknown control"),
    ])
    def test_invalid_injections(self, payload, match):
        _, session = self.make_running()
        with pytest.raises(SessionError, match=match):
            session.inject(payload)
        assert session.injections == 0

    def test_injection_refused_after_done(self):
        manager, session = self.make_running()
        drive(manager, session)
        with pytest.raises(SessionError, match="done"):
            session.inject({"kind": "limit", "policy": "cap", "limit": 0.5})

    def test_dvfs_control_refused_on_baseline(self):
        manifest = parse_manifest({
            "controller": "baseline", "workload": "seismic",
            "weather": "sunny", "duration_s": 600.0, "tick_slice": 30})
        session = Session("t-3", manifest)
        session.start()
        with pytest.raises(SessionError, match="insure"):
            session.inject({"kind": "control", "control": "duty_cap",
                            "limit": 0.5})


class TestFailureIsolation:
    def test_step_failure_fails_session_not_manager(self):
        manager = SessionManager()
        session = manager.create(parse_manifest(SHORT), autostart=True)
        healthy = manager.create(parse_manifest({**SHORT, "seed": 4}),
                                 autostart=True)
        session.system.engine.advance = None  # induce a crash mid-step
        manager.step_once()
        assert session.state == SessionState.FAILED
        assert session.error is not None
        kinds = [e.event for e in session.events.events_after(0)]
        assert "error" in kinds and kinds[-1] == "end"
        drive(manager, healthy)
        assert healthy.state == SessionState.DONE


@pytest.mark.golden
class TestServedDeterminism:
    """A served, injection-free golden cell matches its pinned record."""

    def test_golden_cell_reproduces(self):
        manager = SessionManager()
        session = manager.create(
            parse_manifest({"cell": "insure:seismic:cloudy"}),
            autostart=True)
        drive(manager, session, max_turns=100_000)
        verdict = session.summary_payload["golden"]
        assert verdict is not None
        assert verdict["ok"], verdict["mismatches"]
        assert session.summary_payload["closure"]["ok"]

    def test_scenario_cell_reproduces(self):
        manager = SessionManager()
        session = manager.create(
            parse_manifest({"cell": "scenario-grid-hybrid"}),
            autostart=True)
        drive(manager, session, max_turns=100_000)
        verdict = session.summary_payload["golden"]
        assert verdict is not None
        assert verdict["ok"], verdict["mismatches"]
