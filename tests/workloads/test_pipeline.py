"""Staged seismic pipeline: stage geometry and checkpoint semantics."""

import pytest

from repro.workloads.pipeline import (
    DEFAULT_STAGES,
    PipelineStage,
    StagedSeismicAnalysis,
)


@pytest.fixture
def workload():
    return StagedSeismicAnalysis(initial_backlog_jobs=1)


class TestStageGeometry:
    def test_default_stages_sum_to_one(self):
        assert sum(s.work_fraction for s in DEFAULT_STAGES) == pytest.approx(1.0)

    def test_boundaries_cumulative(self, workload):
        marks = workload.stage_boundaries_gb(100.0)
        assert marks == pytest.approx([25.0, 60.0, 80.0, 100.0])

    def test_current_stage_lookup(self, workload):
        assert workload.current_stage(10.0, 100.0).name == "deconvolution"
        assert workload.current_stage(30.0, 100.0).name == "velocity-analysis"
        assert workload.current_stage(99.9, 100.0).name == "migration"

    def test_last_boundary(self, workload):
        assert workload.last_boundary_before(10.0, 100.0) == 0.0
        assert workload.last_boundary_before(30.0, 100.0) == 25.0
        assert workload.last_boundary_before(100.0, 100.0) == 100.0

    def test_bad_stage_fractions_rejected(self):
        with pytest.raises(ValueError):
            StagedSeismicAnalysis(stages=(PipelineStage("only", 0.7),))
        with pytest.raises(ValueError):
            PipelineStage("bad", 0.0)

    def test_lookup_validation(self, workload):
        with pytest.raises(ValueError):
            workload.current_stage(-1.0, 100.0)


class TestCheckpointSemantics:
    def test_checkpoint_snaps_to_boundary(self, workload):
        job = workload.queue.head
        job.done_gb = 40.0  # mid velocity-analysis (boundary at 28.5 GB)
        workload.checkpoint_all()
        assert job.checkpoint_gb == pytest.approx(0.25 * job.size_gb)

    def test_crash_loses_inflight_stage(self, workload):
        job = workload.queue.head
        job.done_gb = 40.0
        workload.checkpoint_all()
        lost = workload.on_crash()
        assert lost == pytest.approx(40.0 - 0.25 * job.size_gb)

    def test_checkpoint_never_regresses(self, workload):
        job = workload.queue.head
        job.done_gb = 40.0
        workload.checkpoint_all()
        job.done_gb = 26.0  # hypothetical rollback artefact
        workload.checkpoint_all()
        assert job.checkpoint_gb == pytest.approx(0.25 * job.size_gb)

    def test_plain_model_loses_less(self):
        """The staged model is strictly more pessimistic about crashes
        than the plain interval-checkpointing one."""
        from repro.workloads.seismic import SeismicAnalysis

        staged = StagedSeismicAnalysis(initial_backlog_jobs=1)
        plain = SeismicAnalysis(initial_backlog_jobs=1)
        for workload in (staged, plain):
            workload.queue.head.done_gb = 40.0
            workload.checkpoint_all()
        assert staged.queue.head.checkpoint_gb <= plain.queue.head.checkpoint_gb
