"""Seismic, video and micro workloads."""

import pytest

from repro.workloads.micro import FIGURE17_BENCHMARKS, MICRO_BENCHMARKS, MicroWorkload
from repro.workloads.seismic import SeismicAnalysis
from repro.workloads.video import VideoSurveillance

HOUR = 3600.0


class TestSeismic:
    def test_initial_backlog(self):
        assert len(SeismicAnalysis().queue) == 1
        assert SeismicAnalysis(initial_backlog_jobs=0).queue.head is None

    def test_calibration_16_5_gbh_at_4vm(self):
        workload = SeismicAnalysis()
        # One hour of 4 full-speed VMs.
        done = workload.step(0.0, HOUR, compute_seconds=4 * HOUR)
        assert done == pytest.approx(16.5, rel=0.01)

    def test_arrivals_twice_daily(self):
        workload = SeismicAnalysis(initial_backlog_jobs=0)
        # Simulate a full day from 07:00 in hourly ticks.
        for i in range(24):
            workload.step(i * HOUR, HOUR, 0.0)
        assert len(workload.queue) == 2

    def test_duty_actuated(self):
        assert SeismicAnalysis.actuation == "duty"

    def test_job_size(self):
        assert SeismicAnalysis().queue.head.size_gb == 114.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SeismicAnalysis(job_size_gb=0.0)


class TestVideo:
    def test_chunk_rate(self):
        workload = VideoSurveillance()
        assert workload.chunk_gb == pytest.approx(0.21)
        workload.step(0.0, 600.0, 0.0)
        assert len(workload.queue) == 10

    def test_eight_vms_keep_up(self):
        workload = VideoSurveillance()
        for i in range(120):
            workload.step(i * 60.0, 60.0, compute_seconds=8 * 60.0)
        assert workload.backlog_gb < 0.5
        assert workload.stats.mean_delay_minutes < 0.2

    def test_two_vms_fall_behind(self):
        workload = VideoSurveillance()
        for i in range(120):
            workload.step(i * 60.0, 60.0, compute_seconds=2 * 60.0)
        assert workload.backlog_gb > 10.0

    def test_vm_actuated(self):
        assert VideoSurveillance.actuation == "vms"

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoSurveillance(rate_gb_per_min=0.0)
        with pytest.raises(ValueError):
            VideoSurveillance(chunk_seconds=0.0)


class TestMicro:
    def test_all_profiles_valid(self):
        for name, benchmark in MICRO_BENCHMARKS.items():
            assert benchmark.name == name
            assert benchmark.gb_per_compute_second > 0

    def test_figure17_subset_exists(self):
        assert set(FIGURE17_BENCHMARKS) <= set(MICRO_BENCHMARKS)

    def test_iterations_queue_back_to_back(self):
        workload = MicroWorkload("dedup")
        size = workload.benchmark.input_gb
        compute = (size * 1.25) / workload.gb_per_compute_second
        workload.step(0.0, 60.0, compute)
        workload.step(60.0, 60.0, compute)
        assert workload.completed_iterations == 2
        # A fresh iteration is re-queued at the next step.
        workload.step(120.0, 60.0, 0.0)
        assert workload.queue.head is not None

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError):
            MicroWorkload("quake3")

    def test_profile_speed_factor_applied(self):
        xeon = MicroWorkload("dedup", profile_name="xeon-dl380")
        i7 = MicroWorkload("dedup", profile_name="core-i7")
        assert i7.gb_per_compute_second == pytest.approx(
            xeon.gb_per_compute_second * 2.02
        )

    def test_benchmark_instance_accepted(self):
        workload = MicroWorkload(MICRO_BENCHMARKS["x264"])
        assert workload.benchmark.name == "x264"


class TestSeismicDeadlines:
    def test_jobs_carry_one_day_deferral(self):
        workload = SeismicAnalysis()
        job = workload.queue.head
        assert job.deadline_t == pytest.approx(job.arrival_t + 24 * 3600.0)

    def test_custom_deferral_window(self):
        workload = SeismicAnalysis(deferral_window_s=3600.0)
        job = workload.queue.head
        assert job.deadline_t == pytest.approx(job.arrival_t + 3600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeismicAnalysis(deferral_window_s=0.0)

    def test_timely_processing_meets_deadline(self):
        workload = SeismicAnalysis()
        # Process the whole backlog within a few hours.
        for i in range(10):
            workload.step(i * 3600.0, 3600.0, compute_seconds=8 * 3600.0)
        assert workload.stats.deadline_total >= 1
        assert workload.stats.deadline_misses == 0
