"""Jobs, queues and the workload base class."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import Job, JobQueue, Workload


class SteadyWorkload(Workload):
    """Test double: one fixed-size job queued at construction."""

    gb_per_compute_second = 0.01
    preferred_vms = 4

    def __init__(self, job_gb=10.0):
        super().__init__("steady")
        self.queue.push(Job("j1", job_gb, 0.0))

    def _generate(self, t, dt):
        pass


class TestJob:
    def test_advance_and_finish(self):
        job = Job("j", 5.0, 0.0)
        assert job.advance(3.0, t=10.0) == 3.0
        assert not job.finished
        assert job.advance(5.0, t=20.0) == 2.0
        assert job.finished
        assert job.completion_t == 20.0

    def test_rollback_to_checkpoint(self):
        job = Job("j", 10.0, 0.0)
        job.advance(4.0, 1.0)
        job.checkpoint()
        job.advance(3.0, 2.0)
        lost = job.rollback()
        assert lost == pytest.approx(3.0)
        assert job.done_gb == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Job("j", 0.0, 0.0)
        with pytest.raises(ValueError):
            Job("j", 1.0, -1.0)
        job = Job("j", 1.0, 0.0)
        with pytest.raises(ValueError):
            job.advance(-1.0, 0.0)

    @given(
        size=st.floats(0.5, 100.0),
        chunks=st.lists(st.floats(0.0, 30.0), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_progress_never_exceeds_size(self, size, chunks):
        job = Job("j", size, 0.0)
        for i, chunk in enumerate(chunks):
            job.advance(chunk, float(i))
        assert 0.0 <= job.done_gb <= size + 1e-9


class TestJobQueue:
    def test_fifo_head(self):
        queue = JobQueue()
        queue.push(Job("a", 1.0, 0.0))
        queue.push(Job("b", 1.0, 0.0))
        assert queue.head.job_id == "a"

    def test_retire_finished(self):
        queue = JobQueue()
        job = Job("a", 1.0, 0.0)
        queue.push(job)
        job.advance(1.0, 5.0)
        queue.retire_finished()
        assert len(queue) == 0
        assert queue.completed == [job]

    def test_backlog(self):
        queue = JobQueue()
        queue.push(Job("a", 3.0, 0.0))
        queue.push(Job("b", 4.0, 0.0))
        assert queue.backlog_gb == 7.0


class TestWorkloadStep:
    def test_compute_converts_to_progress(self):
        workload = SteadyWorkload()
        done = workload.step(0.0, 5.0, compute_seconds=100.0)
        assert done == pytest.approx(1.0)
        assert workload.stats.processed_gb == pytest.approx(1.0)

    def test_no_compute_no_progress(self):
        workload = SteadyWorkload()
        assert workload.step(0.0, 5.0, 0.0) == 0.0

    def test_completion_records_delay(self):
        workload = SteadyWorkload(job_gb=1.0)
        workload.step(0.0, 5.0, compute_seconds=200.0)
        assert len(workload.stats.delays_s) == 1

    def test_crash_rolls_back(self):
        workload = SteadyWorkload()
        workload.step(0.0, 5.0, 100.0)
        workload.checkpoint_all()
        workload.step(5.0, 5.0, 100.0)
        before = workload.stats.processed_gb
        lost = workload.on_crash()
        assert lost == pytest.approx(1.0)
        assert workload.stats.processed_gb == pytest.approx(before - 1.0)
        assert workload.stats.crash_count == 1

    def test_periodic_checkpoint_limits_loss(self):
        workload = SteadyWorkload()
        workload.checkpoint_interval_s = 10.0
        for i in range(4):
            workload.step(i * 5.0, 5.0, 10.0)
        lost = workload.on_crash()
        # At most one checkpoint interval of progress is lost.
        assert lost <= 0.01 * 10.0 * 3 + 1e-9

    def test_censored_delay_counts_pending(self):
        workload = SteadyWorkload(job_gb=100.0)
        workload.step(0.0, 5.0, 10.0)
        # After 10 hours, the unfinished job has accrued real delay.
        assert workload.mean_delay_minutes(36_000.0) > 0.0

    def test_input_validation(self):
        workload = SteadyWorkload()
        with pytest.raises(ValueError):
            workload.step(0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            workload.step(0.0, 5.0, -1.0)
        with pytest.raises(ValueError):
            workload.mean_delay_minutes(-1.0)


class TestDeadlines:
    def test_met_deadline(self):
        job = Job("j", 1.0, 0.0, deadline_t=100.0)
        job.advance(1.0, t=50.0)
        assert job.met_deadline is True

    def test_missed_deadline(self):
        job = Job("j", 1.0, 0.0, deadline_t=100.0)
        job.advance(1.0, t=150.0)
        assert job.met_deadline is False

    def test_no_deadline_is_none(self):
        job = Job("j", 1.0, 0.0)
        job.advance(1.0, t=50.0)
        assert job.met_deadline is None

    def test_pending_is_none(self):
        assert Job("j", 1.0, 0.0, deadline_t=100.0).met_deadline is None

    def test_workload_miss_rate(self):
        workload = SteadyWorkload.__new__(SteadyWorkload)
        Workload.__init__(workload, "deadlines")
        workload.queue.push(Job("on-time", 1.0, 0.0, deadline_t=1e6))
        workload.queue.push(Job("late", 1.0, 0.0, deadline_t=1.0))
        workload._generate = lambda t, dt: None
        workload.gb_per_compute_second = 0.01
        workload.step(10.0, 5.0, compute_seconds=500.0)
        assert workload.stats.deadline_total == 2
        assert workload.stats.deadline_misses == 1
        assert workload.stats.deadline_miss_rate == 0.5

    def test_miss_rate_zero_without_deadlines(self):
        workload = SteadyWorkload()
        workload.step(0.0, 5.0, compute_seconds=10_000.0)
        assert workload.stats.deadline_miss_rate == 0.0
