"""Carbon footprint comparisons."""

import pytest

from repro.cost.carbon import (
    annual_comparison,
    diesel_footprint,
    fuel_cell_footprint,
    grid_footprint,
    insure_footprint,
)

KWH = 3500.0


class TestFootprints:
    def test_insure_cleanest_option(self):
        comparison = annual_comparison(KWH)
        insure = comparison["insure"].total_kg
        assert insure < comparison["fuel-cell"].total_kg
        assert insure < comparison["diesel"].total_kg
        assert insure < comparison["grid"].total_kg

    def test_diesel_dirtiest(self):
        comparison = annual_comparison(KWH)
        assert comparison["diesel"].total_kg == max(
            fp.total_kg for fp in comparison.values()
        )

    def test_diesel_magnitude(self):
        # 3500 kWh * 0.45 l/kWh * 2.68 kg/l ~ 4.2 tonnes.
        fp = diesel_footprint(KWH)
        assert fp.operational_kg == pytest.approx(4221.0, rel=0.01)

    def test_fuel_cell_cleaner_than_diesel_per_kwh(self):
        assert fuel_cell_footprint(KWH).operational_kg < diesel_footprint(
            KWH
        ).operational_kg

    def test_battery_embodied_counted(self):
        fp = insure_footprint(KWH)
        assert fp.embodied_kg > 0.0
        # Operational solar lifecycle emissions stay modest.
        assert fp.operational_kg < 300.0

    def test_zero_usage(self):
        assert grid_footprint(0.0).total_kg == 0.0
        assert diesel_footprint(0.0).operational_kg == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            diesel_footprint(-1.0)
        with pytest.raises(ValueError):
            insure_footprint(KWH, battery_capacity_kwh=0.0)

    def test_scaling_linear_in_operational(self):
        small = insure_footprint(1000.0)
        large = insure_footprint(2000.0)
        assert large.operational_kg == pytest.approx(2 * small.operational_kg)
        assert large.embodied_kg == small.embodied_kg
