"""Energy TCO, depreciation, scale-out and scenarios (Figs 3b, 22-25)."""

import pytest

from repro.cost.energy import (
    DIESEL,
    FUEL_CELL,
    SOLAR_BATTERY,
    EnergySource,
    annual_depreciation,
    annual_depreciation_total,
    energy_tco,
)
from repro.cost.scaleout import (
    amortized_cloud_cost,
    amortized_scaleout_cost,
    cloud_cost,
    crossover_rate,
    insitu_cost,
    pods_required,
    tco_vs_data_rate,
)
from repro.cost.scenarios import SCENARIOS, all_scenario_savings, scenario_savings


class TestEnergyTCO:
    def test_fuel_cell_most_expensive_long_run(self):
        for years in (5, 11):
            assert energy_tco(FUEL_CELL, years) > energy_tco(SOLAR_BATTERY, years)
            assert energy_tco(FUEL_CELL, years) > energy_tco(DIESEL, years)

    def test_solar_beats_diesel_by_year_5(self):
        assert energy_tco(SOLAR_BATTERY, 5) < energy_tco(DIESEL, 5)

    def test_diesel_cheap_up_front(self):
        assert energy_tco(DIESEL, 1) < energy_tco(SOLAR_BATTERY, 1)

    def test_battery_replacements_counted(self):
        with_batt = energy_tco(SOLAR_BATTERY, 9)
        without = energy_tco(SOLAR_BATTERY, 9, include_battery=False)
        assert with_batt - without == pytest.approx(3 * 210.0 * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_tco(DIESEL, 0.0)
        with pytest.raises(ValueError):
            EnergySource("x", -1.0, 5.0, 0.1)


class TestFigure22:
    def test_diesel_roughly_20_pct_more(self):
        insure = annual_depreciation_total("InSURE")
        diesel = annual_depreciation_total("DG")
        assert 0.15 <= diesel / insure - 1.0 <= 0.25

    def test_fuel_cell_roughly_24_pct_more(self):
        insure = annual_depreciation_total("InSURE")
        fc = annual_depreciation_total("FC")
        assert 0.20 <= fc / insure - 1.0 <= 0.30

    def test_ebuffer_around_9_pct_of_insure(self):
        breakdown = annual_depreciation("InSURE")
        share = breakdown["battery"] / sum(breakdown.values())
        assert 0.07 <= share <= 0.11

    def test_pv_and_inverter_around_8_pct(self):
        breakdown = annual_depreciation("InSURE")
        share = (breakdown["pv_panels"] + breakdown["inverter"]) / sum(
            breakdown.values()
        )
        assert 0.06 <= share <= 0.10

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            annual_depreciation("NUCLEAR")


class TestFigure23:
    def test_more_pods_at_lower_sunshine(self):
        assert pods_required(240.0, 0.4) > pods_required(240.0, 1.0)

    def test_scaleout_cheaper_than_cloud_at_all_ssf(self):
        cloud = amortized_cloud_cost()
        for ssf in (1.0, 0.8, 0.6, 0.4):
            assert amortized_scaleout_cost(ssf) < cloud

    def test_savings_up_to_60_pct(self):
        cloud = amortized_cloud_cost()
        best = 1.0 - amortized_scaleout_cost(1.0) / cloud
        assert best >= 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            pods_required(0.0, 1.0)
        with pytest.raises(ValueError):
            pods_required(100.0, 1.5)


class TestFigure24:
    def test_crossover_near_paper_value(self):
        rate = crossover_rate()
        assert 0.5 <= rate <= 1.5  # paper: ~0.9 GB/day

    def test_cloud_cheaper_below_crossover(self):
        rate = crossover_rate()
        assert cloud_cost(rate * 0.5) < insitu_cost(rate * 0.5)
        assert cloud_cost(rate * 2.0) > insitu_cost(rate * 2.0)

    def test_savings_at_half_tb_per_day(self):
        saving = 1.0 - insitu_cost(500.0) / cloud_cost(500.0)
        assert saving >= 0.9  # paper: up to 96 %

    def test_curve_family_structure(self):
        curves = tco_vs_data_rate()
        assert "cloud" in curves
        assert "insitu-100%" in curves
        # Lower sunshine fraction never cheaper.
        for a, b in zip(curves["insitu-100%"], curves["insitu-40%"], strict=True):
            assert b >= a


class TestFigure25:
    def test_savings_land_in_paper_ranges(self):
        for key, saving in all_scenario_savings().items():
            lo, hi = SCENARIOS[key].paper_savings_range
            assert lo - 0.12 <= saving <= hi + 0.12, (key, saving)

    def test_long_heavy_deployments_save_most(self):
        savings = all_scenario_savings()
        assert savings["E"] > savings["B"]
        assert savings["D"] > savings["A"]

    def test_sunshine_fraction_matters(self):
        scenario = SCENARIOS["D"]
        assert scenario_savings(scenario, 1.0) >= scenario_savings(scenario, 0.4)
