"""Data movement costs (Figures 1 and 3a)."""

import pytest

from repro.cost.it import InSituCosts, TransmitCosts, it_tco_timeline
from repro.cost.transfer import (
    LINKS,
    aws_egress_cost_per_tb,
    satellite_plan_monthly_usd,
    transfer_cost_usd,
    transfer_hours_per_tb,
)


class TestTransferTime:
    def test_t1_takes_weeks(self):
        assert transfer_hours_per_tb(LINKS["T1 (1.5 Mbps)"]) > 24 * 30

    def test_10gbe_takes_under_an_hour(self):
        assert transfer_hours_per_tb(LINKS["10 Gbps"]) < 1.0

    def test_monotonic_in_speed(self):
        speeds = sorted(LINKS.values())
        times = [transfer_hours_per_tb(s) for s in speeds]
        assert times == sorted(times, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_hours_per_tb(0.0)
        with pytest.raises(ValueError):
            transfer_hours_per_tb(10.0, efficiency=0.0)


class TestAWSEgress:
    def test_paper_figure_1b_magnitudes(self):
        # Figure 1b: >$110/TB at 10 TB falling towards ~$50/TB at 500 TB.
        assert aws_egress_cost_per_tb(10.0) > 100.0
        assert aws_egress_cost_per_tb(500.0) < 60.0

    def test_average_decreasing(self):
        rates = [aws_egress_cost_per_tb(tb) for tb in (10, 50, 150, 250, 500)]
        assert rates == sorted(rates, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            aws_egress_cost_per_tb(0.0)


class TestMediaCosts:
    def test_satellite_per_mb(self):
        assert transfer_cost_usd(1.0, "satellite") == pytest.approx(140.0)

    def test_cellular_per_gb(self):
        assert transfer_cost_usd(10.0, "cellular") == pytest.approx(100.0)

    def test_hardware_included_when_asked(self):
        bare = transfer_cost_usd(1.0, "cellular")
        assert transfer_cost_usd(1.0, "cellular", include_hardware=True) > bare

    def test_unknown_medium(self):
        with pytest.raises(ValueError):
            transfer_cost_usd(1.0, "pigeon")

    def test_satellite_plan_sublinear(self):
        full = satellite_plan_monthly_usd(530.0)
        small = satellite_plan_monthly_usd(53.0)
        assert full == pytest.approx(30_000.0)
        assert small > 30_000.0 * 0.1  # much more than the linear share
        assert small < full


class TestFigure3a:
    def test_insitu_cheaper_than_transmit_everything(self):
        for medium in ("satellite", "cellular"):
            transmit = TransmitCosts(medium).cumulative_usd(5.0)
            insitu = InSituCosts(medium).cumulative_usd(5.0)
            assert insitu < transmit

    def test_satellite_saving_over_55_pct(self):
        transmit = TransmitCosts("satellite").cumulative_usd(5.0)
        insitu = InSituCosts("satellite").cumulative_usd(5.0)
        assert 1.0 - insitu / transmit >= 0.55

    def test_cellular_saving_around_95_pct(self):
        transmit = TransmitCosts("cellular").cumulative_usd(5.0)
        insitu = InSituCosts("cellular").cumulative_usd(5.0)
        assert 1.0 - insitu / transmit >= 0.90

    def test_million_dollar_savings_in_5_years(self):
        """Paper: in-situ saves over a million dollars in five years."""
        transmit = TransmitCosts("cellular").cumulative_usd(5.0)
        insitu = InSituCosts("cellular").cumulative_usd(5.0)
        assert transmit - insitu > 1_000_000.0

    def test_timeline_shape(self):
        timeline = it_tco_timeline()
        assert set(timeline) == {
            "Satellite(SA)", "Cellular(4G)", "InSitu + SA", "InSitu + 4G",
        }
        for series in timeline.values():
            assert series == sorted(series)  # cumulative costs grow

    def test_validation(self):
        with pytest.raises(ValueError):
            TransmitCosts("cellular").cumulative_usd(0.0)
        with pytest.raises(ValueError):
            InSituCosts("cellular").cumulative_usd(-1.0)
