"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_day_defaults(self):
        args = build_parser().parse_args(["day"])
        assert args.controller == "insure"
        assert args.workload == "video"
        assert args.solar == "sunny"

    def test_invalid_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["day", "--controller", "magic"])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_plan_requires_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])


class TestCommands:
    def test_table7(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "dedup" in out and "GB/kWh" in out

    def test_plan_in_situ_verdict(self, capsys):
        assert main(["plan", "--gb-per-day", "200", "--days", "365"]) == 0
        out = capsys.readouterr().out
        assert "deploy in-situ" in out

    def test_plan_cloud_verdict(self, capsys):
        assert main(["plan", "--gb-per-day", "0.2", "--days", "365"]) == 0
        out = capsys.readouterr().out
        assert "use the cloud" in out

    def test_day_run(self, capsys):
        code = main([
            "day", "--workload", "video", "--solar", "rainy",
            "--mean-w", "300", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "uptime" in out and "GB/h" in out

    def test_compare_run(self, capsys):
        code = main([
            "compare", "--workload", "video", "--solar", "cloudy",
            "--mean-w", "450", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[insure]" in out and "[baseline]" in out
        assert "improvement" in out


class TestArtifactFlags:
    def test_day_writes_report_and_trace(self, tmp_path, capsys):
        report = tmp_path / "day.md"
        trace = tmp_path / "day.csv"
        code = main([
            "day", "--workload", "video", "--solar", "rainy",
            "--mean-w", "300", "--seed", "2",
            "--report", str(report), "--trace-csv", str(trace),
        ])
        assert code == 0
        assert report.exists() and report.read_text().startswith("#")
        header = trace.read_text().splitlines()[0]
        assert header.startswith("t,")
