"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_day_defaults(self):
        args = build_parser().parse_args(["day"])
        assert args.controller == "insure"
        assert args.workload == "video"
        assert args.solar == "sunny"

    def test_invalid_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["day", "--controller", "magic"])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_plan_requires_rate(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_profile_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])

    def test_profile_run_defaults(self):
        args = build_parser().parse_args(["profile", "run"])
        assert args.controller == "insure"
        assert args.stride == 16
        assert args.out is None and args.cprofile is None

    def test_validate_sweep_flags(self):
        args = build_parser().parse_args(
            ["validate", "--sweep-hours", "36", "--report", "out.json"])
        assert args.sweep_hours == 36.0
        assert args.report == "out.json"


class TestCommands:
    def test_table7(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "dedup" in out and "GB/kWh" in out

    def test_plan_in_situ_verdict(self, capsys):
        assert main(["plan", "--gb-per-day", "200", "--days", "365"]) == 0
        out = capsys.readouterr().out
        assert "deploy in-situ" in out

    def test_plan_cloud_verdict(self, capsys):
        assert main(["plan", "--gb-per-day", "0.2", "--days", "365"]) == 0
        out = capsys.readouterr().out
        assert "use the cloud" in out

    def test_day_run(self, capsys):
        code = main([
            "day", "--workload", "video", "--solar", "rainy",
            "--mean-w", "300", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "uptime" in out and "GB/h" in out

    def test_compare_run(self, capsys):
        code = main([
            "compare", "--workload", "video", "--solar", "cloudy",
            "--mean-w", "450", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[insure]" in out and "[baseline]" in out
        assert "improvement" in out


class TestProfileCommand:
    def test_profile_run_prints_breakdown_and_writes_artifacts(
            self, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        code = main([
            "profile", "run", "--workload", "seismic", "--solar", "sunny",
            "--mean-w", "900", "--seed", "3", "--duration-h", "0.5",
            "--stride", "4", "--out", str(out_dir),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-component time breakdown" in out
        assert "hottest sampled ticks" in out
        assert "decision events" in out
        for artifact in ("metrics.jsonl", "metrics.prom", "decisions.jsonl",
                         "spans.folded", "breakdown.txt"):
            assert (out_dir / artifact).is_file()


class TestValidateSweep:
    def test_sweep_single_cell_clean(self, tmp_path, capsys):
        report = tmp_path / "sweep.json"
        code = main([
            "validate", "--sweep-hours", "0.5",
            "--cell", "insure:video:sunny", "--jobs", "1",
            "--report", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariant sweep" in out and "all cells clean" in out
        assert report.is_file()
        import json

        payload = json.loads(report.read_text())
        assert payload["sweep_hours"] == 0.5
        assert "insure-video-sunny" in payload["cells"]

    def test_sweep_rejects_nonpositive_hours(self):
        with pytest.raises(SystemExit):
            main(["validate", "--sweep-hours", "0"])


class TestArtifactFlags:
    def test_day_writes_report_and_trace(self, tmp_path, capsys):
        report = tmp_path / "day.md"
        trace = tmp_path / "day.csv"
        code = main([
            "day", "--workload", "video", "--solar", "rainy",
            "--mean-w", "300", "--seed", "2",
            "--report", str(report), "--trace-csv", str(trace),
        ])
        assert code == 0
        assert report.exists() and report.read_text().startswith("#")
        header = trace.read_text().splitlines()[0]
        assert header.startswith("t,")
