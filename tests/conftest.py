"""Shared test configuration: Hypothesis settings profiles.

The default profile keeps the tier-1 suite fast; the ``nightly`` profile
(selected via ``HYPOTHESIS_PROFILE=nightly``, used by the scheduled CI
workflow) spends ~10x the example budget with no per-example deadline so
the property suites dig deeper than a PR run can afford.  Pair it with
``--hypothesis-seed=0`` for reproducible nightly failures.
"""

from __future__ import annotations

import os

from hypothesis import settings

settings.register_profile("default", settings())
settings.register_profile("nightly", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
