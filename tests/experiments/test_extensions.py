"""Extension experiments: heterogeneity, backup power, multi-day."""

import pytest

from repro.experiments.extensions import (
    run_backup_day,
    run_heterogeneous_day,
    run_multiday,
)


class TestHeterogeneousPod:
    @pytest.fixture(scope="class")
    def result(self):
        return run_heterogeneous_day()

    def test_i7_pod_far_more_productive(self, result):
        """Paper §6.2: low-power servers improve throughput by 5x-15x on
        the same energy budget."""
        assert result.throughput_gain > 3.0

    def test_i7_energy_efficiency_in_paper_band(self, result):
        assert 4.0 <= result.perf_per_kwh_gain <= 20.0

    def test_i7_pod_nearly_always_up(self, result):
        """An i7 pod sips power: a cloudy day barely constrains it."""
        assert result.i7.uptime_fraction > result.xeon.uptime_fraction


class TestBackupPower:
    @pytest.fixture(scope="class")
    def result(self):
        return run_backup_day()

    def test_backup_improves_uptime(self, result):
        assert result.with_backup.uptime_fraction > result.solar_only.uptime_fraction

    def test_fuel_actually_burned(self, result):
        assert result.fuel_litres > 0.0
        assert result.genset_starts >= 1

    def test_fuel_cost_modest(self, result):
        """A day of backup costs dollars, not hundreds."""
        assert result.fuel_cost_usd < 100.0


class TestMultiDay:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multiday(days=2, dt=10.0)

    def test_progress_accumulates_across_days(self, result):
        assert result.per_day[1].processed_gb > result.per_day[0].processed_gb

    def test_life_projection_stays_finite(self, result):
        assert 100.0 < result.final_life_days < 3000.0

    def test_wear_stays_balanced(self, result):
        assert result.discharge_imbalance_ah < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_multiday(days=0)


class TestStoragePressure:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.extensions import run_storage_pressure_day

        return run_storage_pressure_day()

    def test_insure_loses_less_footage(self, result):
        assert result.insure.dropped_gb < result.baseline.dropped_gb

    def test_loss_reduction_substantial(self, result):
        assert result.loss_reduction > 0.25

    def test_both_systems_under_pressure(self, result):
        """The scenario is meaningful: even InSURE drops some data."""
        assert result.insure.dropped_gb > 0.0
