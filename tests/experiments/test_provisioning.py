"""Provisioning sweep mechanics (small configurations for speed)."""

import pytest

from repro.experiments.provisioning import (
    ProvisioningPoint,
    diminishing_returns,
    run_provisioning_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    return run_provisioning_sweep(battery_counts=(2, 4), seeds=(12,))


class TestSweep:
    def test_points_in_order(self, sweep):
        assert [p.battery_count for p in sweep] == [2, 4]

    def test_bigger_buffer_never_much_worse(self, sweep):
        small, large = sweep
        assert large.processed_gb >= small.processed_gb * 0.85

    def test_cost_model(self, sweep):
        small, large = sweep
        assert small.extra_cost_usd_year < 0 < large.extra_cost_usd_year

    def test_summaries_kept(self, sweep):
        assert all(len(p.summaries) == 1 for p in sweep)


class TestDiminishingReturns:
    def test_gains_computed_pairwise(self):
        def point(count, gb):
            return ProvisioningPoint(
                battery_count=count, solar_scale=1.0, processed_gb=gb,
                uptime_fraction=0.5, summaries=(),
            )

        gains = diminishing_returns([point(2, 10.0), point(3, 14.0),
                                     point(4, 16.0)])
        assert gains == pytest.approx([4.0, 2.0])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            diminishing_returns([])
