"""Fleet backend routing, cell-id failure naming, Monte Carlo stats."""

import pytest

from repro.experiments import adapters
from repro.experiments.montecarlo import (
    PERCENTILES,
    format_monte_carlo,
    monte_carlo_cells,
    percentile,
)
from repro.experiments.runner import (
    BACKENDS,
    CellExecutionError,
    _cell_label,
    run_cells,
)
from repro.obs.registry import global_registry, reset_global_registry


def _double(x):
    """Module-level (picklable) cell function with no fleet adapter."""
    return x * 2


def _explode_on_two(x):
    if x == 2:
        raise ValueError(f"cell {x} blew up")
    return x


class TestAdapterRegistry:
    def test_experiment_cell_functions_are_adapted(self):
        from repro.experiments.fullsystem import run_single
        from repro.experiments.provisioning import run_provisioning_cell
        from repro.experiments.table6 import run_table6_cell

        for fn in (run_single, run_table6_cell, run_provisioning_cell):
            assert adapters.has_adapter(fn), fn.__name__

    def test_arbitrary_functions_are_not(self):
        assert not adapters.has_adapter(_double)

    def test_unadapted_function_raises_fleet_unsupported(self):
        from repro.sim.fleet import FleetUnsupported

        with pytest.raises(FleetUnsupported, match="no fleet adapter"):
            adapters.run_cells_fleet(_double, [dict(x=1)])

    def test_missing_numpy_raises_the_install_hint(self, monkeypatch):
        import repro.sim.fleet as fleet_pkg

        monkeypatch.setattr(fleet_pkg, "numpy_available", lambda: False)
        with pytest.raises(ImportError, match="repro"):
            adapters.run_cells_fleet(_double, [dict(x=1)])


class TestBackendSelection:
    def test_backend_names_are_pinned(self):
        assert BACKENDS == ("auto", "fleet", "pool", "serial")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_cells(_double, [dict(x=1)], backend="gpu")

    def test_env_var_backend_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="unknown backend"):
            run_cells(_double, [dict(x=1)])

    def test_fleet_degrades_to_pool_serial_for_unadapted_fn(self):
        reset_global_registry()
        cells = [dict(x=i) for i in range(4)]
        with pytest.warns(RuntimeWarning, match="fleet backend unavailable"):
            results = run_cells(_double, cells, backend="fleet", max_workers=1)
        assert results == [0, 2, 4, 6]
        counter = global_registry().get("runner.fleet_fallbacks_total")
        assert counter is not None and counter.value == 1

    def test_serial_backend_forces_in_process_loop(self):
        assert run_cells(_double, [dict(x=i) for i in range(3)],
                         backend="serial") == [0, 2, 4]


class TestCellFailureNaming:
    def test_label_includes_index_and_leading_kwargs(self):
        label = _cell_label(7, dict(controller="insure", seed=3,
                                    trace=[1, 2, 3]))
        assert label == "cell #7 (controller=insure, seed=3)"

    def test_pool_failure_names_the_cell(self):
        reset_global_registry()
        cells = [dict(x=i) for i in range(4)]
        with pytest.raises(CellExecutionError, match=r"cell #2 \(x=2\)") as info:
            run_cells(_explode_on_two, cells, max_workers=2, backend="pool")
        assert info.value.index == 2
        assert info.value.cell == dict(x=2)
        assert isinstance(info.value.__cause__, ValueError)
        counter = global_registry().get("runner.cell_failures_total")
        assert counter is not None and counter.value == 1

    def test_is_not_a_runtime_error(self):
        # The pool-infrastructure fallback catches RuntimeError; a named
        # cell failure must propagate, not trigger a serial re-run.
        assert not issubclass(CellExecutionError, RuntimeError)


class TestPercentiles:
    def test_median_of_odd_list(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_linear_interpolation_matches_numpy_convention(self):
        np = pytest.importorskip("numpy")
        values = [0.0, 1.0, 2.0, 10.0]
        for pct in PERCENTILES:
            assert percentile(values, pct) == pytest.approx(
                float(np.percentile(values, pct)))

    def test_single_value_is_every_percentile(self):
        assert percentile([4.2], 5) == 4.2
        assert percentile([4.2], 95) == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestMonteCarloCells:
    def test_grid_order_and_distinct_seeds(self):
        cells = monte_carlo_cells((2, 4), 1.0, 3, base_seed=7,
                                  mean_w=900.0, use_cache=False)
        assert len(cells) == 6
        assert [c["battery_count"] for c in cells] == [2, 2, 2, 4, 4, 4]
        seeds = {c["seed"] for c in cells}
        assert len(seeds) == 6  # sha256-derived, all distinct

    def test_seeds_are_reproducible(self):
        first = monte_carlo_cells((3,), 1.0, 4, 7, 900.0, True)
        again = monte_carlo_cells((3,), 1.0, 4, 7, 900.0, True)
        assert first == again

    def test_format_renders_one_row_per_point(self):
        from repro.experiments.montecarlo import MonteCarloPoint

        point = MonteCarloPoint(
            battery_count=3, solar_scale=1.0, samples=8,
            uptime_pct={p: 0.9 for p in PERCENTILES},
            processed_pct={p: 12.0 for p in PERCENTILES},
            min_voltage_pct={p: 11.5 for p in PERCENTILES},
        )
        table = format_monte_carlo([point])
        lines = table.splitlines()
        assert "Cabinets" in lines[0]
        assert lines[-1].lstrip().startswith("3")
