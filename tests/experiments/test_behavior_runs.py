"""Behaviour demonstrations (Figures 5 and 14a) at test scale."""

import pytest

from repro.experiments.behavior import (
    run_fig5_unified_switchout,
    run_fig14a_prioritisation,
)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5_unified_switchout()

    def test_bank_trips(self, result):
        assert len(result.switch_out_times) >= 1

    def test_service_collapses(self, result):
        assert result.demand_after_w < result.demand_before_w * 0.3

    def test_trip_happens_under_load(self, result):
        assert result.demand_before_w > 500.0


class TestFig14a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig14a_prioritisation()

    def test_spm_selects_a_cabinet(self, result):
        assert result.charge_order

    def test_lowest_soc_first(self, result):
        lowest = min(result.initial_socs, key=result.initial_socs.get)
        assert result.charge_order[0] == lowest
