"""Parallel fan-out: deterministic seeding, ordering, serial fallback."""

import warnings

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import default_workers, derive_seed, run_cells
from repro.obs.registry import global_registry, reset_global_registry


def _affine(x, scale=1, offset=0):
    """Module-level (picklable) cell function for pool tests."""
    return x * scale + offset


def _label(x, tag=""):
    return f"{tag}:{x}"


def _explode(x):
    if x == 2:
        raise ValueError(f"cell {x} blew up")
    return x


def _obs_payload(x):
    """A cell result shaped like compute_ledger_cell's rollup keys."""
    return {
        "cell": x,
        "ledger_edges": {"pv.harvest": 100.0 * (x + 1),
                         "bus.curtailed": 10.0,
                         "battery.delta_stored": -40.0,
                         "battery.residual": 5.0},
        "alert_counts": {"soc_droop": x},
    }


@pytest.fixture
def rearmed_pool_warning(monkeypatch):
    """Re-arm the once-per-process pool warning for this test."""
    monkeypatch.setattr(runner_mod, "_POOL_WARNING_EMITTED", False)


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_sensitive_to_labels(self):
        assert derive_seed(1, "insure") != derive_seed(1, "baseline")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_sensitive_to_base_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_fits_requested_bits(self):
        for base in range(20):
            assert 0 <= derive_seed(base, "cell") < (1 << 31)
        assert 0 <= derive_seed(7, "cell", bits=16) < (1 << 16)

    def test_hash_seed_independent(self):
        # SHA-based, so the documented value never drifts between
        # interpreters or PYTHONHASHSEED settings.
        assert derive_seed(1, "insure", "high") == derive_seed(1, "insure", "high")
        assert isinstance(derive_seed(0), int)


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_garbage_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert default_workers() == 1

    def test_capped_to_cell_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "16")
        assert default_workers(cells=4) == 4

    def test_at_least_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1


class TestRunCells:
    CELLS = [dict(x=i, scale=3, offset=1) for i in range(8)]
    EXPECTED = [i * 3 + 1 for i in range(8)]

    def test_empty(self):
        assert run_cells(_affine, []) == []

    def test_serial_results_in_order(self):
        assert run_cells(_affine, self.CELLS, max_workers=1) == self.EXPECTED

    def test_parallel_matches_serial(self):
        serial = run_cells(_affine, self.CELLS, max_workers=1)
        parallel = run_cells(_affine, self.CELLS, max_workers=4)
        assert parallel == serial == self.EXPECTED

    def test_order_independent_of_worker_count(self):
        cells = [dict(x=i, tag="cell") for i in range(6)]
        results = {
            workers: run_cells(_label, cells, max_workers=workers)
            for workers in (1, 2, 3, 6)
        }
        assert len({tuple(r) for r in results.values()}) == 1

    def test_unpicklable_fn_degrades_to_serial(self, rearmed_pool_warning):
        # A lambda cannot cross the process boundary; results must still
        # come back, computed in-process (with the degradation warning).
        with pytest.warns(RuntimeWarning, match="running serially"):
            out = run_cells(lambda x: x + 1, [dict(x=i) for i in range(4)],
                            max_workers=2)
        assert out == [1, 2, 3, 4]

    def test_env_worker_count_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert run_cells(_affine, self.CELLS) == self.EXPECTED


class _BrokenPool:
    """ProcessPoolExecutor stand-in for platforms that cannot spawn one."""

    def __init__(self, *args, **kwargs):
        raise OSError("no process support in this environment")


class TestPoolFallback:
    CELLS = [dict(x=i, scale=2) for i in range(5)]
    EXPECTED = [i * 2 for i in range(5)]

    def test_unavailable_pool_warns_and_runs_serially(self, monkeypatch,
                                                      rearmed_pool_warning):
        monkeypatch.setattr("concurrent.futures.ProcessPoolExecutor",
                            _BrokenPool)
        with pytest.warns(RuntimeWarning, match="running serially"):
            out = run_cells(_affine, self.CELLS, max_workers=4)
        assert out == self.EXPECTED

    def test_warning_deduplicated_but_counter_still_counts(self, monkeypatch,
                                                           rearmed_pool_warning):
        # The warning fires once per process; the fallback *counter* still
        # tracks every batch that degraded.
        reset_global_registry()
        monkeypatch.setattr("concurrent.futures.ProcessPoolExecutor",
                            _BrokenPool)
        with pytest.warns(RuntimeWarning, match="running serially"):
            run_cells(_affine, self.CELLS, max_workers=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_cells(_affine, self.CELLS, max_workers=2)
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
        counter = global_registry().get("runner.pool_fallbacks_total")
        assert counter is not None and counter.value == 2

    def test_fallback_is_counted_in_the_global_registry(self, monkeypatch,
                                                        rearmed_pool_warning):
        reset_global_registry()
        monkeypatch.setattr("concurrent.futures.ProcessPoolExecutor",
                            _BrokenPool)
        with pytest.warns(RuntimeWarning):
            run_cells(_affine, self.CELLS, max_workers=2)
        counter = global_registry().get("runner.pool_fallbacks_total")
        assert counter is not None and counter.value == 1

    def test_serial_path_rolls_up_cell_metrics(self):
        reset_global_registry()
        run_cells(_affine, self.CELLS, max_workers=1)
        registry = global_registry()
        assert registry.get("runner.cells_total").value == len(self.CELLS)
        histogram = registry.get("runner.cell_seconds")
        assert histogram is not None and histogram.count == len(self.CELLS)

    def test_raising_cell_increments_failure_counter(self):
        reset_global_registry()
        cells = [dict(x=i) for i in range(4)]
        with pytest.raises(ValueError, match="blew up"):
            run_cells(_explode, cells, max_workers=1)
        counter = global_registry().get("runner.cell_failures_total")
        assert counter is not None and counter.value == 1


class TestObsRollup:
    def test_ledger_and_alert_payloads_folded_into_global_registry(self):
        reset_global_registry()
        run_cells(_obs_payload, [dict(x=i) for i in range(3)], max_workers=1)
        registry = global_registry()
        harvest = registry.get("runner.ledger_wh_total", edge="pv.harvest")
        assert harvest is not None and harvest.value == 100.0 + 200.0 + 300.0
        curtailed = registry.get("runner.ledger_wh_total", edge="bus.curtailed")
        assert curtailed.value == 30.0
        # Signed balance edges never roll up, even when positive.
        assert registry.get("runner.ledger_wh_total",
                            edge="battery.delta_stored") is None
        assert registry.get("runner.ledger_wh_total",
                            edge="battery.residual") is None
        alerts = registry.get("runner.alerts_total", rule="soc_droop")
        assert alerts is not None and alerts.value == 1 + 2  # x=0 skipped

    def test_non_mapping_results_ignored(self):
        reset_global_registry()
        run_cells(_affine, [dict(x=i) for i in range(3)], max_workers=1)
        assert global_registry().get("runner.ledger_wh_total",
                                     edge="pv.harvest") is None
