"""Experiment runners produce paper-shaped results.

These are slower than unit tests (each runs a partial simulation), so
they use the smallest configurations that still show the shape.
"""

import pytest

from repro.experiments.charging import (
    charging_time_hours,
    run_fig4b_discharge,
)
from repro.experiments.fixed_config import run_energy_window, run_fixed_config
from repro.experiments.table7 import efficiency_gains, run_table7
from repro.workloads import SeismicAnalysis, VideoSurveillance


class TestFig4Charging:
    def test_sequential_wins_on_scarce_budget(self):
        seq = charging_time_hours(1, 150.0)
        batch = charging_time_hours(3, 150.0)
        assert 1.0 - seq / batch > 0.3  # paper: ~50 %

    def test_batch_wins_on_abundant_budget(self):
        seq = charging_time_hours(1, 800.0)
        batch = charging_time_hours(3, 800.0)
        assert batch < seq

    def test_validation(self):
        with pytest.raises(ValueError):
            charging_time_hours(0, 100.0)


class TestFig4Discharge:
    def test_high_load_cuts_out_early_with_charge_left(self):
        traces = run_fig4b_discharge()
        high = traces["high"]
        assert high.cutout_t is not None
        assert high.soc_at_cutout > 0.2  # stranded capacity

    def test_low_load_delivers_more(self):
        traces = run_fig4b_discharge()
        assert traces["low"].soc_at_cutout < traces["high"].soc_at_cutout

    def test_recovery_effect_visible(self):
        traces = run_fig4b_discharge()
        high = traces["high"]
        # After resting, the open-circuit voltage rebounds above cutoff.
        assert high.recovered_voltage > 23.3 + 0.3


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            vms: run_fixed_config(SeismicAnalysis(arrivals_per_day=()), vms)
            for vms in (8, 4)
        }

    def test_power_matches_paper(self, rows):
        assert rows[8].avg_power_w == pytest.approx(1397.0, abs=60.0)
        assert rows[4].avg_power_w == pytest.approx(696.0, abs=40.0)

    def test_4vm_availability_much_higher(self, rows):
        assert rows[4].availability > rows[8].availability + 0.2

    def test_4vm_throughput_at_least_as_good(self, rows):
        assert rows[4].throughput_gb_per_hour >= rows[8].throughput_gb_per_hour * 0.98

    def test_8vm_needs_protection_stops(self, rows):
        assert rows[8].protection_stops >= 1


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return {
            vms: run_energy_window(VideoSurveillance(), vms)
            for vms in (8, 6, 4, 2)
        }

    def test_throughput_decreases_with_vms(self, rows):
        thr = [rows[v].throughput_gb_per_hour for v in (8, 6, 4, 2)]
        assert thr == sorted(thr, reverse=True)

    def test_delay_increases_as_vms_shrink(self, rows):
        delays = [rows[v].mean_delay_minutes for v in (8, 6, 4, 2)]
        assert delays == sorted(delays)

    def test_8vm_keeps_up_with_stream(self, rows):
        assert rows[8].mean_delay_minutes < 1.0

    def test_power_scales_with_vms(self, rows):
        assert rows[2].avg_power_w == pytest.approx(335.0, abs=40.0)
        assert rows[6].avg_power_w == pytest.approx(1050.0, abs=60.0)


class TestTable7:
    def test_i7_gains_in_paper_band(self):
        gains = efficiency_gains(run_table7())
        assert all(4.0 <= g <= 16.0 for g in gains.values())

    def test_exe_times_match_paper(self):
        rows = {(r.benchmark, r.server): r for r in run_table7()}
        assert rows[("dedup", "xeon-dl380")].exe_time_s == pytest.approx(97.0, rel=0.05)
        assert rows[("dedup", "core-i7")].exe_time_s == pytest.approx(48.0, rel=0.05)
        assert rows[("bayesian", "core-i7")].exe_time_s == pytest.approx(662.0, rel=0.05)

    def test_i7_power_an_order_lower(self):
        rows = run_table7()
        xeon = [r for r in rows if r.server == "xeon-dl380"]
        i7 = [r for r in rows if r.server == "core-i7"]
        assert max(r.avg_power_w for r in i7) < min(r.avg_power_w for r in xeon) / 5
