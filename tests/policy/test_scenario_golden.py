"""Scenario-cell golden equivalence (``pytest -m golden -m policy``).

Extends the golden regression surface to the three policy scenario cells:
fresh scalar runs must reproduce the pinned trace digests bit-for-bit,
the instrumented (ledger) replays must leave the trajectory untouched and
close the energy account, and the vectorized fleet kernel must agree with
the pinned summaries — including exact equality on the discrete decision
counters, which proves the kernel's mirrored policy columns fire the
identical governor decisions at the identical ticks.

The 12 matrix cells' bit-exactness after the SPM/TPM policy refactor is
pinned by the pre-existing suite in ``tests/validate/test_golden.py``
(same records, same digests); this module covers the cells the policy
framework added.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import scenario_names
from repro.validate import golden

pytestmark = [pytest.mark.golden, pytest.mark.policy]

SCENARIOS = scenario_names()
SCENARIO_CELL_NAMES = [golden.scenario_cell_name(s) for s in SCENARIOS]


@pytest.fixture(scope="module")
def scenario_results():
    """Every scenario cell, computed once for the whole module."""
    return golden.compute_matrix(golden.scenario_cells())


def test_pinned_set_is_matrix_plus_scenarios():
    names = {golden.cell_name(**cell) for cell in golden.matrix_cells()}
    assert len(names) == 12
    assert len(golden.all_cells()) == 12 + len(SCENARIOS)
    # Every pinned record — matrix and scenario — exists on disk.
    for name in sorted(names) + SCENARIO_CELL_NAMES:
        assert golden.record_path(name).is_file(), f"missing record {name}"


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_scenario_cell_matches_golden_record(scenario_results, scenario):
    name = golden.scenario_cell_name(scenario)
    record = golden.load_record(name)
    assert record["config"]["scenario"] == scenario
    diffs = golden.diff_records(record, scenario_results[name])
    if diffs:
        detail = "\n  ".join(diffs)
        pytest.fail(
            f"scenario cell {name} diverged:\n  {detail}\n"
            f"(intentional change? `python -m repro validate --refresh` "
            f"and review the diff — see docs/policy.md)"
        )


def test_scenario_runs_with_zero_invariant_violations(scenario_results):
    violating = {
        name: record["invariants"]
        for name, record in scenario_results.items()
        if record["invariants"]["violations"]
    }
    assert not violating, f"invariant violations in {violating}"


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_scenario_ledger_closes_and_preserves_digests(scenario):
    """Full observability (ledger + alerts) must not perturb the policied
    trajectory, and the energy account must close — the charge-current
    cap's withheld surplus has to land in curtailment, not vanish."""
    record = golden.compute_ledger_cell(scenario=scenario)
    stored = golden.load_record(golden.scenario_cell_name(scenario))
    assert record["signals"] == stored["signals"]
    closure = record["closure"]
    assert closure["ok"], f"{record['cell']}: {closure}"


def test_fleet_kernel_matches_scenario_goldens():
    pytest.importorskip("numpy")
    from repro.sim.fleet.validator import FleetValidator

    validator = FleetValidator()
    verdicts = validator.validate_cells(validator.scenario_cells())
    assert [v.cell for v in verdicts] == SCENARIO_CELL_NAMES
    failures = [v.describe() for v in verdicts if not v.ok]
    assert not failures, "; ".join(failures)
