"""Every built-in (governor, control) pairing passes the conformance kit.

``pytest -m policy``.  The pairings cross the four governor rule families
(instantiated with the scenario grammar) plus the two governor halves the
SPM/TPM refactor extracted — the TPM's const discharge-current cap and
the SPM's Eq. 1 budget ramp — with all four registered control methods.
The unbounded governors double as the clamping stress case: the controls
must pin their amp/amp-hour outputs back inside hardware bounds.
"""

from __future__ import annotations

import pytest

from repro.core.spatial import SpatialPolicy
from repro.core.temporal import TemporalPolicy
from repro.policy.governors import parse_governor
from repro.policy.policy import Policy
from repro.policy.registry import control_names, make_control, make_signal
from tests.policy import conformance

pytestmark = pytest.mark.policy


def _governor_cases():
    """Name -> (governor, worsening-signal readings)."""
    return {
        "const": (parse_governor("const:80%"),
                  [0.0, 210.0, 420.0, 1000.0]),
        "step": (parse_governor("step:420=80%:560=60%"),
                 [100.0, 419.0, 420.0, 470.0, 560.0, 800.0]),
        "linear": (parse_governor("linear:20:48:max:40%"),
                   [0.0, 20.0, 30.0, 41.0, 48.0, 75.0]),
        # The trailing unknown label exercises the conservative default.
        "list": (parse_governor("list:green=max:yellow=90%:red=70%:black=50%"),
                 ["green", "yellow", "red", "black", "unheard-of"]),
        # Refactored controller halves.  Readings for the budget ramp are
        # *elapsed seconds*, descending so the limits never rise; both
        # emit physical units (A / Ah), so the controls must clamp.
        "tpm-discharge-cap": (TemporalPolicy().cap_governor,
                              [0.0, 900.0, 43200.0]),
        "spm-budget-ramp": (SpatialPolicy().budget_governor,
                            [4 * 86400.0, 86400.0, 3600.0, 0.0]),
    }


CASES = _governor_cases()


def test_every_registered_control_has_conformance_coverage():
    """A control registered without a declared event kind can't dodge
    the kit: the registry and the kit's vocabulary must stay in sync."""
    assert set(control_names()) == set(conformance.CONTROL_EVENT_KINDS)


@pytest.mark.parametrize("control_name",
                         sorted(conformance.CONTROL_EVENT_KINDS))
@pytest.mark.parametrize("gov_name", sorted(CASES))
def test_pairing_conformance(gov_name, control_name):
    governor, readings = CASES[gov_name]
    conformance.run_pairing(governor, readings, control_name)


@pytest.mark.parametrize("control_name",
                         sorted(conformance.CONTROL_EVENT_KINDS))
def test_control_full_range_ramp(control_name):
    system = conformance.run_control_ramp(control_name)
    manager = system.controller
    if control_name == "checkpoint_shed":
        # The ramp dips under shed_below once, recovers past rearm_above,
        # and never dips again: exactly one shed fired.
        assert manager.checkpoint_stops == 1
        assert manager.vm_target == 0


def test_policy_records_limit_event_only_on_change():
    """The Policy wrapper evaluates on its interval and records a
    ``policy.limit`` decision exactly when the evaluated limit changed."""
    system = conformance.build_plant()
    manager = system.controller
    policy = Policy("conf-duty", make_signal("carbon", seed=3),
                    parse_governor("step:420=80%:560=60%"),
                    make_control("duty_cap"), interval_s=300.0)
    manager.attach_policy(policy, charger=system.plant.bus.charger)

    dt, t = 5.0, 0.0
    ticks = int(12 * 3600 / dt)
    for _ in range(ticks):
        policy.step(t, dt)
        t += dt
    # First tick fires immediately (elapsed starts at inf), then every
    # interval_s: 1 + floor((ticks - 1) / (interval / dt)).
    assert policy.evaluations == 1 + (ticks - 1) // 60

    events = manager.decisions.of_kind("policy.limit")
    assert events, "no policy.limit decision was ever recorded"
    assert all(ev.source == "conf-duty" for ev in events)
    # Replay the evaluation sequence independently: one event per change.
    sig = make_signal("carbon", seed=3)
    gov = parse_governor("step:420=80%:560=60%")
    seq = [gov.limit(sig.value(300.0 * i))
           for i in range(policy.evaluations)]
    changes = sum(1 for prev, cur in zip([None, *seq], seq, strict=False) if cur != prev)
    assert len(events) == changes
    conformance.assert_hardware_bounds(system)


def test_tpm_cap_is_const_governor_composition():
    tpm = TemporalPolicy()
    lo, hi = tpm.cap_governor.limit_range
    assert lo == hi == tpm.params.cap_c_rate * tpm.capacity_ah
    assert tpm.cap_amps(3) == tpm.cap_governor.limit() * 3
    assert tpm.cap_amps(-1) == 0.0


def test_spm_threshold_is_budget_ramp_composition():
    spm = SpatialPolicy()
    gov = spm.budget_governor
    assert spm.discharge_threshold(0.0) == 0.0
    assert spm.discharge_threshold(86400.0) == gov.daily()
    spm.unused_budget_ah = 2.5
    assert spm.discharge_threshold(86400.0) == 2.5 + gov.daily()


def test_charge_cap_requires_charger():
    control = make_control("charge_current_cap")
    control.bind(object(), charger=None)
    with pytest.raises(RuntimeError, match="charger"):
        control.apply(0.5, 0.0)
