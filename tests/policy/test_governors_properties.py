"""Hypothesis property suite for the governor rule families.

``pytest -m policy``.  Pins the contracts the conformance kit and the
fleet kernel lean on: every governor's output stays inside its declared
``limit_range``; step and list governors are *total* over their whole
input domain (any signal value, any zone label — known or not — maps to
a limit from the declared set); linear governors return their endpoint
limits exactly at and beyond the pivots, with no last-ulp wobble.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.policy.governors import (
    ConstGovernor,
    LinearGovernor,
    ListGovernor,
    StepGovernor,
    parse_governor,
)

pytestmark = pytest.mark.policy

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
signals = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
pivots = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
step_entries = st.lists(
    st.tuples(pivots, fractions), min_size=1, max_size=6,
    unique_by=lambda entry: entry[0],
)
zone_labels = st.text(alphabet="abcdefgh", min_size=1, max_size=8)


@given(value=fractions, signal=signals)
def test_const_is_signal_independent(value, signal):
    governor = ConstGovernor(value)
    assert governor.limit(signal) == value
    assert governor.limit_range == (value, value)


@given(steps=step_entries, below=fractions, signal=signals)
def test_step_total_and_within_declared_range(steps, below, signal):
    governor = StepGovernor(steps, below=below)
    limit = governor.limit(signal)
    assert limit in {below} | {value for _, value in steps}
    lo, hi = governor.limit_range
    assert lo <= limit <= hi


@given(steps=step_entries, below=fractions)
def test_step_thresholds_are_inclusive(steps, below):
    governor = StepGovernor(steps, below=below)
    ordered = sorted(steps)
    for threshold, value in ordered:
        assert governor.limit(threshold) == value
    assert governor.limit(ordered[0][0] - 1.0) == below


@given(table=st.dictionaries(zone_labels, fractions, min_size=1, max_size=6),
       probe=zone_labels)
def test_list_total_over_any_label(table, probe):
    governor = ListGovernor(table)
    limit = governor.limit(probe)
    if probe in table:
        assert limit == table[probe]
    else:
        # Unknown zones fall back to the most conservative table entry.
        assert limit == min(table.values())
    lo, hi = governor.limit_range
    assert lo <= limit <= hi


@given(lo=pivots, hi=pivots, limit_lo=fractions, limit_hi=fractions,
       signal=signals)
def test_linear_endpoints_exact_and_interior_bounded(lo, hi, limit_lo,
                                                     limit_hi, signal):
    assume(hi > lo)
    governor = LinearGovernor(lo, hi, limit_lo, limit_hi)
    # Endpoint exactness: == on floats, deliberately.
    assert governor.limit(lo) == limit_lo
    assert governor.limit(hi) == limit_hi
    assert governor.limit(lo - 1.0) == limit_lo
    assert governor.limit(hi + 1.0) == limit_hi
    limit = governor.limit(signal)
    range_lo, range_hi = governor.limit_range
    assert range_lo - 1e-9 <= limit <= range_hi + 1e-9


@given(lo=pivots, hi=pivots, limit_lo=fractions, limit_hi=fractions,
       a=signals, b=signals)
def test_linear_monotone_when_capacity_ramps_down(lo, hi, limit_lo,
                                                  limit_hi, a, b):
    assume(hi > lo)
    assume(limit_lo >= limit_hi)
    governor = LinearGovernor(lo, hi, limit_lo, limit_hi)
    if a <= b:
        # Up to rounding only: the exact-endpoint contract wins at the
        # pivots, and an interior evaluation one ulp inside a pivot can
        # round a hair past the endpoint limit.
        assert governor.limit(a) >= governor.limit(b) - 1e-9


grid_limits = st.integers(min_value=0, max_value=20).map(lambda n: n / 20.0)
grid_steps = st.lists(
    st.tuples(st.integers(min_value=-1000, max_value=1000).map(float),
              grid_limits),
    min_size=1, max_size=6, unique_by=lambda entry: entry[0],
)


@given(steps=grid_steps, below=grid_limits, signal=signals)
def test_parse_round_trips_describe_for_step(steps, below, signal):
    # describe() renders %g tokens, lossless for these grid values, so
    # the reparsed governor must agree everywhere.
    governor = StepGovernor(steps, below=below)
    reparsed = parse_governor(f"{governor.describe()}:below={below:g}")
    assert reparsed.limit(signal) == governor.limit(signal)
