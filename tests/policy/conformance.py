"""Policy-conformance kit: the contract every pairing must honour.

Reusable checks run against every built-in (governor, control-method)
pairing — including the governor halves the SPM/TPM refactor extracted —
by ``tests/policy/test_conformance.py``:

* **limit range** — every limit a governor emits lies inside its declared
  :attr:`~repro.policy.governors.Governor.limit_range`;
* **monotonicity** — along a worsening-signal sweep the limits never
  rise;
* **hardware clamping** — after any ``apply()`` the actuated plant state
  sits inside hardware bounds: duty in ``[0, 1]`` on the DVFS deci grid,
  VM target in ``[0, preferred]``, charge-cap fraction in ``[0, 1]`` —
  even when the governor's output is unbounded (the SPM budget ramp
  returns amp-hours);
* **event honesty** — ``apply()`` returns True iff it appended exactly
  one decision event of the control's declared kind;
* **idempotence** — immediately re-applying the same limit is a no-op
  that emits nothing.

Third-party control methods registered via
:func:`repro.policy.registry.register_control` can reuse
:func:`run_pairing` / :func:`run_control_ramp` directly after adding
their decision kind to :data:`CONTROL_EVENT_KINDS`.
"""

from __future__ import annotations

from repro.core.system import build_system
from repro.obs.decisions import DecisionLog
from repro.policy.registry import make_control
from repro.solar.traces import make_day_trace
from repro.validate.golden import _make_workload

#: Decision kind each built-in control emits when it actuates state.
CONTROL_EVENT_KINDS = {
    "duty_cap": "dvfs.duty",
    "vm_retarget": "vm.target",
    "checkpoint_shed": "load.checkpoint_stop",
    "charge_current_cap": "charge.current_cap",
}

#: Controls whose events carry the policy's source label directly
#: (checkpoint_shed delegates to ``manager.checkpoint_and_stop``, which
#: attributes its event to the controller).
SOURCE_LABELLED = frozenset({"duty_cap", "vm_retarget", "charge_current_cap"})

#: A full-range descending-then-ascending limit sweep, deliberately
#: poking past both hardware bounds.
FULL_RANGE_RAMP = (
    1.4, 1.0, 0.85, 0.6, 0.45, 0.3, 0.1, 0.04, 0.0, -0.2,
    0.1, 0.3, 0.6, 0.9, 1.0, 1.4,
)


def build_plant(controller: str = "insure"):
    """A small real plant with a recording DecisionLog attached.

    Caps can only *lower* actuated state, so the load side starts fully
    up (duty 1.0, VM target at the workload's preferred count) to give
    every control headroom to act.
    """
    trace = make_day_trace("sunny", dt_seconds=5.0, seed=7,
                           target_mean_w=800.0)
    system = build_system(trace, _make_workload("seismic"),
                          controller=controller, seed=7, initial_soc=0.6,
                          dt=5.0)
    manager = system.controller
    manager.decisions = DecisionLog()
    if hasattr(manager, "duty"):
        manager.duty = 1.0
    manager.vm_target = manager.workload.preferred_vms
    manager.allocator.set_target(manager.vm_target, 0.0)
    return system


def assert_hardware_bounds(system) -> None:
    """Actuated plant state sits inside its hardware envelope."""
    manager = system.controller
    charger = system.plant.bus.charger
    if hasattr(manager, "duty"):
        assert 0.0 <= manager.duty <= 1.0, f"duty {manager.duty} out of range"
        deci = manager.duty * 10.0
        assert abs(deci - round(deci)) < 1e-6, (
            f"duty {manager.duty} off the DVFS deci grid"
        )
    preferred = manager.workload.preferred_vms
    assert 0 <= manager.vm_target <= preferred, (
        f"vm_target {manager.vm_target} outside [0, {preferred}]"
    )
    assert 0.0 <= charger.cap_fraction <= 1.0, (
        f"charge cap_fraction {charger.cap_fraction} out of range"
    )


def apply_checked(system, control, limit: float, t: float) -> bool:
    """One ``apply()`` under the full contract; returns whether it acted.

    Checks event honesty (True iff exactly one event of the declared
    kind), idempotence of an immediate re-application, and hardware
    clamping of the resulting plant state.
    """
    manager = system.controller
    kind = CONTROL_EVENT_KINDS[control.name]
    before = len(manager.decisions)
    changed = control.apply(limit, t)
    events = list(manager.decisions)[before:]
    if changed:
        assert len(events) == 1, (
            f"{control.name}: apply(True) appended {len(events)} events, "
            f"expected exactly one {kind!r}"
        )
        assert events[0].kind == kind, (
            f"{control.name}: recorded {events[0].kind!r}, declared {kind!r}"
        )
        if control.name in SOURCE_LABELLED:
            assert events[0].source == control.source
    else:
        assert not events, (
            f"{control.name}: apply() returned False but recorded "
            f"{[e.kind for e in events]}"
        )
    # Idempotence: re-applying the very same limit must be a silent no-op.
    assert control.apply(limit, t) is False, (
        f"{control.name}: re-applying limit {limit} was not a no-op"
    )
    assert len(manager.decisions) == before + len(events), (
        f"{control.name}: idempotent re-application emitted events"
    )
    assert_hardware_bounds(system)
    return changed


def run_pairing(governor, readings, control_name: str, *,
                controller: str = "insure"):
    """Conformance sweep of one (governor, control) pairing.

    ``readings`` must be ordered worst-last so the governor's limits are
    non-increasing along the sweep; each evaluated limit is range-checked
    against the governor's declaration and pushed through
    :func:`apply_checked` on a fresh plant.  Returns the plant for extra
    caller assertions.
    """
    system = build_plant(controller)
    control = make_control(control_name)
    control.bind(system.controller, charger=system.plant.bus.charger)
    lo, hi = governor.limit_range
    prev = None
    t = 0.0
    for reading in readings:
        limit = governor.limit(reading)
        assert lo <= limit <= hi, (
            f"{governor.describe()}: limit {limit} for reading {reading!r} "
            f"escapes declared range [{lo}, {hi}]"
        )
        if prev is not None:
            assert limit <= prev, (
                f"{governor.describe()}: limit rose {prev} -> {limit} as "
                f"the signal worsened (reading {reading!r})"
            )
        prev = limit
        apply_checked(system, control, limit, t)
        t += 300.0
    return system


def run_control_ramp(control_name: str, *, controller: str = "insure"):
    """Drive one control through :data:`FULL_RANGE_RAMP`.

    Guarantees every actuation path executes (including the checkpoint
    shed + re-arm hysteresis) and that the one-way caps — duty, VM
    target — never raise what they capped, even while the limit ramp
    recovers.  Returns the plant for extra caller assertions.
    """
    system = build_plant(controller)
    manager = system.controller
    control = make_control(control_name)
    control.bind(manager, charger=system.plant.bus.charger)
    prev_duty = getattr(manager, "duty", None)
    prev_vms = manager.vm_target
    t = 0.0
    for limit in FULL_RANGE_RAMP:
        apply_checked(system, control, limit, t)
        if control.name == "duty_cap":
            assert manager.duty <= prev_duty, (
                f"duty cap raised duty {prev_duty} -> {manager.duty}"
            )
            prev_duty = manager.duty
        elif control.name == "vm_retarget":
            assert manager.vm_target <= prev_vms, (
                f"vm cap raised target {prev_vms} -> {manager.vm_target}"
            )
            prev_vms = manager.vm_target
        t += 300.0
    return system
