"""Hypothesis property suite for the synthetic carbon/price signals.

``pytest -m policy``.  The scenario cells depend on three signal
properties: seed-determinism (two instances with the same seed agree at
every instant — what lets the fleet kernel mirror the scalar path
bit-for-bit), boundedness (values never escape the declared physical
bounds), and 24-hour period-consistency of the noise-free diurnal
component.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy.signals import (
    DAY_S,
    CarbonIntensitySignal,
    EnergyPriceSignal,
)

pytestmark = pytest.mark.policy

seeds = st.integers(min_value=0, max_value=2**31 - 1)
times = st.floats(min_value=0.0, max_value=7 * DAY_S, allow_nan=False)

SIGNAL_CLASSES = [CarbonIntensitySignal, EnergyPriceSignal]
CLASS_IDS = [cls.__name__ for cls in SIGNAL_CLASSES]


@pytest.mark.parametrize("cls", SIGNAL_CLASSES, ids=CLASS_IDS)
@given(seed=seeds, t=times)
def test_seed_deterministic_across_instances(cls, seed, t):
    assert cls(seed=seed).value(t) == cls(seed=seed).value(t)


@pytest.mark.parametrize("cls", SIGNAL_CLASSES, ids=CLASS_IDS)
@given(seed=seeds, t=times)
def test_value_within_declared_bounds(cls, seed, t):
    signal = cls(seed=seed)
    lo, hi = signal.bounds
    assert lo <= signal.value(t) <= hi


@pytest.mark.parametrize("cls", SIGNAL_CLASSES, ids=CLASS_IDS)
@given(seed=seeds, t=st.floats(min_value=0.0, max_value=DAY_S - 1.0,
                               allow_nan=False))
def test_noise_free_component_is_24h_periodic(cls, seed, t):
    signal = cls(seed=seed, noise_amp=0.0)
    assert math.isclose(signal.value(t), signal.value(t + DAY_S),
                        rel_tol=1e-9, abs_tol=1e-9)


@pytest.mark.parametrize("cls", SIGNAL_CLASSES, ids=CLASS_IDS)
@given(seed=seeds, t=times)
def test_zone_matches_declared_thresholds(cls, seed, t):
    signal = cls(seed=seed)
    value = signal.value(t)
    expected = next(
        (label for label, upper in signal.zones[:-1] if value <= upper),
        signal.zones[-1][0],
    )
    assert signal.zone(t) == expected


@pytest.mark.parametrize("cls", SIGNAL_CLASSES, ids=CLASS_IDS)
@given(seed=seeds, hour=st.integers(min_value=0, max_value=7 * 24 - 1),
       a=st.floats(min_value=0.0, max_value=3599.0, allow_nan=False),
       b=st.floats(min_value=0.0, max_value=3599.0, allow_nan=False))
def test_noise_is_piecewise_constant_per_hour_block(cls, seed, hour, a, b):
    """Within one hour block the noise term is frozen: the value at two
    instants differs only by the (noise-free) diurnal delta."""
    signal = cls(seed=seed)
    quiet = cls(seed=seed, noise_amp=0.0)
    t0, t1 = hour * 3600.0 + a, hour * 3600.0 + b
    lo, hi = signal.bounds
    noisy_delta = signal.value(t1) - signal.value(t0)
    quiet_delta = quiet.value(t1) - quiet.value(t0)
    # Clamping can flatten either delta; only compare away from the rails.
    if all(lo < v < hi for v in (signal.value(t0), signal.value(t1),
                                 quiet.value(t0), quiet.value(t1))):
        assert math.isclose(noisy_delta, quiet_delta,
                            rel_tol=1e-9, abs_tol=1e-9)


@pytest.mark.parametrize("cls", SIGNAL_CLASSES, ids=CLASS_IDS)
def test_negative_time_rejected(cls):
    with pytest.raises(ValueError):
        cls(seed=1).value(-1.0)
