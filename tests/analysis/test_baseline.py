"""Baseline round-trip, count-aware filtering, and version gating."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    filter_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import Finding


def _finding(message="boom", line=10):
    return Finding(rule="determinism", path="repro/sim/x.py",
                   line=line, col=1, message=message)


class TestRoundTrip:
    def test_write_then_load_filters_everything(self, tmp_path):
        findings = [_finding("a"), _finding("b")]
        path = write_baseline(findings, tmp_path / "base.json")
        baseline = load_baseline(path)
        assert len(baseline) == 2
        fresh, matched = filter_findings(findings, baseline)
        assert fresh == []
        assert matched == 2

    def test_file_is_sorted_versioned_json(self, tmp_path):
        path = write_baseline([_finding()], tmp_path / "base.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        entry = next(iter(payload["entries"].values()))
        assert entry == {
            "rule": "determinism",
            "path": "repro/sim/x.py",
            "message": "boom",
            "count": 1,
        }


class TestCountAwareness:
    def test_extra_occurrence_escapes_baseline(self, tmp_path):
        path = write_baseline([_finding(line=10)], tmp_path / "base.json")
        baseline = load_baseline(path)
        now = [_finding(line=10), _finding(line=20)]
        fresh, matched = filter_findings(now, baseline)
        assert matched == 1
        assert [f.line for f in fresh] == [20]

    def test_duplicates_accumulate_counts(self, tmp_path):
        path = write_baseline(
            [_finding(line=10), _finding(line=20)], tmp_path / "base.json"
        )
        payload = json.loads(path.read_text())
        assert sum(e["count"] for e in payload["entries"].values()) == 2
        fresh, matched = filter_findings(
            [_finding(line=1), _finding(line=2)], load_baseline(path)
        )
        assert fresh == [] and matched == 2


class TestLoading:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_version_mismatch_raises(self, tmp_path):
        bad = tmp_path / "base.json"
        bad.write_text(json.dumps({"version": 999, "entries": {}}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(bad)

    def test_malformed_entries_raise(self, tmp_path):
        bad = tmp_path / "base.json"
        bad.write_text(json.dumps({"version": BASELINE_VERSION,
                                   "entries": []}))
        with pytest.raises(ValueError, match="entries must be an object"):
            load_baseline(bad)
