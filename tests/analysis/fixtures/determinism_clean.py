"""Fixture: kernel code the determinism rule accepts."""

import numpy as np


def tick(levels, seed):
    rng = np.random.default_rng(seed)
    for level in sorted(set(levels)):
        _ = (rng, level)
