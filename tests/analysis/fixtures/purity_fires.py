"""Fixture: an engine observer that mutates the plant (3 findings)."""


class MeddlingRecorder:
    def __init__(self):
        self.rows = []

    def attach(self, system):
        system.engine.observe(self, name="meddler")

    def __call__(self, clock):
        self.rows.append(clock.t)
        clock.engine.plant.duty = 5
        clock.engine.reset()
        self._nudge(clock)

    def _nudge(self, clock):
        clock.plant.rack.set_duty(3, clock.t)
