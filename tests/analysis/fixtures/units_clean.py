"""Fixture: unit-correct arithmetic the unit rule accepts."""


def budget(load_wh, capacity_ah, power_w, hours_h, voltage_v):
    stored_wh = load_wh + power_w * hours_h
    drawn_ah = capacity_ah - stored_wh / voltage_v
    floor_wh = min(load_wh, stored_wh)
    return stored_wh, drawn_ah, floor_wh
