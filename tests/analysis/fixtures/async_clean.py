"""Fixture: coroutine with correct async idioms."""

import asyncio


async def handler(path, loop):
    await asyncio.sleep(0.5)

    def read_blocking():
        return path.read_text()

    return await loop.run_in_executor(None, read_blocking)
