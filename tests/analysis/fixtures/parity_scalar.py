"""Fixture: a miniature scalar kernel for the parity rule.

``Tank.level_wh`` is mapped and mirrored, ``Tank.overflow_wh`` is
mutated but unmapped (the rule must flag it), and wiring methods are
exempt.
"""


class Tank:
    def __init__(self, capacity_wh):
        self.capacity_wh = capacity_wh
        self.level_wh = 0.0
        self.overflow_wh = 0.0
        self.sink = None

    def bind(self, sink):
        self.sink = sink

    def step(self, inflow_wh):
        self.level_wh = min(self.capacity_wh, self.level_wh + inflow_wh)
        self.overflow_wh += max(0.0, inflow_wh - self.capacity_wh)
