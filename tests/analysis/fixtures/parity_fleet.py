"""Fixture: the vectorized twin of ``parity_scalar`` (mirrors level only)."""


class TankBatch:
    def __init__(self, n, np):
        self.level = np.zeros(n)
        self.cap = np.ones(n)

    def step(self, inflow, np):
        self.level = np.minimum(self.cap, self.level + inflow)
