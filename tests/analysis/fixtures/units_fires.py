"""Fixture: unit-suffix violations (5 findings)."""


def budget(load_wh, capacity_ah, power_w):
    total = load_wh + capacity_ah
    if load_wh > power_w:
        total += 1.0
    capacity_ah += power_w
    stored_wh = capacity_ah
    floor = min(load_wh, capacity_ah)
    return total, stored_wh, floor
