"""Fixture: kernel code that violates the determinism rule (4 findings)."""

import random
import time

import numpy as np


def tick(levels):
    started = time.time()
    jitter = random.random()
    rng = np.random.default_rng()
    for level in {lvl for lvl in levels}:
        _ = (started, jitter, rng, level)
