"""Fixture: blocking calls inside coroutines (4 findings)."""

import subprocess
import time


async def handler(path):
    time.sleep(0.5)
    subprocess.run(["true"], check=False)
    with open(path) as fh:
        payload = fh.read()
    return payload + path.read_text()
