"""Fixture: a well-behaved observer (reads plant, mutates only itself)."""


class PoliteRecorder:
    def __init__(self):
        self.rows = []
        self._peak_w = 0.0

    def attach(self, system):
        system.engine.observe(self, name="polite")

    def __call__(self, clock):
        demand_w = clock.plant.bus.last_report.demand_w
        self._peak_w = max(self._peak_w, demand_w)
        self.rows.append((clock.t, demand_w))
