"""Reporter tests: JSON schema pin and text summary shape."""

import json

from repro.analysis.core import Finding
from repro.analysis.report import (
    REPORT_VERSION,
    LintResult,
    render_json,
    render_text,
)


def _result(findings=(), **kw):
    base = dict(root="src/repro", rules=["determinism"], files=3,
                findings=list(findings))
    base.update(kw)
    return LintResult(**base)


def _finding(line=5):
    return Finding(rule="determinism", path="repro/sim/x.py",
                   line=line, col=2, message="boom")


class TestJsonReport:
    def test_schema(self):
        payload = json.loads(render_json(_result([_finding()], suppressed=1,
                                                 baselined=2)))
        assert payload["version"] == REPORT_VERSION
        assert set(payload) == {"version", "root", "rules", "summary",
                                "findings"}
        assert payload["summary"] == {
            "files": 3, "findings": 1, "suppressed": 1, "baselined": 2,
        }
        [finding] = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message",
                                "fingerprint"}

    def test_findings_sorted_by_location(self):
        payload = json.loads(render_json(_result([_finding(9), _finding(2)])))
        assert [f["line"] for f in payload["findings"]] == [2, 9]


class TestTextReport:
    def test_clean_summary(self):
        text = render_text(_result())
        assert text == "0 findings across 3 module(s); 1 rule(s)"

    def test_findings_listed_before_summary(self):
        text = render_text(_result([_finding()], suppressed=2, baselined=1))
        lines = text.splitlines()
        assert lines[0] == "repro/sim/x.py:5:2: [determinism] boom"
        assert lines[-1].startswith("1 finding across 3 module(s)")
        assert "2 suppressed by allows" in lines[-1]
        assert "1 matched baseline" in lines[-1]

    def test_ok_property(self):
        assert _result().ok
        assert not _result([_finding()]).ok
