"""Runner + CLI integration: suppressions end-to-end, baseline flow, and
the acceptance gate that the committed tree lints clean."""

import json

import pytest

from repro.analysis import run_lint
from repro.cli import main


def make_tree(tmp_path, body, relpath="repro/sim/bad.py"):
    """Materialise a throwaway package tree and return its root."""
    root = tmp_path / "repro"
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    current = tmp_path
    for part in target.parent.relative_to(tmp_path).parts:
        current = current / part
        init = current / "__init__.py"
        if not init.exists():
            init.write_text("")
    target.write_text(body)
    return root


VIOLATION = "import time\n\ndef tick():\n    return time.time()\n"


class TestCommittedTreeIsClean:
    def test_zero_findings(self):
        result = run_lint()
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )

    def test_cli_exit_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out


class TestSuppressions:
    def test_violation_fires(self, tmp_path):
        root = make_tree(tmp_path, VIOLATION)
        result = run_lint(root=root)
        assert [f.rule for f in result.findings] == ["determinism"]

    def test_inline_allow_suppresses(self, tmp_path):
        root = make_tree(
            tmp_path,
            "import time\n\ndef tick():\n"
            "    return time.time()  # repro: allow[determinism] test scaffold\n",
        )
        result = run_lint(root=root)
        assert result.findings == []
        assert result.suppressed == 1

    def test_standalone_allow_covers_next_line(self, tmp_path):
        root = make_tree(
            tmp_path,
            "import time\n\ndef tick():\n"
            "    # repro: allow[determinism] test scaffold\n"
            "    return time.time()\n",
        )
        result = run_lint(root=root)
        assert result.findings == []
        assert result.suppressed == 1

    def test_allow_without_reason_does_not_suppress(self, tmp_path):
        root = make_tree(
            tmp_path,
            "import time\n\ndef tick():\n"
            "    return time.time()  # repro: allow[determinism]\n",
        )
        result = run_lint(root=root)
        rules = sorted(f.rule for f in result.findings)
        assert rules == ["determinism", "suppression"]
        assert any("no reason" in f.message for f in result.findings)

    def test_unknown_rule_id_reported(self, tmp_path):
        root = make_tree(
            tmp_path,
            "x = 1  # repro: allow[made-up-rule] because\n",
        )
        result = run_lint(root=root)
        assert [f.rule for f in result.findings] == ["suppression"]
        assert "unknown rule id" in result.findings[0].message

    def test_unused_allow_reported(self, tmp_path):
        root = make_tree(
            tmp_path,
            "x = 1  # repro: allow[determinism] nothing here anymore\n",
        )
        result = run_lint(root=root)
        assert [f.rule for f in result.findings] == ["suppression"]
        assert "unused allow" in result.findings[0].message

    def test_unused_allow_not_reported_on_partial_run(self, tmp_path):
        root = make_tree(
            tmp_path,
            "x = 1  # repro: allow[determinism] nothing here anymore\n",
        )
        result = run_lint(root=root, rule_ids=["async-hygiene"])
        assert result.findings == []

    def test_wrong_rule_allow_does_not_suppress(self, tmp_path):
        root = make_tree(
            tmp_path,
            "import time\n\ndef tick():\n"
            "    return time.time()  # repro: allow[async-hygiene] wrong id\n",
        )
        result = run_lint(root=root)
        assert "determinism" in [f.rule for f in result.findings]


class TestCli:
    def test_violation_exits_nonzero(self, tmp_path, capsys):
        root = make_tree(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root)]) == 1
        assert "[determinism]" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        root = make_tree(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["summary"]["findings"] == 1

    def test_rule_filter(self, tmp_path, capsys):
        root = make_tree(tmp_path, VIOLATION)
        assert main(["lint", "--root", str(root),
                     "--rule", "async-hygiene"]) == 0
        capsys.readouterr()

    def test_unknown_rule_flag(self, capsys):
        assert main(["lint", "--rule", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("determinism", "unit-discipline", "observer-purity",
                        "kernel-parity", "async-hygiene"):
            assert rule_id in out

    def test_baseline_flow(self, tmp_path, capsys, monkeypatch):
        root = make_tree(tmp_path, VIOLATION)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "park.json"
        assert main(["lint", "--root", str(root),
                     "--write-baseline", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["lint", "--root", str(root),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 matched baseline" in out
