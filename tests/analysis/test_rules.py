"""Per-rule fixture tests: each rule fires on its fixture and accepts
its clean twin — plus registry semantics."""

from pathlib import Path

import pytest

from repro.analysis.core import ModuleSource, Project, Rule
from repro.analysis.registry import make_rule, make_rules, register_rule, rule_names
from repro.analysis.rules.parity import KernelParityRule

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(filename, module):
    """Load a fixture under an arbitrary dotted module name (the name
    controls which package scopes the rules apply)."""
    path = FIXTURES / filename
    return ModuleSource(path, module, path.read_text(encoding="utf-8"),
                        display_path=filename)


def run_rule(rule, *modules):
    project = Project(list(modules))
    findings = []
    for mod in modules:
        findings.extend(rule.check_module(mod))
    findings.extend(rule.check_project(project))
    return findings


class TestRegistry:
    def test_builtin_rules_registered(self):
        assert rule_names() == [
            "async-hygiene",
            "determinism",
            "kernel-parity",
            "observer-purity",
            "unit-discipline",
        ]

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            make_rule("nope")

    def test_duplicate_registration_raises(self):
        class Clone(Rule):
            id = "determinism"

        with pytest.raises(ValueError, match="already registered"):
            register_rule(Clone)

    def test_unnamed_rule_raises(self):
        class Nameless(Rule):
            pass

        with pytest.raises(ValueError, match="has no id"):
            register_rule(Nameless)

    def test_make_rules_default_is_all(self):
        assert [r.id for r in make_rules()] == rule_names()


class TestDeterminismRule:
    def test_fires(self):
        mod = load_fixture("determinism_fires.py", "repro.sim.fixture")
        findings = run_rule(make_rule("determinism"), mod)
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "random.random" in messages
        assert "default_rng" in messages
        assert "unordered set" in messages

    def test_clean(self):
        mod = load_fixture("determinism_clean.py", "repro.sim.fixture")
        assert run_rule(make_rule("determinism"), mod) == []

    def test_out_of_scope_package_ignored(self):
        mod = load_fixture("determinism_fires.py", "repro.serve.fixture")
        assert run_rule(make_rule("determinism"), mod) == []


class TestUnitDisciplineRule:
    def test_fires(self):
        mod = load_fixture("units_fires.py", "repro.core.fixture")
        findings = run_rule(make_rule("unit-discipline"), mod)
        assert len(findings) == 5
        messages = " ".join(f.message for f in findings)
        assert "Wh vs Ah" in messages
        assert "Wh vs W" in messages
        assert "Ah vs W" in messages
        assert "min() over mixed units" in messages

    def test_clean(self):
        mod = load_fixture("units_clean.py", "repro.core.fixture")
        assert run_rule(make_rule("unit-discipline"), mod) == []


class TestObserverPurityRule:
    def test_fires(self):
        mod = load_fixture("purity_fires.py", "repro.obs.fixture")
        findings = run_rule(make_rule("observer-purity"), mod)
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "assigns to external state" in messages
        assert "reset()" in messages
        assert "set_duty()" in messages

    def test_clean(self):
        mod = load_fixture("purity_clean.py", "repro.obs.fixture")
        assert run_rule(make_rule("observer-purity"), mod) == []

    def test_out_of_scope_package_ignored(self):
        mod = load_fixture("purity_fires.py", "repro.policy.fixture")
        assert run_rule(make_rule("observer-purity"), mod) == []


class TestAsyncHygieneRule:
    def test_fires(self):
        mod = load_fixture("async_fires.py", "repro.serve.fixture")
        findings = run_rule(make_rule("async-hygiene"), mod)
        assert len(findings) == 4
        messages = " ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "subprocess.run" in messages
        assert "open()" in messages
        assert "read_text" in messages

    def test_clean(self):
        mod = load_fixture("async_clean.py", "repro.serve.fixture")
        assert run_rule(make_rule("async-hygiene"), mod) == []


class TestKernelParityRule:
    def _rule(self, field_map, not_ported=None):
        return KernelParityRule(
            scalar_modules=("fix.scalar",),
            fleet_modules=("fix.fleet",),
            field_map=field_map,
            not_ported=not_ported or {},
        )

    def _modules(self):
        return (
            load_fixture("parity_scalar.py", "fix.scalar"),
            load_fixture("parity_fleet.py", "fix.fleet"),
        )

    def test_unmapped_mutation_fires(self):
        rule = self._rule({"Tank.level_wh": ("level",)})
        findings = run_rule(rule, *self._modules())
        assert len(findings) == 1
        assert "Tank.overflow_wh" in findings[0].message
        assert findings[0].path == "parity_scalar.py"

    def test_clean_with_not_ported(self):
        rule = self._rule(
            {"Tank.level_wh": ("level",)},
            {"Tank.overflow_wh": "obs-only accumulator"},
        )
        assert run_rule(rule, *self._modules()) == []

    def test_missing_fleet_array_fires(self):
        rule = self._rule(
            {"Tank.level_wh": ("level",), "Tank.overflow_wh": ("spill",)},
        )
        findings = run_rule(rule, *self._modules())
        assert len(findings) == 1
        assert "spill" in findings[0].message

    def test_stale_entries_fire(self):
        rule = self._rule(
            {"Tank.level_wh": ("level",), "Tank.ghost": ("level",)},
            {"Tank.overflow_wh": "obs-only", "Tank.phantom": "gone"},
        )
        findings = run_rule(rule, *self._modules())
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "stale FIELD_MAP entry Tank.ghost" in messages
        assert "stale NOT_PORTED entry Tank.phantom" in messages

    def test_wiring_methods_exempt(self):
        # bind() writes Tank.sink; it must not need a mapping.
        rule = self._rule(
            {"Tank.level_wh": ("level",)},
            {"Tank.overflow_wh": "obs-only"},
        )
        findings = run_rule(rule, *self._modules())
        assert all("Tank.sink" not in f.message for f in findings)

    def test_real_tables_are_consistent(self):
        """The committed FIELD_MAP/NOT_PORTED pass against the real tree."""
        from repro.analysis.runner import build_project

        findings = KernelParityRule().check_project(build_project())
        assert findings == []
