"""Shared-model tests: suppression parsing, import resolution, findings."""

import ast
from pathlib import Path

from repro.analysis.core import (
    Finding,
    ImportMap,
    ModuleSource,
    parse_allows,
)


class TestParseAllows:
    def test_inline_allow(self):
        allows = parse_allows(
            "x = 1\n"
            "y = foo()  # repro: allow[determinism] seeded upstream\n"
        )
        assert list(allows) == [2]
        allow = allows[2]
        assert allow.rules == ("determinism",)
        assert allow.reason == "seeded upstream"
        assert not allow.standalone

    def test_standalone_allow(self):
        allows = parse_allows(
            "# repro: allow[unit-discipline] converted two lines up\n"
            "total_wh = total_ah\n"
        )
        assert allows[1].standalone

    def test_multiple_rules_and_wildcard(self):
        allows = parse_allows(
            "z = 1  # repro: allow[determinism, async-hygiene] legacy\n"
            "w = 2  # repro: allow[*] vendored\n"
        )
        assert allows[1].rules == ("determinism", "async-hygiene")
        assert allows[1].covers("determinism")
        assert allows[1].covers("async-hygiene")
        assert not allows[1].covers("unit-discipline")
        assert allows[2].covers("anything")

    def test_missing_reason_is_empty(self):
        allows = parse_allows("q = 1  # repro: allow[determinism]\n")
        assert allows[1].reason == ""

    def test_docstring_examples_are_not_allows(self):
        text = (
            '"""Docs show `# repro: allow[determinism] why` here."""\n'
            "x = 1\n"
        )
        assert parse_allows(text) == {}

    def test_unparseable_text_yields_no_allows(self):
        assert parse_allows("'unterminated\n") == {}


class TestImportMap:
    def _map(self, code):
        return ImportMap(ast.parse(code))

    def _resolve(self, code, expr):
        return self._map(code).resolve_call(ast.parse(expr, mode="eval").body)

    def test_aliased_module(self):
        assert (
            self._resolve("import numpy as np", "np.random.rand")
            == "numpy.random.rand"
        )

    def test_plain_import_uses_root(self):
        assert self._resolve("import time", "time.monotonic") == "time.monotonic"

    def test_from_import(self):
        assert (
            self._resolve("from random import randint", "randint")
            == "random.randint"
        )

    def test_unknown_root_is_none(self):
        assert self._resolve("import time", "mystery.call") is None


class TestFinding:
    def _finding(self, **kw):
        base = dict(rule="determinism", path="repro/sim/engine.py",
                    line=10, col=3, message="boom")
        base.update(kw)
        return Finding(**base)

    def test_fingerprint_ignores_position(self):
        assert (
            self._finding(line=10, col=3).fingerprint()
            == self._finding(line=99, col=1).fingerprint()
        )

    def test_fingerprint_depends_on_rule_path_message(self):
        base = self._finding().fingerprint()
        assert self._finding(rule="unit-discipline").fingerprint() != base
        assert self._finding(path="other.py").fingerprint() != base
        assert self._finding(message="other").fingerprint() != base

    def test_render(self):
        assert (
            self._finding().render()
            == "repro/sim/engine.py:10:3: [determinism] boom"
        )

    def test_as_dict_includes_fingerprint(self):
        payload = self._finding().as_dict()
        assert payload["fingerprint"] == self._finding().fingerprint()
        assert set(payload) == {
            "rule", "path", "line", "col", "message", "fingerprint"
        }


class TestModuleSource:
    def test_in_package(self):
        mod = ModuleSource(Path("x.py"), "repro.sim.engine", "")
        assert mod.in_package("repro.sim")
        assert mod.in_package("repro.sim.engine")
        assert not mod.in_package("repro.simulate")
        assert not mod.in_package("repro.serve")

    def test_finding_uses_one_based_column(self):
        mod = ModuleSource(Path("x.py"), "m", "x = 1\n")
        node = mod.tree.body[0]
        finding = mod.finding("determinism", node, "msg")
        assert (finding.line, finding.col) == (1, 1)
