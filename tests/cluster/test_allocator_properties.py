"""Allocator invariants under randomised retarget sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.allocator import NodeAllocator
from repro.cluster.rack import ServerRack
from repro.cluster.server import ServerState
from repro.sim.clock import Clock


@given(
    targets=st.lists(st.integers(0, 8), min_size=1, max_size=12),
    settle_minutes=st.integers(1, 20),
)
@settings(max_examples=60, deadline=None)
def test_allocator_invariants(targets, settle_minutes):
    rack = ServerRack(server_count=4)
    allocator = NodeAllocator(rack)
    clock = Clock(dt=60.0)

    for target in targets:
        allocator.set_target(target, clock.t)
        for _ in range(settle_minutes):
            rack.step(clock)
            clock.advance()
        allocator.sync(clock.t)

        # Invariants that must hold at every instant:
        # 1. Placement never exceeds slot capacity.
        for server in rack.servers:
            assert len(server.vms) <= server.profile.vm_slots
        # 2. Running VMs only on ON servers.
        for server in rack.servers:
            if server.state is not ServerState.ON:
                assert server.running_vms() == []
        # 3. Running count never exceeds the target.
        assert rack.running_vm_count() <= max(targets[: targets.index(target) + 1])

    # After a long settle, the final target is met exactly.
    final = targets[-1]
    allocator.sync(clock.t)
    for _ in range(40):
        rack.step(clock)
        clock.advance()
    allocator.sync(clock.t)
    for _ in range(40):
        rack.step(clock)
        clock.advance()
    assert rack.running_vm_count() == final


@given(targets=st.lists(st.integers(0, 8), min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_vm_ctrl_ops_count_only_changes(targets):
    rack = ServerRack(server_count=4)
    allocator = NodeAllocator(rack)
    distinct_changes = sum(
        1 for previous, current in zip([0] + targets, targets, strict=False)
        if previous != current
    )
    for target in targets:
        allocator.set_target(target)
    # Retarget operations counted exactly once per actual change (other
    # vm_ctrl ops come from placements, counted separately).
    retargets = sum(
        1 for event in rack.events.of_kind("vm.ctrl")
        if event.data.get("op") == "retarget"
    )
    assert retargets == distinct_changes
