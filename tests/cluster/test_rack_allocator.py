"""Rack aggregation and the node/VM allocator."""

import pytest

from repro.cluster.allocator import NodeAllocator
from repro.cluster.rack import ServerRack
from repro.cluster.server import ServerState
from repro.cluster.vm import VirtualMachine
from repro.sim.clock import Clock


def settle(rack, seconds=1200.0, dt=60.0):
    clock = Clock(dt=dt)
    for _ in range(int(seconds / dt)):
        rack.step(clock)
        clock.advance()
    return clock


@pytest.fixture
def rack():
    return ServerRack(server_count=4)


class TestVirtualMachine:
    def test_lifecycle(self):
        vm = VirtualMachine("v")
        vm.start()
        assert vm.running
        vm.checkpoint()
        assert vm.checkpointed and not vm.running
        vm.start()
        vm.crash()
        assert not vm.checkpointed and not vm.running

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualMachine("")
        with pytest.raises(ValueError):
            VirtualMachine("v", cpu_share=0.0)


class TestRack:
    def test_capacity(self, rack):
        assert rack.vm_capacity == 8

    def test_demand_zero_when_off(self, rack):
        assert rack.demand_w == 0.0

    def test_paper_power_points(self, rack):
        """8 VMs ~ 1400 W, 4 VMs ~ 700 W (Tables 2 and 3)."""
        alloc = NodeAllocator(rack)
        alloc.set_target(8)
        settle(rack)
        assert rack.demand_w == pytest.approx(1400.0, abs=30.0)
        alloc.set_target(4)
        settle(rack)
        alloc.sync()
        settle(rack)
        assert rack.demand_w == pytest.approx(700.0, abs=30.0)

    def test_compute_seconds_accumulate(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(4)
        settle(rack, seconds=1800.0)
        assert rack.compute_seconds_total > 0.0
        assert rack.last_compute_seconds == pytest.approx(4 * 60.0)

    def test_emergency_shed(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(8)
        settle(rack)
        shed = rack.emergency_shed(0.0)
        assert shed == 4
        assert not rack.serving()
        assert rack.events.count("server.crash") == 4

    def test_graceful_stop_emits_events(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(2)
        settle(rack)
        stopped = rack.graceful_stop_all(0.0)
        assert stopped == 1
        assert rack.events.count("vm.ctrl") > 0

    def test_set_duty_rackwide(self, rack):
        rack.set_duty(0.7)
        assert all(s.duty == 0.7 for s in rack.servers)
        assert rack.events.count("power.duty") == 1
        rack.set_duty(0.7)  # no change, no event
        assert rack.events.count("power.duty") == 1


class TestAllocator:
    def test_target_maps_to_servers(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(6)
        powered = [s for s in rack.servers if s.state is not ServerState.OFF]
        assert len(powered) == 3

    def test_vm_count_converges(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(6)
        settle(rack)
        assert rack.running_vm_count() == 6
        assert alloc.running_matches_target()

    def test_scale_down_checkpoints(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(8)
        settle(rack)
        alloc.set_target(4)
        settle(rack)
        alloc.sync()
        settle(rack)
        assert rack.running_vm_count() == 4
        assert rack.total_on_off_cycles() >= 2

    def test_zero_target_powers_everything_off(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(8)
        settle(rack)
        alloc.set_target(0)
        settle(rack)
        assert rack.active_servers() == []

    def test_same_target_not_counted(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(4)
        ops = alloc.vm_ctrl_ops
        assert alloc.set_target(4) is False
        assert alloc.vm_ctrl_ops == ops

    def test_target_bounds(self, rack):
        alloc = NodeAllocator(rack)
        with pytest.raises(ValueError):
            alloc.set_target(-1)
        with pytest.raises(ValueError):
            alloc.set_target(9)

    def test_fully_serving(self, rack):
        alloc = NodeAllocator(rack)
        alloc.set_target(4)
        assert not rack.fully_serving()  # still booting
        settle(rack)
        assert rack.fully_serving()
