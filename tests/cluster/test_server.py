"""Server power state machine."""

import pytest

from repro.cluster.profiles import CORE_I7, XEON_DL380, ServerProfile
from repro.cluster.server import Server, ServerState
from repro.cluster.vm import VirtualMachine


@pytest.fixture
def server():
    return Server("pm1", XEON_DL380)


def boot(server, dt=60.0):
    server.power_on()
    while server.state is ServerState.BOOTING:
        server.step(dt)


class TestProfiles:
    def test_power_curve_endpoints(self):
        assert XEON_DL380.power_at(0.0) == 280.0
        assert XEON_DL380.power_at(1.0) == 450.0

    def test_power_clamps_utilisation(self):
        assert XEON_DL380.power_at(2.0) == 450.0

    def test_cycle_overhead_about_15_minutes(self):
        assert XEON_DL380.cycle_overhead_s == pytest.approx(900.0)

    def test_i7_much_lower_power(self):
        assert CORE_I7.peak_w < XEON_DL380.idle_w / 2

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            ServerProfile(name="bad", idle_w=100.0, peak_w=50.0)
        with pytest.raises(ValueError):
            ServerProfile(name="bad", idle_w=10.0, peak_w=50.0, vm_slots=0)


class TestStateMachine:
    def test_boot_sequence(self, server):
        server.power_on()
        assert server.state is ServerState.BOOTING
        server.step(XEON_DL380.boot_s + 1.0)
        assert server.state is ServerState.ON

    def test_vms_start_after_boot(self, server):
        vm = VirtualMachine("vm1")
        server.place_vm(vm)
        boot(server)
        assert vm.running

    def test_graceful_off_checkpoints(self, server):
        vm = VirtualMachine("vm1")
        server.place_vm(vm)
        boot(server)
        server.power_off()
        assert vm.checkpointed and not vm.running
        assert server.state is ServerState.SAVING
        server.step(XEON_DL380.save_s + 1.0)
        assert server.state is ServerState.OFF
        assert server.on_off_cycles == 1

    def test_emergency_off_loses_state(self, server):
        vm = VirtualMachine("vm1")
        server.place_vm(vm)
        boot(server)
        server.emergency_off()
        assert not vm.checkpointed
        assert server.state is ServerState.OFF
        assert server.crashes == 1

    def test_power_on_only_from_off(self, server):
        server.power_on()
        assert server.power_on() is False

    def test_power_off_only_when_powered(self, server):
        assert server.power_off() is False


class TestPowerAndCompute:
    def test_off_draws_nothing(self, server):
        assert server.power_w == 0.0

    def test_booting_draws_idle(self, server):
        server.power_on()
        assert server.power_w == XEON_DL380.idle_w

    def test_two_busy_vms_350w(self, server):
        server.place_vm(VirtualMachine("a", cpu_share=0.2))
        server.place_vm(VirtualMachine("b", cpu_share=0.2))
        boot(server)
        assert server.power_w == pytest.approx(348.0, abs=5.0)

    def test_duty_reduces_power_and_compute(self, server):
        server.place_vm(VirtualMachine("a"))
        server.place_vm(VirtualMachine("b"))
        boot(server)
        full_power = server.power_w
        full_compute = server.compute_seconds(10.0)
        server.set_duty(0.5)
        assert server.power_w < full_power
        assert server.compute_seconds(10.0) == pytest.approx(0.5 * full_compute)

    def test_no_compute_during_transitions(self, server):
        server.place_vm(VirtualMachine("a"))
        server.power_on()
        assert server.compute_seconds(10.0) == 0.0

    def test_duty_bounds(self, server):
        with pytest.raises(ValueError):
            server.set_duty(0.05)
        with pytest.raises(ValueError):
            server.set_duty(1.5)


class TestVMHosting:
    def test_slot_limit(self, server):
        server.place_vm(VirtualMachine("a"))
        server.place_vm(VirtualMachine("b"))
        with pytest.raises(ValueError):
            server.place_vm(VirtualMachine("c"))

    def test_evict_unknown_vm(self, server):
        with pytest.raises(ValueError):
            server.evict_vm(VirtualMachine("ghost"))

    def test_free_slots(self, server):
        assert server.free_slots == 2
        server.place_vm(VirtualMachine("a"))
        assert server.free_slots == 1
