"""Storage array and its integration with workload backlogs."""

import pytest

from repro.cluster.storage import StorageArray
from repro.sim.events import EventLog
from repro.workloads import VideoSurveillance


class TestStorageArray:
    def test_ingest_and_drain(self):
        array = StorageArray(capacity_gb=100.0)
        assert array.ingest(30.0) == 0.0
        assert array.used_gb == 30.0
        assert array.drain(10.0) == 10.0
        assert array.used_gb == 20.0

    def test_overflow_drops_and_counts(self):
        array = StorageArray(capacity_gb=50.0)
        dropped = array.ingest(80.0)
        assert dropped == pytest.approx(30.0)
        assert array.used_gb == 50.0
        assert array.dropped_gb == pytest.approx(30.0)

    def test_overflow_event(self):
        events = EventLog()
        array = StorageArray(capacity_gb=10.0, events=events)
        array.ingest(15.0, t=4.0)
        assert events.count("storage.overflow") == 1
        assert events.last("storage.overflow").data["gb"] == pytest.approx(5.0)

    def test_drain_bounded_by_content(self):
        array = StorageArray(capacity_gb=100.0)
        array.ingest(5.0)
        assert array.drain(50.0) == 5.0

    def test_power_states(self):
        array = StorageArray()
        assert array.power_w == array.idle_w
        array.ingest(1.0)
        assert array.power_w == array.active_w
        assert array.power_w == array.idle_w  # streaming flag resets

    def test_report(self):
        array = StorageArray(capacity_gb=100.0)
        array.ingest(40.0)
        report = array.report()
        assert report.free_gb == 60.0
        assert report.utilisation == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageArray(capacity_gb=0.0)
        with pytest.raises(ValueError):
            StorageArray(idle_w=50.0, active_w=10.0)
        array = StorageArray()
        with pytest.raises(ValueError):
            array.ingest(-1.0)
        with pytest.raises(ValueError):
            array.drain(-1.0)


class TestWorkloadIntegration:
    def test_backlog_lands_on_disk(self):
        workload = VideoSurveillance()
        workload.attach_storage(StorageArray(capacity_gb=100.0))
        # An hour of arrivals, no compute.
        for i in range(60):
            workload.step(i * 60.0, 60.0, 0.0)
        assert workload.storage.used_gb == pytest.approx(
            workload.backlog_gb, abs=0.01
        )

    def test_processing_drains_disk(self):
        workload = VideoSurveillance()
        workload.attach_storage(StorageArray(capacity_gb=100.0))
        for i in range(10):
            workload.step(i * 60.0, 60.0, 0.0)
        filled = workload.storage.used_gb
        workload.step(600.0, 60.0, compute_seconds=8 * 600.0)
        assert workload.storage.used_gb < filled

    def test_overflow_drops_oldest_footage(self):
        workload = VideoSurveillance()
        workload.attach_storage(StorageArray(capacity_gb=1.0))
        # ~12.6 GB arrives over an hour into a 1 GB disk.
        for i in range(60):
            workload.step(i * 60.0, 60.0, 0.0)
        assert workload.stats.dropped_gb > 10.0
        # Surviving backlog fits on the disk.
        assert workload.backlog_gb <= 1.0 + 0.01
        # Dropped data never counts as processed.
        assert workload.stats.processed_gb == 0.0

    def test_dropped_jobs_not_completed(self):
        workload = VideoSurveillance()
        workload.attach_storage(StorageArray(capacity_gb=0.5))
        for i in range(30):
            workload.step(i * 60.0, 60.0, 0.0)
        assert len(workload.queue.completed) == 0
