"""Ah-throughput wear model and Eq. 1 budgets."""

import pytest

from repro.battery.params import WearParams
from repro.battery.wear import WearModel

DAY = 86400.0


@pytest.fixture
def wear():
    return WearModel(35.0, WearParams())


class TestThroughputCounting:
    def test_discharge_counted(self, wear):
        wear.record(10.0, 0.8, 3600.0)
        assert wear.discharge_ah == pytest.approx(10.0)
        assert wear.charge_ah == 0.0

    def test_charge_counted_separately(self, wear):
        wear.record(-5.0, 0.5, 3600.0)
        assert wear.charge_ah == pytest.approx(5.0)
        assert wear.discharge_ah == 0.0

    def test_idle_records_nothing(self, wear):
        wear.record(0.0, 0.5, 3600.0)
        assert wear.discharge_ah == 0.0
        assert wear.weighted_ah == 0.0


class TestStress:
    def test_gentle_discharge_unit_stress(self, wear):
        assert wear.stress_factor(5.0, 0.8) == pytest.approx(1.0)

    def test_high_rate_penalised(self, wear):
        assert wear.stress_factor(20.0, 0.8) > 1.0

    def test_deep_discharge_penalised(self, wear):
        assert wear.stress_factor(5.0, 0.2) > 1.0

    def test_combined_worse_than_either(self, wear):
        combined = wear.stress_factor(20.0, 0.2)
        assert combined > wear.stress_factor(20.0, 0.8)
        assert combined > wear.stress_factor(5.0, 0.2)

    def test_weighted_exceeds_raw_under_stress(self, wear):
        wear.record(20.0, 0.2, 3600.0)
        assert wear.weighted_ah > wear.discharge_ah


class TestLifeProjection:
    def test_unused_battery_shelf_capped(self, wear):
        life = wear.projected_life_days(DAY)
        assert life == pytest.approx(wear.params.design_life_days * 1.5)

    def test_heavier_usage_shorter_life(self, wear):
        gentle = WearModel(35.0, WearParams())
        gentle.record(5.0, 0.8, 4 * 3600.0)
        heavy = WearModel(35.0, WearParams())
        heavy.record(20.0, 0.3, 4 * 3600.0)
        assert heavy.projected_life_days(DAY) < gentle.projected_life_days(DAY)

    def test_life_fraction_used_saturates(self, wear):
        wear.weighted_ah = wear.params.lifetime_ah * 2
        assert wear.life_fraction_used == 1.0

    def test_projection_requires_positive_elapsed(self, wear):
        with pytest.raises(ValueError):
            wear.projected_life_days(0.0)


class TestEq1Budget:
    def test_budget_prorated_over_design_life(self, wear):
        budget = wear.discharge_budget(DAY)
        expected = wear.params.lifetime_ah / wear.params.design_life_days
        assert budget == pytest.approx(expected)

    def test_carryover_added(self, wear):
        base = wear.discharge_budget(DAY)
        assert wear.discharge_budget(DAY, unused_carryover=3.0) == pytest.approx(base + 3.0)

    def test_budget_scales_linearly_in_time(self, wear):
        assert wear.discharge_budget(2 * DAY) == pytest.approx(
            2 * wear.discharge_budget(DAY)
        )
