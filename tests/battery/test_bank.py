"""Battery bank aggregation and group queries."""

import pytest

from repro.battery.bank import BatteryBank
from repro.battery.unit import BatteryMode, BatteryUnit


@pytest.fixture
def bank():
    return BatteryBank.build(count=3, soc=0.8)


class TestConstruction:
    def test_build_names(self, bank):
        assert [u.name for u in bank] == ["battery-1", "battery-2", "battery-3"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BatteryBank([])

    def test_rejects_duplicates(self):
        units = [BatteryUnit("a"), BatteryUnit("a")]
        with pytest.raises(ValueError):
            BatteryBank(units)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            BatteryBank.build(count=0)

    def test_by_name(self, bank):
        assert bank.by_name("battery-2") is bank[1]
        with pytest.raises(KeyError):
            bank.by_name("nope")


class TestGroups:
    def test_in_mode(self, bank):
        bank[0].set_mode(BatteryMode.CHARGING)
        bank[1].set_mode(BatteryMode.OFFLINE)
        bank[2].set_mode(BatteryMode.STANDBY)
        assert bank.in_mode(BatteryMode.CHARGING) == [bank[0]]
        assert len(bank.in_mode(BatteryMode.CHARGING, BatteryMode.STANDBY)) == 2

    def test_online(self, bank):
        bank.set_all_modes(BatteryMode.OFFLINE)
        assert bank.online() == []
        bank[1].set_mode(BatteryMode.DISCHARGING)
        assert bank.online() == [bank[1]]

    def test_where(self, bank):
        bank[0].kibam.set_soc(0.2)
        low = bank.where(lambda u: u.soc < 0.5)
        assert low == [bank[0]]

    def test_set_all_modes_counts_changes(self, bank):
        bank.set_all_modes(BatteryMode.STANDBY)
        changed = bank.set_all_modes(BatteryMode.OFFLINE)
        assert changed == 3
        assert bank.set_all_modes(BatteryMode.OFFLINE) == 0


class TestAggregates:
    def test_stored_energy_sums_units(self, bank):
        expected = sum(u.stored_energy_wh for u in bank)
        assert bank.stored_energy_wh == pytest.approx(expected)

    def test_capacity(self, bank):
        assert bank.capacity_wh == pytest.approx(3 * 35.0 * 24.0)

    def test_mean_soc(self, bank):
        assert bank.mean_soc == pytest.approx(0.8, abs=1e-6)

    def test_voltage_stats(self, bank):
        bank[0].kibam.set_soc(0.2)
        assert bank.min_voltage < bank.mean_voltage
        assert bank.voltage_stdev() > 0.0

    def test_voltage_stdev_single_unit(self):
        single = BatteryBank.build(count=1)
        assert single.voltage_stdev() == 0.0

    def test_discharge_imbalance(self, bank):
        bank[0].apply_discharge(10.0, 3600.0)
        assert bank.discharge_imbalance() == pytest.approx(10.0, rel=0.02)

    def test_max_discharge_power_counts_online_only(self, bank):
        bank.set_all_modes(BatteryMode.OFFLINE)
        assert bank.max_discharge_power(5.0) == 0.0
        bank[0].set_mode(BatteryMode.DISCHARGING)
        assert bank.max_discharge_power(5.0) > 0.0


class TestManufacturingSpread:
    def test_spread_varies_capacities(self):
        import numpy as np

        rng = np.random.default_rng(3)
        bank = BatteryBank.build(count=4, capacity_spread=0.08, rng=rng)
        capacities = {round(u.params.capacity_ah, 3) for u in bank}
        assert len(capacities) > 1
        for unit in bank:
            assert 35.0 * 0.92 <= unit.params.capacity_ah <= 35.0 * 1.08

    def test_spread_requires_rng(self):
        with pytest.raises(ValueError):
            BatteryBank.build(count=2, capacity_spread=0.1)

    def test_spread_bounds(self):
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            BatteryBank.build(count=2, capacity_spread=1.0, rng=rng)

    def test_zero_spread_identical(self):
        bank = BatteryBank.build(count=3)
        assert len({u.params.capacity_ah for u in bank}) == 1
