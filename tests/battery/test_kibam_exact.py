"""Exact (closed-form) KiBaM integrator properties.

The exponential integrator must agree with forward Euler in the limit of
vanishing step size, be invariant to how a constant-current interval is
subdivided (that is what "exact" means), and respect the same conservation
and clamping rules at the well boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.kibam import KiBaM
from repro.battery.params import KiBaMParams

CAPACITY = 35.0


def fresh(soc, integrator, c=0.62, k=4.0):
    return KiBaM(CAPACITY, KiBaMParams(c=c, k_per_hour=k), soc=soc,
                 integrator=integrator)


class TestConstruction:
    def test_integrator_selects_exact(self):
        euler = fresh(0.5, "euler")
        exact = fresh(0.5, "exact")
        euler.apply_current(8.0, 600.0)
        exact.apply_current(8.0, 600.0)
        # A 10-minute step at C/4 is long enough for Euler truncation
        # error to be visible.
        assert euler.y1 != exact.y1

    def test_rejects_unknown_integrator(self):
        with pytest.raises(ValueError):
            fresh(0.5, "rk4")


class TestEulerLimit:
    @given(
        soc=st.floats(0.35, 0.85),
        amps=st.floats(-6.0, 6.0),
        horizon=st.sampled_from([30.0, 120.0, 600.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_euler_converges_to_exact_as_dt_vanishes(self, soc, amps, horizon):
        """Refining the Euler step drives it onto the closed form."""
        exact = fresh(soc, "exact")
        exact.apply_current(amps, horizon)

        errors = []
        for substeps in (4, 64, 1024):
            euler = fresh(soc, "euler")
            for _ in range(substeps):
                euler.apply_current(amps, horizon / substeps)
            errors.append(abs(euler.y1 - exact.y1) + abs(euler.y2 - exact.y2))

        # Finest refinement lands on the exact answer...
        assert errors[-1] < 1e-3
        # ...and the error shrinks monotonically with the step size —
        # but only once there is truncation error to shrink: at
        # near-zero currents every refinement already sits at the
        # roundoff floor, where the ordering is noise.
        if errors[0] > 1e-10:
            assert errors[2] <= errors[0] + 1e-12

    @given(
        soc=st.floats(0.35, 0.85),
        amps=st.floats(-6.0, 6.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_small_step_agrees(self, soc, amps):
        """For dt -> 0 the two integrators coincide step by step."""
        euler = fresh(soc, "euler")
        exact = fresh(soc, "exact")
        euler.apply_current(amps, 0.05)
        exact.apply_current(amps, 0.05)
        assert euler.y1 == pytest.approx(exact.y1, abs=1e-8)
        assert euler.y2 == pytest.approx(exact.y2, abs=1e-8)


class TestStepSizeInvariance:
    @given(
        soc=st.floats(0.4, 0.8),
        amps=st.floats(-4.0, 4.0),
        splits=st.sampled_from([2, 3, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_subdividing_a_step_changes_nothing(self, soc, amps, splits):
        """One exact step == many exact sub-steps (no clamping regime)."""
        horizon = 300.0
        whole = fresh(soc, "exact")
        moved_whole = whole.apply_current(amps, horizon)

        pieces = fresh(soc, "exact")
        moved_pieces = 0.0
        for _ in range(splits):
            moved_pieces += pieces.apply_current(amps, horizon / splits)

        assert pieces.y1 == pytest.approx(whole.y1, abs=1e-9)
        assert pieces.y2 == pytest.approx(whole.y2, abs=1e-9)
        assert moved_pieces == pytest.approx(moved_whole, abs=1e-9)


class TestConservationAndClamps:
    @given(
        soc=st.floats(0.0, 1.0),
        amps=st.floats(-60.0, 60.0),
        dt=st.floats(1.0, 7200.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_wells_stay_physical(self, soc, amps, dt):
        model = fresh(soc, "exact")
        model.apply_current(amps, dt)
        assert 0.0 <= model.y1 <= 0.62 * CAPACITY + 1e-9
        assert 0.0 <= model.y2 <= 0.38 * CAPACITY + 1e-9
        assert 0.0 <= model.soc <= 1.0 + 1e-9

    @given(
        soc=st.floats(0.0, 1.0),
        amps=st.floats(-60.0, 60.0),
        dt=st.floats(1.0, 7200.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_moved_charge_matches_state_change(self, soc, amps, dt):
        """What the step reports as moved is what left the wells.

        ``_clamp_wells`` folds available-well shortfall/overflow into the
        reported Ah; only the (rare) bound-well clamp at the rails can
        break the identity, so skip those cases.
        """
        model = fresh(soc, "exact")
        before = model.charge_ah
        moved = model.apply_current(amps, dt)
        y2_cap = 0.38 * CAPACITY
        if 1e-9 < model.y2 < y2_cap - 1e-9:
            assert before - model.charge_ah == pytest.approx(moved, abs=1e-9)

    @given(soc=st.floats(0.0, 1.0), dt=st.floats(1.0, 7200.0))
    @settings(max_examples=100, deadline=None)
    def test_rest_conserves_total_charge(self, soc, dt):
        """Zero current only redistributes charge between the wells."""
        model = fresh(soc, "exact")
        before = model.charge_ah
        moved = model.apply_current(0.0, dt)
        assert moved == pytest.approx(0.0, abs=1e-9)
        assert model.charge_ah == pytest.approx(before, abs=1e-9)

    @given(soc=st.floats(0.0, 0.2), dt=st.floats(600.0, 3600.0))
    @settings(max_examples=100, deadline=None)
    def test_overdraw_empties_and_reports_shortfall(self, soc, dt):
        """Draining far past empty pins the available well and under-reports.

        At 200 A for >= 10 min the request (33+ Ah) dwarfs the charge a
        20 %-full 35 Ah cabinet holds, so the clamp must engage.
        """
        model = fresh(soc, "exact")
        requested_ah = 200.0 * dt / 3600.0
        moved = model.apply_current(200.0, dt)
        assert model.y1 == 0.0
        assert moved < requested_ah
