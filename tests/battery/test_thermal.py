"""Temperature effects on the energy buffer."""

import pytest

from repro.battery.thermal import (
    AmbientProfile,
    ThermalParams,
    capacity_factor,
    wear_factor,
)


class TestCapacityFactor:
    def test_unity_at_reference_and_above(self):
        assert capacity_factor(25.0) == 1.0
        assert capacity_factor(35.0) == 1.0

    def test_cold_derating(self):
        assert capacity_factor(15.0) == pytest.approx(1.0 - 0.008 * 10)

    def test_floor_in_deep_cold(self):
        assert capacity_factor(-60.0) == 0.5

    def test_monotone_in_temperature(self):
        values = [capacity_factor(t) for t in range(-20, 30, 5)]
        assert values == sorted(values)


class TestWearFactor:
    def test_unity_at_reference_and_below(self):
        assert wear_factor(25.0) == 1.0
        assert wear_factor(10.0) == 1.0

    def test_doubles_every_10c(self):
        assert wear_factor(35.0) == pytest.approx(2.0)
        assert wear_factor(45.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wear_factor(30.0, ThermalParams(arrhenius_doubling_c=0.0))
        with pytest.raises(ValueError):
            capacity_factor(30.0, ThermalParams(capacity_slope_per_c=0.0))


class TestAmbientProfile:
    def test_peak_at_hottest_hour(self):
        profile = AmbientProfile(mean_c=28.0, swing_c=7.0, hottest_hour=15.0)
        assert profile.at(15.0) == pytest.approx(35.0)
        assert profile.at(3.0) == pytest.approx(21.0)

    def test_mean_preserved(self):
        profile = AmbientProfile()
        samples = [profile.at(h * 0.5) for h in range(48)]
        assert sum(samples) / len(samples) == pytest.approx(profile.mean_c, abs=0.1)

    def test_convexity_penalty(self):
        """A swinging day wears harder than a constant day at its mean."""
        swinging = AmbientProfile(mean_c=30.0, swing_c=8.0)
        constant = AmbientProfile(mean_c=30.0, swing_c=0.0)
        assert swinging.daily_wear_factor() > constant.daily_wear_factor()

    def test_hvac_case(self):
        """Conditioning the container to 25 °C eliminates thermal wear —
        the quantitative argument for Figure 22's HVAC budget line."""
        conditioned = AmbientProfile(mean_c=25.0, swing_c=0.0)
        field = AmbientProfile(mean_c=32.0, swing_c=8.0)
        assert conditioned.daily_wear_factor() == pytest.approx(1.0)
        assert field.daily_wear_factor() > 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            AmbientProfile(swing_c=-1.0)
        with pytest.raises(ValueError):
            AmbientProfile(hottest_hour=25.0)
        profile = AmbientProfile()
        with pytest.raises(ValueError):
            profile.at(24.0)
        with pytest.raises(ValueError):
            profile.daily_wear_factor(samples=1)
