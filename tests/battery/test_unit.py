"""Battery unit: coupled kinetics, voltage, acceptance, wear and modes."""

import pytest

from repro.battery.unit import BatteryMode, BatteryUnit


@pytest.fixture
def unit():
    return BatteryUnit("test", soc=1.0)


class TestObservables:
    def test_full_battery_voltage(self, unit):
        assert unit.terminal_voltage == pytest.approx(
            unit.params.voltage.emf_full, abs=0.05
        )

    def test_stored_energy(self, unit):
        assert unit.stored_energy_wh == pytest.approx(35.0 * 24.0)

    def test_is_online_by_mode(self, unit):
        unit.set_mode(BatteryMode.OFFLINE)
        assert not unit.is_online()
        unit.set_mode(BatteryMode.STANDBY)
        assert unit.is_online()
        unit.set_mode(BatteryMode.DISCHARGING)
        assert unit.is_online()
        unit.set_mode(BatteryMode.CHARGING)
        assert not unit.is_online()


class TestDischarge:
    def test_delivers_requested_when_capable(self, unit):
        got = unit.apply_discharge(10.0, 5.0)
        assert got == pytest.approx(10.0, rel=1e-6)
        assert unit.last_current == pytest.approx(10.0, rel=1e-6)

    def test_respects_voltage_cutoff(self, unit):
        # Drain until the cutoff limits current.
        for _ in range(5000):
            got = unit.apply_discharge(18.0, 5.0)
            if got < 17.9:
                break
        assert unit.terminal_voltage >= unit.params.voltage.v_cutoff - 0.05

    def test_negative_current_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.apply_discharge(-1.0, 5.0)

    def test_wear_recorded(self, unit):
        unit.apply_discharge(10.0, 3600.0)
        assert unit.wear.discharge_ah == pytest.approx(10.0, rel=0.01)


class TestCharge:
    def test_charging_raises_soc(self):
        unit = BatteryUnit("c", soc=0.3)
        before = unit.soc
        unit.apply_charge(8.0, 3600.0)
        assert unit.soc > before

    def test_losses_reduce_stored(self):
        unit = BatteryUnit("c", soc=0.3)
        stored = unit.apply_charge(8.0, 5.0)
        assert stored < 8.0

    def test_full_battery_accepts_little(self):
        unit = BatteryUnit("c", soc=1.0)
        stored = unit.apply_charge(8.0, 5.0)
        assert stored < 1.0

    def test_negative_current_rejected(self, unit):
        with pytest.raises(ValueError):
            unit.apply_charge(-1.0, 5.0)


class TestIdle:
    def test_self_discharge_tiny(self, unit):
        before = unit.soc
        for _ in range(1000):
            unit.idle(60.0)  # ~17 hours
        assert before - unit.soc < 0.002

    def test_idle_resets_last_current(self, unit):
        unit.apply_discharge(10.0, 5.0)
        unit.idle(5.0)
        assert unit.last_current == 0.0


class TestCapabilities:
    def test_max_discharge_positive_when_charged(self, unit):
        assert unit.max_discharge_current(5.0) > 10.0

    def test_max_discharge_zero_when_empty(self):
        unit = BatteryUnit("e", soc=0.0)
        assert unit.max_discharge_current(5.0) == pytest.approx(0.0, abs=0.5)

    def test_max_charge_current_tracks_acceptance(self, unit):
        assert unit.max_charge_current() == pytest.approx(
            unit.acceptance.max_current(unit.soc)
        )


class TestModes:
    def test_set_mode_reports_change(self, unit):
        assert unit.set_mode(BatteryMode.OFFLINE) is True
        assert unit.set_mode(BatteryMode.OFFLINE) is False
