"""Charger allocation invariants under randomised banks and budgets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.charger import SolarCharger
from repro.battery.unit import BatteryUnit


@given(
    socs=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=5),
    budget=st.floats(0.0, 2000.0),
    dt=st.sampled_from([1.0, 5.0, 30.0]),
)
@settings(max_examples=100, deadline=None)
def test_charger_step_invariants(socs, budget, dt):
    units = [BatteryUnit(f"u{i}", soc=s) for i, s in enumerate(socs)]
    charger = SolarCharger()
    charges_before = [u.kibam.charge_ah for u in units]

    result = charger.step(units, budget, dt)

    # Never draws more than offered, never reports negative storage.
    assert 0.0 <= result.power_used_w <= budget + 1e-6
    assert result.accepted_ah >= 0.0
    assert 0.0 <= result.utilisation <= 1.0 + 1e-9

    for unit, before in zip(units, charges_before, strict=True):
        # Charging never discharges a unit (beyond self-discharge noise)
        # and never overfills it.
        assert unit.kibam.charge_ah >= before - 0.01
        assert unit.soc <= 1.0 + 1e-9

    # Stored charge is bounded by the energy actually drawn, valuing the
    # charge at the EMF floor (terminal voltage never drops below it).
    drawn_wh = result.power_used_w * dt / 3600.0
    stored_wh = result.accepted_ah * units[0].params.voltage.emf_empty
    assert stored_wh <= drawn_wh + 1e-6


@given(
    soc=st.floats(0.0, 0.85),
    budget=st.floats(100.0, 1200.0),
)
@settings(max_examples=50, deadline=None)
def test_charging_always_makes_progress_when_possible(soc, budget):
    """A non-full battery offered a real budget gains charge."""
    unit = BatteryUnit("u", soc=soc)
    charger = SolarCharger()
    before = unit.soc
    charger.step([unit], budget, 60.0)
    assert unit.soc > before


@given(budget=st.floats(0.0, 30.0))
@settings(max_examples=30, deadline=None)
def test_budget_below_overhead_charges_nothing(budget):
    """A budget that cannot even power one string stores nothing."""
    charger = SolarCharger(per_string_overhead_w=40.0)
    unit = BatteryUnit("u", soc=0.5)
    result = charger.step([unit], budget, 60.0)
    assert result.accepted_ah == pytest.approx(0.0, abs=1e-9)
