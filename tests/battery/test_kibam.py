"""KiBaM kinetics: conservation, rate-capacity and recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.kibam import KiBaM
from repro.battery.params import KiBaMParams


def fresh(soc=1.0, c=0.62, k=4.0, capacity=35.0):
    return KiBaM(capacity, KiBaMParams(c=c, k_per_hour=k), soc=soc)


class TestConstruction:
    def test_initial_wells_equalised(self):
        model = fresh(soc=0.5)
        assert model.available_head == pytest.approx(0.5)
        assert model.bound_head == pytest.approx(0.5)
        assert model.soc == pytest.approx(0.5)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            KiBaM(0.0, KiBaMParams())

    def test_rejects_bad_soc(self):
        with pytest.raises(ValueError):
            fresh(soc=1.5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KiBaM(35.0, KiBaMParams(c=1.5))
        with pytest.raises(ValueError):
            KiBaM(35.0, KiBaMParams(k_per_hour=-1))


class TestDischarge:
    def test_discharge_reduces_charge(self):
        model = fresh()
        model.apply_current(10.0, 3600.0)
        assert model.charge_ah == pytest.approx(25.0, abs=0.5)

    def test_rate_capacity_effect(self):
        """High current depresses the available head below total SoC."""
        model = fresh()
        model.apply_current(18.0, 600.0)
        assert model.available_head < model.soc - 0.02

    def test_higher_current_lower_delivered_capacity(self):
        """Classic Peukert-like behaviour: less Ah deliverable at high rate."""
        def deliverable(amps):
            model = fresh()
            total = 0.0
            for _ in range(20_000):
                got = model.apply_current(amps, 5.0)
                if got < amps * 5.0 / 3600.0 * 0.99:
                    break
                total += got
            return total

        assert deliverable(20.0) < deliverable(6.0)

    def test_empty_available_well_limits_discharge(self):
        model = fresh(soc=0.02)
        moved = model.apply_current(30.0, 3600.0)
        assert moved < 30.0  # could not deliver the full hour at 30 A
        assert model.y1 == pytest.approx(0.0, abs=1e-9)

    def test_max_discharge_current_honoured(self):
        model = fresh(soc=0.3)
        limit = model.max_discharge_current(5.0)
        moved_ah = model.apply_current(limit, 5.0)
        assert moved_ah == pytest.approx(limit * 5.0 / 3600.0, rel=1e-6)


class TestRecovery:
    def test_rest_equalises_wells(self):
        model = fresh()
        model.apply_current(18.0, 1800.0)
        depressed = model.available_head
        for _ in range(360):
            model.rest(10.0)
        assert model.available_head > depressed
        assert model.available_head == pytest.approx(model.bound_head, abs=0.02)

    def test_rest_conserves_charge(self):
        model = fresh(soc=0.6)
        before = model.charge_ah
        for _ in range(100):
            model.rest(60.0)
        assert model.charge_ah == pytest.approx(before, rel=1e-9)


class TestCharge:
    def test_charge_increases_soc(self):
        model = fresh(soc=0.2)
        model.apply_current(-5.0, 3600.0)
        assert model.soc == pytest.approx(0.2 + 5.0 / 35.0, abs=0.01)

    def test_available_well_saturates(self):
        model = fresh(soc=0.95)
        moved = model.apply_current(-30.0, 3600.0)
        # Cannot store a full 30 Ah into a nearly full battery.
        assert -moved < 35.0 * 0.05 + 1.0

    def test_set_soc(self):
        model = fresh()
        model.set_soc(0.4)
        assert model.soc == pytest.approx(0.4)
        with pytest.raises(ValueError):
            model.set_soc(-0.1)


class TestInvariants:
    @given(
        soc=st.floats(0.05, 1.0),
        amps=st.floats(-8.0, 25.0),
        steps=st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_wells_stay_bounded(self, soc, amps, steps):
        model = fresh(soc=soc)
        cap = model.capacity_ah
        for _ in range(steps):
            model.apply_current(amps, 5.0)
            assert -1e-9 <= model.y1 <= model.params.c * cap + 1e-9
            assert -1e-9 <= model.y2 <= (1 - model.params.c) * cap + 1e-9

    @given(
        soc=st.floats(0.1, 0.9),
        amps=st.floats(0.1, 20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_discharge_conservation(self, soc, amps):
        """Charge removed equals reported moved Ah."""
        model = fresh(soc=soc)
        before = model.charge_ah
        moved = model.apply_current(amps, 60.0)
        assert before - model.charge_ah == pytest.approx(moved, abs=1e-9)

    @given(soc=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_rest_never_changes_total(self, soc):
        model = fresh(soc=soc)
        before = model.charge_ah
        model.rest(3600.0)
        assert model.charge_ah == pytest.approx(before, rel=1e-9, abs=1e-12)
