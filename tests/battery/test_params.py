"""Parameter validation across every battery parameter class."""

import pytest

from repro.battery.params import (
    AcceptanceParams,
    BatteryParams,
    KiBaMParams,
    VoltageParams,
    WearParams,
)


class TestKiBaMParams:
    def test_defaults_valid(self):
        KiBaMParams().validate()

    @pytest.mark.parametrize("c", [0.0, 1.0, -0.1, 1.5])
    def test_c_bounds(self, c):
        with pytest.raises(ValueError):
            KiBaMParams(c=c).validate()


class TestVoltageParams:
    def test_defaults_valid(self):
        VoltageParams().validate()

    def test_absorption_above_emf(self):
        with pytest.raises(ValueError):
            VoltageParams(v_charge_max=25.0).validate()

    def test_cutoff_inside_emf_range(self):
        with pytest.raises(ValueError):
            VoltageParams(v_cutoff=22.0).validate()


class TestWearParams:
    def test_defaults_valid(self):
        WearParams().validate()

    def test_positive_lifetime(self):
        with pytest.raises(ValueError):
            WearParams(lifetime_ah=0.0).validate()
        with pytest.raises(ValueError):
            WearParams(design_life_days=0.0).validate()
        with pytest.raises(ValueError):
            WearParams(stress_c_rate=0.0).validate()


class TestAcceptanceParams:
    def test_defaults_valid(self):
        AcceptanceParams().validate()

    def test_float_below_bulk(self):
        with pytest.raises(ValueError):
            AcceptanceParams(float_c_rate=0.5, bulk_c_rate=0.25).validate()

    def test_negative_parasitic(self):
        with pytest.raises(ValueError):
            AcceptanceParams(parasitic_amps=-0.1).validate()


class TestBatteryParams:
    def test_defaults_match_prototype(self):
        params = BatteryParams().validate()
        # One cabinet: two UB1280s in series.
        assert params.nominal_voltage == 24.0
        assert params.capacity_ah == 35.0
        assert params.energy_wh == pytest.approx(840.0)

    def test_validates_nested(self):
        with pytest.raises(ValueError):
            BatteryParams(kibam=KiBaMParams(c=2.0)).validate()

    def test_top_level_bounds(self):
        with pytest.raises(ValueError):
            BatteryParams(capacity_ah=0.0).validate()
        with pytest.raises(ValueError):
            BatteryParams(nominal_voltage=0.0).validate()
        with pytest.raises(ValueError):
            BatteryParams(self_discharge_per_day=-0.1).validate()

    def test_bank_energy_matches_paper(self):
        """Three cabinets = the prototype's 2.52 kWh e-Buffer."""
        assert 3 * BatteryParams().energy_wh == pytest.approx(2520.0)
