"""Charge acceptance and charging losses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.acceptance import ChargeAcceptance
from repro.battery.params import AcceptanceParams


@pytest.fixture
def acceptance():
    return ChargeAcceptance(35.0, AcceptanceParams())


class TestCeiling:
    def test_bulk_plateau(self, acceptance):
        bulk = acceptance.params.bulk_c_rate * 35.0
        assert acceptance.max_current(0.0) == pytest.approx(bulk)
        assert acceptance.max_current(0.5) == pytest.approx(bulk)

    def test_taper_above_knee(self, acceptance):
        knee = acceptance.params.taper_start_soc
        assert acceptance.max_current(knee + 0.05) < acceptance.max_current(knee)

    def test_floor_at_full(self, acceptance):
        floor = acceptance.params.float_c_rate * 35.0
        assert acceptance.max_current(1.0) >= floor

    def test_monotonically_nonincreasing(self, acceptance):
        values = [acceptance.max_current(s / 20.0) for s in range(21)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:], strict=False))


class TestEffectiveCurrent:
    def test_zero_applied_zero_effective(self, acceptance):
        assert acceptance.effective_current(0.0, 0.5) == 0.0

    def test_parasitic_deduction(self, acceptance):
        applied = 5.0
        effective = acceptance.effective_current(applied, 0.3)
        assert effective == pytest.approx(applied - acceptance.params.parasitic_amps)

    def test_tiny_current_fully_lost(self, acceptance):
        assert acceptance.effective_current(0.3, 0.3) == 0.0

    def test_gassing_loss_near_full(self, acceptance):
        lo = acceptance.effective_current(2.0, 0.5)
        hi = acceptance.effective_current(2.0, 0.99)
        assert hi < lo

    def test_ceiling_applies_before_losses(self, acceptance):
        bulk = acceptance.params.bulk_c_rate * 35.0
        effective = acceptance.effective_current(100.0, 0.2)
        assert effective <= bulk

    @given(applied=st.floats(0.0, 30.0), soc=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_effective_bounded_by_applied(self, applied, soc):
        acceptance = ChargeAcceptance(35.0, AcceptanceParams())
        effective = acceptance.effective_current(applied, soc)
        assert 0.0 <= effective <= applied + 1e-12


class TestEfficiency:
    def test_efficiency_in_unit_interval(self, acceptance):
        for soc in (0.1, 0.5, 0.9, 1.0):
            eta = acceptance.charging_efficiency(6.0, soc)
            assert 0.0 <= eta <= 1.0

    def test_efficiency_higher_at_high_current(self, acceptance):
        """Fixed parasitic losses hurt small currents disproportionately."""
        assert acceptance.charging_efficiency(8.0, 0.3) > acceptance.charging_efficiency(
            1.5, 0.3
        )


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            AcceptanceParams(bulk_c_rate=0.0).validate()
        with pytest.raises(ValueError):
            AcceptanceParams(taper_start_soc=1.5).validate()
        with pytest.raises(ValueError):
            AcceptanceParams(gassing_fraction=1.5).validate()
        with pytest.raises(ValueError):
            ChargeAcceptance(0.0, AcceptanceParams())
