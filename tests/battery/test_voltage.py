"""Terminal voltage model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.params import VoltageParams
from repro.battery.voltage import VoltageModel


@pytest.fixture
def model():
    return VoltageModel(VoltageParams())


class TestEMF:
    def test_full_and_empty_bounds(self, model):
        assert model.emf(1.0) == pytest.approx(model.params.emf_full)
        assert model.emf(0.0) == pytest.approx(model.params.emf_empty)

    def test_monotonic_in_head(self, model):
        values = [model.emf(h / 10.0) for h in range(11)]
        assert values == sorted(values)

    def test_clamps_out_of_range(self, model):
        assert model.emf(1.5) == model.emf(1.0)
        assert model.emf(-0.5) == model.emf(0.0)


class TestTerminal:
    def test_discharge_sags(self, model):
        assert model.terminal(0.8, 10.0) < model.emf(0.8)

    def test_charge_rises(self, model):
        assert model.terminal(0.8, -5.0) > model.emf(0.8)

    def test_charge_clamped_at_absorption(self, model):
        v = model.terminal(1.0, -200.0)
        assert v == pytest.approx(model.params.v_charge_max)

    def test_sag_proportional_to_current(self, model):
        sag1 = model.emf(0.7) - model.terminal(0.7, 5.0)
        sag2 = model.emf(0.7) - model.terminal(0.7, 10.0)
        assert sag2 == pytest.approx(2.0 * sag1)


class TestCutoff:
    def test_below_cutoff_detection(self, model):
        assert model.below_cutoff(0.02, 10.0)
        assert not model.below_cutoff(0.9, 5.0)

    def test_max_discharge_for_cutoff_boundary(self, model):
        head = 0.5
        limit = model.max_discharge_for_cutoff(head)
        assert model.terminal(head, limit) == pytest.approx(model.params.v_cutoff)

    @given(head=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_max_discharge_never_negative(self, head):
        model = VoltageModel(VoltageParams())
        assert model.max_discharge_for_cutoff(head) >= 0.0


class TestValidation:
    def test_bad_emf_order(self):
        with pytest.raises(ValueError):
            VoltageParams(emf_empty=26.0, emf_full=25.0).validate()

    def test_bad_cutoff(self):
        with pytest.raises(ValueError):
            VoltageParams(v_cutoff=30.0).validate()

    def test_bad_resistance(self):
        with pytest.raises(ValueError):
            VoltageParams(r_internal_ohm=0.0).validate()
