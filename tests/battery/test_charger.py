"""Solar charger allocation: water-filling, overheads, concentration."""

import pytest

from repro.battery.charger import SolarCharger
from repro.battery.unit import BatteryUnit


def units(*socs):
    return [BatteryUnit(f"u{i}", soc=s) for i, s in enumerate(socs)]


@pytest.fixture
def charger():
    return SolarCharger()


class TestStep:
    def test_no_targets_no_power(self, charger):
        result = charger.step([], 500.0, 5.0)
        assert result.power_used_w == 0.0
        assert result.utilisation == 0.0

    def test_negative_budget_rejected(self, charger):
        with pytest.raises(ValueError):
            charger.step(units(0.5), -1.0, 5.0)

    def test_charging_stores_ah(self, charger):
        target = units(0.3)
        result = charger.step(target, 400.0, 60.0)
        assert result.accepted_ah > 0.0
        assert target[0].soc > 0.3

    def test_power_used_bounded_by_offer(self, charger):
        result = charger.step(units(0.2, 0.2, 0.2), 300.0, 5.0)
        assert result.power_used_w <= 300.0 + 1e-6

    def test_acceptance_limits_draw(self, charger):
        # One nearly-full battery cannot absorb a large budget.
        result = charger.step(units(0.97), 1000.0, 5.0)
        assert result.power_used_w < 300.0

    def test_even_split_across_equal_units(self, charger):
        targets = units(0.3, 0.3)
        charger.step(targets, 300.0, 5.0)
        c0, c1 = (-u.last_current for u in targets)
        assert c0 == pytest.approx(c1, rel=0.05)

    def test_waterfill_redistributes_from_capped_unit(self, charger):
        # A nearly-full unit caps out; the empty unit gets the leftovers.
        full, empty = units(0.98, 0.2)
        charger.step([full, empty], 500.0, 5.0)
        assert -empty.last_current > -full.last_current

    def test_unpayable_strings_idle(self):
        charger = SolarCharger(per_string_overhead_w=50.0)
        targets = units(0.3, 0.3, 0.3)
        charger.step(targets, 110.0, 5.0)  # only 2 overheads payable
        assert sum(1 for u in targets if u.last_current < 0) <= 2


class TestConcentration:
    def test_scarce_budget_favours_fewer_strings(self, charger):
        """The Figure 4(a)/Figure 10 effect at the ops level: one step of
        sequential charging stores more than one step of batch charging
        when the budget is scarce."""
        seq = units(0.3, 0.3, 0.3)
        batch = units(0.3, 0.3, 0.3)
        stored_seq = charger.step(seq[:1], 150.0, 60.0).accepted_ah
        stored_batch = charger.step(batch, 150.0, 60.0).accepted_ah
        assert stored_seq > stored_batch

    def test_abundant_budget_favours_batch(self, charger):
        seq = units(0.3, 0.3, 0.3)
        batch = units(0.3, 0.3, 0.3)
        stored_seq = charger.step(seq[:1], 900.0, 60.0).accepted_ah
        stored_batch = charger.step(batch, 900.0, 60.0).accepted_ah
        assert stored_batch > stored_seq


class TestFloatAndMisc:
    def test_float_step_consumes_power(self, charger):
        used = charger.float_step(units(0.9), 5.0)
        assert used > 0.0

    def test_peak_charging_power_positive(self, charger):
        unit = units(0.5)[0]
        assert charger.peak_charging_power(unit) > 200.0

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            SolarCharger(efficiency=0.0)
        with pytest.raises(ValueError):
            SolarCharger(per_string_overhead_w=-1.0)
