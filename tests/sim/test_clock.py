"""Clock behaviour."""

import pytest

from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, Clock


class TestConstruction:
    def test_defaults(self):
        clock = Clock()
        assert clock.t == 0.0
        assert clock.step_index == 0
        assert clock.dt == 1.0

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            Clock(dt=0.0)
        with pytest.raises(ValueError):
            Clock(dt=-1.0)

    def test_rejects_bad_start_hour(self):
        with pytest.raises(ValueError):
            Clock(start_hour=24.0)
        with pytest.raises(ValueError):
            Clock(start_hour=-0.1)


class TestAdvance:
    def test_advance_moves_time_by_dt(self):
        clock = Clock(dt=5.0)
        clock.advance()
        assert clock.t == 5.0
        assert clock.step_index == 1

    def test_no_floating_point_drift(self):
        clock = Clock(dt=0.1)
        for _ in range(100_000):
            clock.advance()
        assert clock.t == pytest.approx(10_000.0, abs=1e-6)

    def test_hours_property(self):
        clock = Clock(dt=SECONDS_PER_HOUR)
        clock.advance()
        assert clock.hours == pytest.approx(1.0)


class TestTimeOfDay:
    def test_start_hour_respected(self):
        clock = Clock(start_hour=7.0)
        assert clock.hour_of_day == pytest.approx(7.0)

    def test_wraps_midnight(self):
        clock = Clock(dt=SECONDS_PER_HOUR, start_hour=23.0)
        clock.advance()
        clock.advance()
        assert clock.hour_of_day == pytest.approx(1.0)

    def test_day_index_increments(self):
        clock = Clock(dt=SECONDS_PER_DAY, start_hour=7.0)
        assert clock.day_index == 0
        clock.advance()
        assert clock.day_index == 1

    def test_is_daytime(self):
        clock = Clock(start_hour=12.0)
        assert clock.is_daytime()
        night = Clock(start_hour=2.0)
        assert not night.is_daytime()

    def test_is_daytime_custom_bounds(self):
        clock = Clock(start_hour=6.0)
        assert not clock.is_daytime(sunrise=6.5, sunset=19.5)
        assert clock.is_daytime(sunrise=5.0, sunset=19.5)
