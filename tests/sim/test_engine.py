"""Engine stepping, ordering, observers and stop conditions."""

import pytest

from repro.sim.component import Component
from repro.sim.engine import Engine, SimulationError


class Recorder(Component):
    """Records the order and times at which it is stepped."""

    def __init__(self, name, log):
        super().__init__(name)
        self.log = log
        self.started = False
        self.finished = False

    def start(self, clock):
        self.started = True

    def step(self, clock):
        self.log.append((self.name, clock.t))

    def finish(self, clock):
        self.finished = True


class TestRegistration:
    def test_duplicate_names_rejected(self):
        engine = Engine()
        engine.add(Recorder("a", []))
        with pytest.raises(SimulationError):
            engine.add(Recorder("a", []))

    def test_get_by_name(self):
        engine = Engine()
        comp = engine.add(Recorder("a", []))
        assert engine.get("a") is comp

    def test_get_unknown_raises(self):
        engine = Engine()
        engine.add(Recorder("a", []))
        with pytest.raises(SimulationError):
            engine.get("nope")

    def test_run_without_components_raises(self):
        with pytest.raises(SimulationError):
            Engine().run(10.0)

    def test_add_after_start_rejected(self):
        engine = Engine()
        engine.add(Recorder("a", []))
        engine.run(1.0)
        with pytest.raises(SimulationError):
            engine.add(Recorder("b", []))


class TestExecution:
    def test_components_step_in_registration_order(self):
        log = []
        engine = Engine(dt=1.0)
        engine.add(Recorder("first", log))
        engine.add(Recorder("second", log))
        engine.run(2.0)
        assert [name for name, _ in log] == ["first", "second", "first", "second"]

    def test_run_duration_step_count(self):
        log = []
        engine = Engine(dt=5.0)
        engine.add(Recorder("a", log))
        engine.run(60.0)
        assert len(log) == 12

    def test_lifecycle_hooks_called(self):
        comp = Recorder("a", [])
        engine = Engine()
        engine.add(comp)
        engine.run(1.0)
        assert comp.started and comp.finished

    def test_start_called_once_across_runs(self):
        starts = []

        class Once(Component):
            def start(self, clock):
                starts.append(clock.t)

            def step(self, clock):
                pass

        engine = Engine()
        engine.add(Once("o"))
        engine.run(2.0)
        engine.run(2.0)
        assert len(starts) == 1

    def test_invalid_duration(self):
        engine = Engine()
        engine.add(Recorder("a", []))
        with pytest.raises(ValueError):
            engine.run(0.0)


class TestObserversAndStops:
    def test_observer_fires_each_tick(self):
        ticks = []
        engine = Engine(dt=1.0)
        engine.add(Recorder("a", []))
        engine.observe(lambda clock: ticks.append(clock.t))
        engine.run(3.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_condition_ends_early(self):
        log = []
        engine = Engine(dt=1.0)
        engine.add(Recorder("a", log))
        engine.stop_when(lambda clock: clock.t >= 3.0)
        engine.run(100.0)
        assert len(log) == 3

    def test_observer_runs_after_components(self):
        order = []

        class Noter(Component):
            def step(self, clock):
                order.append("component")

        engine = Engine()
        engine.add(Noter("n"))
        engine.observe(lambda clock: order.append("observer"))
        engine.run(1.0)
        assert order == ["component", "observer"]


class TestMultiRun:
    def test_finish_called_once_across_runs(self):
        """Extending a run (multi-day operation) must not re-finalise."""
        finishes = []

        class Once(Component):
            def step(self, clock):
                pass

            def finish(self, clock):
                finishes.append(clock.t)

        engine = Engine(dt=1.0)
        engine.add(Once("o"))
        engine.run(2.0)
        assert engine.finished
        engine.run(2.0)
        engine.run(2.0)
        assert len(finishes) == 1
        assert engine.clock.t == pytest.approx(6.0)

    def test_second_run_continues_the_clock(self):
        log = []
        engine = Engine(dt=1.0)
        engine.add(Recorder("a", log))
        engine.run(2.0)
        engine.run(2.0)
        assert [t for _, t in log] == [0.0, 1.0, 2.0, 3.0]


class TestStopCheckStride:
    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            Engine(stop_check_stride=0)

    def test_default_stride_preserves_exact_early_stop(self):
        log = []
        engine = Engine(dt=1.0)
        engine.add(Recorder("a", log))
        engine.stop_when(lambda clock: clock.t >= 3.0)
        engine.run(100.0)
        assert len(log) == 3

    def test_wide_stride_checks_once_per_chunk(self):
        """A stride of 4 runs whole chunks between stop evaluations."""
        log = []
        engine = Engine(dt=1.0, stop_check_stride=4)
        engine.add(Recorder("a", log))
        engine.stop_when(lambda clock: clock.t >= 1.0)
        engine.run(100.0)
        assert len(log) == 4

    def test_stride_does_not_overshoot_duration(self):
        log = []
        engine = Engine(dt=1.0, stop_check_stride=64)
        engine.add(Recorder("a", log))
        engine.stop_when(lambda clock: False)
        engine.run(10.0)
        assert len(log) == 10
