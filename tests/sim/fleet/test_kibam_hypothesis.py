"""Property tests: the batched KiBaM integrator is bit-exact vs scalar.

The fleet kernel's whole numerical contract rests on its vectorized
expressions reproducing the scalar ones operation-for-operation.  For the
KiBaM Euler step that claim is checkable exactly: the expression tree
contains only +, -, *, / and comparisons (no transcendentals), and IEEE
arithmetic is deterministic elementwise, so the batch result must equal
the scalar result to the last bit — not approximately.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.kibam import KiBaM
from repro.battery.params import KiBaMParams

np = pytest.importorskip("numpy")

from repro.sim.fleet.kernel import _FleetBatch, SiteSpec  # noqa: E402

CAPACITY_AH = 35.0
C = 0.62
K_PER_HOUR = 4.0
DT_S = 5.0

wells_y1 = st.floats(min_value=0.0, max_value=C * CAPACITY_AH,
                     allow_nan=False, allow_infinity=False)
wells_y2 = st.floats(min_value=0.0, max_value=(1.0 - C) * CAPACITY_AH,
                     allow_nan=False, allow_infinity=False)
currents = st.floats(min_value=-60.0, max_value=60.0,
                     allow_nan=False, allow_infinity=False)


def _batch(n: int) -> _FleetBatch:
    spec = SiteSpec(
        controller="insure",
        workload="video",
        seed=1,
        initial_soc=0.55,
        trace_power_w=tuple(0.0 for _ in range(12)),
        trace_dt_s=DT_S,
    )
    return _FleetBatch([spec] * n)


def _scalar(y1: float, y2: float) -> KiBaM:
    kibam = KiBaM(CAPACITY_AH, KiBaMParams(c=C, k_per_hour=K_PER_HOUR),
                  soc=1.0, integrator="euler")
    kibam.y1 = y1
    kibam.y2 = y2
    return kibam


@given(y1=wells_y1, y2=wells_y2, amps=currents)
@settings(max_examples=200, deadline=None)
def test_single_cell_matches_scalar_bitwise(y1, y2, amps):
    batch = _batch(1)
    batch.y1[:] = y1
    batch.y2[:] = y2
    moved = batch._kibam_apply(np.ones((1, batch.b), dtype=bool),
                               np.full((1, batch.b), amps))

    scalar = _scalar(y1, y2)
    expected_moved = scalar.apply_current(amps, DT_S)

    for col in range(batch.b):
        assert float(moved[0, col]) == expected_moved
        assert float(batch.y1[0, col]) == scalar.y1
        assert float(batch.y2[0, col]) == scalar.y2


@given(
    states=st.lists(st.tuples(wells_y1, wells_y2, currents),
                    min_size=2, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_batched_sites_are_elementwise_independent(states):
    # N sites stepped together must equal each site stepped alone: the
    # vectorization adds no cross-site coupling.
    batch = _batch(len(states))
    amps = np.zeros((len(states), batch.b))
    for i, (y1, y2, a) in enumerate(states):
        batch.y1[i, :] = y1
        batch.y2[i, :] = y2
        amps[i, :] = a
    moved = batch._kibam_apply(np.ones_like(amps, dtype=bool), amps)

    for i, (y1, y2, a) in enumerate(states):
        scalar = _scalar(y1, y2)
        expected = scalar.apply_current(a, DT_S)
        assert float(moved[i, 0]) == expected
        assert float(batch.y1[i, 0]) == scalar.y1
        assert float(batch.y2[i, 0]) == scalar.y2


@given(y1=wells_y1, y2=wells_y2, amps=currents)
@settings(max_examples=100, deadline=None)
def test_column_helper_matches_full_bank_apply(y1, y2, amps):
    # _kibam_apply_col is the (N,)-sliced fast path; it must write the
    # same wells as the full-bank apply restricted to that column.
    full = _batch(1)
    full.y1[:] = y1
    full.y2[:] = y2
    mask = np.zeros((1, full.b), dtype=bool)
    mask[0, 1] = True
    amps_full = np.zeros((1, full.b))
    amps_full[0, 1] = amps
    moved_full = full._kibam_apply(mask, amps_full)

    col = _batch(1)
    col.y1[:] = y1
    col.y2[:] = y2
    moved_col = col._kibam_apply_col(
        1, np.array([True]), np.array([amps])
    )

    assert float(moved_col[0]) == float(moved_full[0, 1])
    assert float(col.y1[0, 1]) == float(full.y1[0, 1])
    assert float(col.y2[0, 1]) == float(full.y2[0, 1])
    # Unmasked columns stay untouched in both.
    assert float(col.y1[0, 0]) == y1
    assert float(col.y2[0, 2]) == y2


@given(y1=wells_y1, y2=wells_y2)
@settings(max_examples=100, deadline=None)
def test_wells_stay_physical(y1, y2):
    batch = _batch(1)
    batch.y1[:] = y1
    batch.y2[:] = y2
    batch._kibam_apply(np.ones((1, batch.b), dtype=bool),
                       np.full((1, batch.b), 200.0))
    assert (batch.y1 >= 0.0).all() and (batch.y1 <= batch.y1_cap).all()
    assert (batch.y2 >= 0.0).all() and (batch.y2 <= batch.y2_cap).all()
