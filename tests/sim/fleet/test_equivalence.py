"""Fleet-vs-scalar equivalence over the full golden matrix.

This is the acceptance gate for the vectorized backend: every one of the
12 golden-matrix cells, run through ``simulate_fleet`` in a single batch,
must match its stored golden summary within the invariant tolerance
(REL_TOL=1e-6 relative with an ABS_TOL=1e-3 floor, integers exact).
Full-day runs — golden-marked alongside the scalar regression suite.
"""

import pytest

pytest.importorskip("numpy")

from repro.sim.fleet.validator import (  # noqa: E402
    EXACT_VARS,
    CellVerdict,
    FleetValidator,
    compare_summaries,
)

pytestmark = pytest.mark.golden


@pytest.fixture(scope="module")
def verdicts():
    # One simulate_fleet batch over all 12 cells; shared across tests so
    # the full-day matrix simulates once per session.
    validator = FleetValidator()
    cells = validator.cells()
    assert len(cells) == 12
    return validator.validate_cells(cells)


def test_all_twelve_cells_match_goldens(verdicts):
    failures = [v.describe() for v in verdicts if not v.ok]
    assert not failures, "fleet kernel diverged from goldens: " + "; ".join(failures)


def test_matrix_covers_every_controller_workload_weather(verdicts):
    names = {v.cell for v in verdicts}
    for controller in ("insure", "baseline"):
        for workload in ("seismic", "video"):
            for weather in ("sunny", "cloudy", "rainy"):
                assert any(
                    controller in n and workload in n and weather in n
                    for n in names
                ), f"missing cell {controller}/{workload}/{weather}"


def test_discrete_decision_counters_are_exact(verdicts):
    # EXACT_VARS must appear in every verdict's comparison surface: a
    # mismatch there is a control-flow divergence, not numerical drift.
    assert EXACT_VARS == {
        "power_ctrl_times", "vm_ctrl_times", "on_off_cycles", "crash_count"
    }
    for verdict in verdicts:
        for var in EXACT_VARS:
            assert var not in verdict.mismatches


def test_compare_summaries_flags_out_of_tolerance_values():
    golden = {"uptime_pct": 99.5, "crash_count": 0}
    ok = compare_summaries("cell", {"uptime_pct": 99.5000001, "crash_count": 0},
                           golden)
    assert ok.ok
    drifted = compare_summaries("cell", {"uptime_pct": 99.6, "crash_count": 0},
                                golden)
    assert not drifted.ok and "uptime_pct" in drifted.mismatches
    flipped = compare_summaries("cell", {"uptime_pct": 99.5, "crash_count": 1},
                                golden)
    assert not flipped.ok and "crash_count" in flipped.mismatches
    assert isinstance(flipped, CellVerdict)
