"""Fleet kernel unit tests: specs, routing, grouping, short lockstep."""

import dataclasses

import pytest

import repro.sim.fleet as fleet_pkg
from repro.sim.fleet import (
    NUMPY_HINT,
    FleetUnsupported,
    SiteSpec,
    numpy_available,
    require_numpy,
    simulate_fleet,
)
from repro.sim.fleet.validator import spec_for_cell

np = pytest.importorskip("numpy")


def _spec(**overrides) -> SiteSpec:
    base = dict(
        controller="insure",
        workload="video",
        seed=11,
        initial_soc=0.55,
        trace_power_w=tuple(800.0 for _ in range(120)),
        trace_dt_s=5.0,
    )
    base.update(overrides)
    return SiteSpec(**base)


class TestSiteSpec:
    def test_duration_defaults_to_trace_length(self):
        assert _spec().resolved_duration_s() == 120 * 5.0

    def test_explicit_duration_wins(self):
        assert _spec(duration_s=60.0).resolved_duration_s() == 60.0

    def test_steps_rounds_like_the_engine(self):
        # Engine.run computes steps = max(1, round(duration / dt)).
        assert _spec(duration_s=12.4).steps() == 2
        assert _spec(duration_s=1.0).steps() == 1

    def test_unknown_controller_rejected(self):
        with pytest.raises(FleetUnsupported, match="controller"):
            simulate_fleet([_spec(controller="mppt")])

    def test_unknown_workload_rejected(self):
        with pytest.raises(FleetUnsupported, match="workload"):
            simulate_fleet([_spec(workload="batch")])

    def test_trace_dt_mismatch_rejected(self):
        with pytest.raises(FleetUnsupported, match="trace_dt_s"):
            simulate_fleet([_spec(trace_dt_s=1.0)])

    def test_degenerate_bank_rejected(self):
        with pytest.raises(FleetUnsupported, match="degenerate"):
            simulate_fleet([_spec(battery_count=0)])


class TestNumpyGate:
    def test_available_in_this_environment(self):
        assert numpy_available()
        require_numpy()  # must not raise

    def test_hint_names_the_extra_and_the_fallback(self):
        assert "repro[fleet]" in NUMPY_HINT
        assert "pool|serial" in NUMPY_HINT

    def test_require_numpy_raises_the_hint(self, monkeypatch):
        monkeypatch.setattr(fleet_pkg, "numpy_available", lambda: False)
        with pytest.raises(ImportError, match="repro"):
            fleet_pkg.require_numpy()


class TestGrouping:
    def test_mixed_groups_return_in_input_order(self):
        # Two heterogeneous specs (different controllers) form two batch
        # groups; the scatter must restore input order exactly.
        a = _spec(controller="insure", seed=3)
        b = _spec(controller="baseline", seed=4)
        mixed = simulate_fleet([a, b, a])
        alone = [simulate_fleet([s])[0] for s in (a, b, a)]
        assert mixed == alone

    def test_identical_specs_are_deterministic(self):
        spec = _spec(seed=9)
        first = simulate_fleet([spec, spec])
        again = simulate_fleet([spec, spec])
        assert first == again
        assert first[0] == first[1]

    def test_distinct_seeds_get_distinct_noise_streams(self):
        # Summaries can coincide over short runs (ADC quantisation absorbs
        # small noise deltas), so assert at the RNG layer: each site's
        # sensor-noise stream is seeded from its own spec seed.
        from repro.sim.fleet.kernel import _FleetBatch

        spec = spec_for_cell("insure", "video", "sunny")
        other = dataclasses.replace(spec, seed=spec.seed + 1)
        batch = _FleetBatch([spec, other])
        batch._refill_noise()  # blocks are lazily filled on tick 0
        assert not np.array_equal(batch._blk_v[:, 0, :], batch._blk_v[:, 1, :])
        # Same seed twice must reproduce the identical stream.
        twin = _FleetBatch([spec, spec])
        twin._refill_noise()
        assert np.array_equal(twin._blk_v[:, 0, :], twin._blk_v[:, 1, :])

    def test_summary_has_the_run_summary_fields(self):
        from repro.telemetry.metrics import RunSummary

        summary = simulate_fleet([_spec()])[0]
        run = RunSummary(**summary)  # field names must match exactly
        assert run.elapsed_s == pytest.approx(120 * 5.0)


class TestLockstep:
    def test_tracks_scalar_engine_for_an_hour(self):
        # 720 ticks of the golden insure/video/sunny cell; every visible
        # state variable must match the scalar engine each tick (ints and
        # modes exactly, floats to ulp-level 1e-9).
        from repro.sim.fleet.debug import run_lockstep

        divergence = run_lockstep("insure", "video", "sunny",
                                  max_ticks=720, atol=1e-9, verbose=False)
        assert divergence is None, f"diverged: {divergence}"

    def test_baseline_controller_tracks_scalar(self):
        from repro.sim.fleet.debug import run_lockstep

        divergence = run_lockstep("baseline", "seismic", "cloudy",
                                  max_ticks=720, atol=1e-9, verbose=False)
        assert divergence is None, f"diverged: {divergence}"
