"""Trace recorder sampling and access."""

import pytest

from repro.sim.clock import Clock
from repro.sim.trace import TraceRecorder


def advance_and_record(recorder, steps, dt=1.0):
    clock = Clock(dt=dt)
    for _ in range(steps):
        recorder(clock)
        clock.advance()


class TestChannels:
    def test_records_values(self):
        value = {"x": 0.0}
        rec = TraceRecorder()
        rec.channel("x", lambda: value["x"])
        clock = Clock()
        for i in range(3):
            value["x"] = float(i)
            rec(clock)
            clock.advance()
        assert list(rec["x"]) == [0.0, 1.0, 2.0]
        assert list(rec["t"]) == [0.0, 1.0, 2.0]

    def test_duplicate_channel_rejected(self):
        rec = TraceRecorder()
        rec.channel("x", lambda: 0.0)
        with pytest.raises(ValueError):
            rec.channel("x", lambda: 1.0)

    def test_reserved_time_channel(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            rec.channel("t", lambda: 0.0)

    def test_unknown_channel_keyerror(self):
        rec = TraceRecorder()
        with pytest.raises(KeyError):
            rec["nope"]

    def test_channels_bulk_registration(self):
        rec = TraceRecorder()
        rec.channels({"a": lambda: 1.0, "b": lambda: 2.0})
        assert set(rec.names) == {"a", "b"}

    def test_contains(self):
        rec = TraceRecorder()
        rec.channel("x", lambda: 0.0)
        assert "x" in rec
        assert "t" in rec
        assert "y" not in rec


class TestDecimation:
    def test_every_parameter(self):
        rec = TraceRecorder(every=3)
        rec.channel("x", lambda: 1.0)
        advance_and_record(rec, 9)
        assert len(rec) == 3

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            TraceRecorder(every=0)

    def test_as_dict_returns_arrays(self):
        rec = TraceRecorder()
        rec.channel("x", lambda: 2.5)
        advance_and_record(rec, 4)
        data = rec.as_dict()
        assert set(data) == {"t", "x"}
        assert data["x"].shape == (4,)


class TestConversionCache:
    def test_repeated_access_returns_same_array(self):
        rec = TraceRecorder()
        rec.channel("x", lambda: 1.5)
        advance_and_record(rec, 5)
        first = rec["x"]
        assert rec["x"] is first
        assert rec.as_dict()["x"] is first

    def test_new_samples_invalidate_the_cache(self):
        value = {"x": 1.0}
        rec = TraceRecorder()
        rec.channel("x", lambda: value["x"])
        advance_and_record(rec, 3)
        stale = rec["x"]
        value["x"] = 9.0
        advance_and_record(rec, 2)
        fresh = rec["x"]
        assert fresh is not stale
        assert len(stale) == 3  # the old view is a stable snapshot
        assert list(fresh) == [1.0, 1.0, 1.0, 9.0, 9.0]

    def test_cached_array_is_a_copy_not_a_view(self):
        rec = TraceRecorder()
        rec.channel("x", lambda: 2.0)
        advance_and_record(rec, 2)
        arr = rec["x"]
        arr[0] = -1.0
        advance_and_record(rec, 1)  # invalidate; re-materialise from buffer
        assert list(rec["x"]) == [2.0, 2.0, 2.0]
