"""Deterministic named random streams."""

import numpy as np

from repro.sim.rng import RandomStreams


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("clouds")
        b = RandomStreams(7).stream("clouds")
        assert np.array_equal(a.random(10), b.random(10))

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("clouds").random(10)
        b = streams.stream("noise").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(10)
        b = RandomStreams(2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_stream_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_adding_consumer_does_not_shift_existing(self):
        # Draw from 'a' only, then in a second factory draw from 'b' first:
        # 'a' must produce identical values either way.
        lone = RandomStreams(3)
        expected = lone.stream("a").random(5)
        mixed = RandomStreams(3)
        mixed.stream("b").random(100)
        assert np.array_equal(mixed.stream("a").random(5), expected)


class TestSpawn:
    def test_spawn_namespaces(self):
        parent = RandomStreams(5)
        child1 = parent.spawn("battery")
        child2 = parent.spawn("solar")
        assert child1.seed != child2.seed

    def test_spawn_deterministic(self):
        a = RandomStreams(5).spawn("battery").stream("x").random(5)
        b = RandomStreams(5).spawn("battery").stream("x").random(5)
        assert np.array_equal(a, b)
