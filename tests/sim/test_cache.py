"""Content-addressed run cache: keying, round-trips, disable switch."""

import dataclasses

import pytest

from repro.sim.cache import (
    ENV_VAR,
    RunCache,
    cache_key,
    code_fingerprint,
    default_cache,
    summary_from_payload,
    summary_to_payload,
)
from repro.telemetry.metrics import RunSummary


def make_summary(**overrides) -> RunSummary:
    """A fully-populated summary with distinct, JSON-awkward values."""
    values = {}
    for i, field in enumerate(dataclasses.fields(RunSummary)):
        if field.type == "int" or field.name in (
            "power_ctrl_times", "on_off_cycles", "vm_ctrl_times", "crash_count",
        ):
            values[field.name] = i
        else:
            # 1/3 is not exactly representable; exercises lossless floats.
            values[field.name] = i + 1.0 / 3.0
    values.update(overrides)
    return RunSummary(**values)


class TestCacheKey:
    def test_stable(self):
        assert cache_key("k", a=1, b="x") == cache_key("k", a=1, b="x")

    def test_order_insensitive(self):
        assert cache_key("k", a=1, b=2) == cache_key("k", b=2, a=1)

    def test_sensitive_to_parts_and_kind(self):
        base = cache_key("k", seed=1)
        assert cache_key("k", seed=2) != base
        assert cache_key("other", seed=1) != base

    def test_code_fingerprint_is_cached_hex(self):
        first = code_fingerprint()
        assert first == code_fingerprint()
        assert len(first) == 64
        int(first, 16)


class TestRunCache:
    def test_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"x": 1.5})
        assert cache.get("deadbeef") == {"x": 1.5}
        assert cache.entry_count() == 1

    def test_fetch_or_compute(self, tmp_path):
        cache = RunCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"v": 7}

        payload, hit = cache.fetch_or_compute("key", compute)
        assert payload == {"v": 7} and not hit
        payload, hit = cache.fetch_or_compute("key", compute)
        assert payload == {"v": 7} and hit
        assert len(calls) == 1

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.entry_count() == 0
        assert cache.get("a") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None


class TestEnvironmentSwitch:
    @pytest.mark.parametrize("value", ["off", "0", "none", "disabled", "OFF"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        cache = default_cache()
        assert not cache.enabled
        cache.put("k", {"x": 1})  # no-op, must not raise
        assert cache.get("k") is None
        assert cache.clear() == 0
        assert cache.entry_count() == 0

    def test_directory_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "cachedir"))
        cache = default_cache()
        assert cache.enabled
        cache.put("k", [1, 2, 3])
        assert default_cache().get("k") == [1, 2, 3]


class TestSummarySerialisation:
    def test_lossless_round_trip(self):
        summary = make_summary()
        restored = summary_from_payload(summary_to_payload(summary))
        assert restored == summary

    def test_via_disk(self, tmp_path):
        cache = RunCache(tmp_path)
        summary = make_summary(uptime_fraction=0.1 + 0.2)  # 0.30000000000000004
        cache.put("s", summary_to_payload(summary))
        restored = summary_from_payload(cache.get("s"))
        assert restored == summary
        assert restored.uptime_fraction == summary.uptime_fraction
