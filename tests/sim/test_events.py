"""Event log queries."""

from repro.sim.events import EventLog


def make_log():
    log = EventLog()
    log.emit(0.0, "relay.switch", "battery-1", bus="charge")
    log.emit(5.0, "relay.switch", "battery-2", bus="load")
    log.emit(8.0, "relay.fault", "battery-2")
    log.emit(10.0, "vm.ctrl", "allocator", op="add")
    return log


class TestQueries:
    def test_count_exact_kind(self):
        assert make_log().count("vm.ctrl") == 1

    def test_prefix_matching(self):
        assert make_log().count("relay") == 3

    def test_prefix_does_not_match_partial_word(self):
        log = EventLog()
        log.emit(0.0, "relays", "x")
        assert log.count("relay") == 0

    def test_between_half_open(self):
        log = make_log()
        assert len(log.between(5.0, 10.0)) == 2

    def test_last(self):
        log = make_log()
        assert log.last("relay").t == 8.0
        assert log.last("nothing") is None

    def test_len_and_iter(self):
        log = make_log()
        assert len(log) == 4
        assert len(list(log)) == 4

    def test_emit_returns_event_with_payload(self):
        log = EventLog()
        event = log.emit(1.5, "x", "src", value=42)
        assert event.data["value"] == 42
        assert event.t == 1.5
