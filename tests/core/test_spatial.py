"""Spatial power management (Figures 9-10, Eq. 1)."""

import pytest

from repro.core.sensing import BatterySense
from repro.core.spatial import SpatialParams, SpatialPolicy

DAY = 86400.0


def sense(name, soc=0.5, discharge_ah=0.0):
    return BatterySense(name=name, soc_estimate=soc, discharge_ah=discharge_ah)


@pytest.fixture
def policy():
    return SpatialPolicy(SpatialParams(elastic=False))


class TestEq1:
    def test_threshold_prorated(self, policy):
        p = policy.params
        expected = p.lifetime_ah / p.design_life_days
        assert policy.discharge_threshold(DAY) == pytest.approx(expected)

    def test_carryover_increases_threshold(self, policy):
        base = policy.discharge_threshold(DAY)
        policy.unused_budget_ah = 2.0
        assert policy.discharge_threshold(DAY) == pytest.approx(base + 2.0)

    def test_negative_time_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.discharge_threshold(-1.0)

    def test_roll_budget_carries_unused(self, policy):
        daily = policy.daily_budget_ah()
        policy.roll_budget(spent_ah_per_unit=daily / 2)
        assert policy.unused_budget_ah == pytest.approx(daily / 2)

    def test_roll_budget_never_negative(self, policy):
        policy.roll_budget(spent_ah_per_unit=policy.daily_budget_ah() * 3)
        assert policy.unused_budget_ah == 0.0


class TestBatchSizing:
    def test_n_equals_budget_over_ppc(self, policy):
        ppc = policy.params.peak_charge_power_w
        assert policy.batch_size(2.5 * ppc) == 2
        assert policy.batch_size(1.2 * ppc) == 1

    def test_scarce_budget_still_one(self, policy):
        assert policy.batch_size(100.0) == 1

    def test_negligible_budget_zero(self, policy):
        assert policy.batch_size(10.0) == 0


class TestScreening:
    def test_underused_selected(self, policy):
        offline = [sense("b1", soc=0.2, discharge_ah=1.0)]
        decision = policy.evaluate(offline, [], surplus_w=300.0,
                                   elapsed_seconds=DAY)
        assert decision.to_charging == ["b1"]

    def test_overused_held_offline(self, policy):
        offline = [sense("b1", soc=0.2, discharge_ah=100.0)]
        decision = policy.evaluate(offline, [], surplus_w=300.0,
                                   elapsed_seconds=DAY)
        assert decision.to_charging == []
        assert decision.hold_offline == ["b1"]

    def test_batch_size_limits_selection(self, policy):
        offline = [sense(f"b{i}", soc=0.2) for i in range(3)]
        decision = policy.evaluate(offline, [], surplus_w=300.0,
                                   elapsed_seconds=DAY)
        assert len(decision.to_charging) == 1

    def test_lowest_usage_prioritised(self, policy):
        offline = [
            sense("worn", soc=0.2, discharge_ah=5.0),
            sense("fresh", soc=0.3, discharge_ah=1.0),
        ]
        decision = policy.evaluate(offline, [], surplus_w=300.0,
                                   elapsed_seconds=30 * DAY)
        assert decision.to_charging[0] == "fresh"

    def test_charged_units_to_standby(self, policy):
        charging = [sense("b1", soc=0.95), sense("b2", soc=0.5)]
        decision = policy.evaluate([], charging, surplus_w=300.0,
                                   elapsed_seconds=DAY)
        assert decision.to_standby == ["b1"]

    def test_existing_charging_counts_against_batch(self, policy):
        offline = [sense("b2", soc=0.2)]
        charging = [sense("b1", soc=0.5)]
        decision = policy.evaluate(offline, charging, surplus_w=300.0,
                                   elapsed_seconds=DAY)
        assert decision.to_charging == []  # batch of 1 already charging

    def test_no_surplus_no_charging(self, policy):
        offline = [sense("b1", soc=0.2)]
        decision = policy.evaluate(offline, [], surplus_w=5.0,
                                   elapsed_seconds=DAY)
        assert decision.to_charging == []


class TestElastic:
    def test_relaxes_under_demand_pressure(self):
        policy = SpatialPolicy(SpatialParams(elastic=True))
        offline = [sense("b1", soc=0.2, discharge_ah=policy.daily_budget_ah() + 1.0)]
        starved = policy.evaluate(offline, [], surplus_w=300.0,
                                  elapsed_seconds=DAY, demand_pressure=True)
        assert starved.to_charging == ["b1"]

    def test_rigid_never_relaxes(self, policy):
        offline = [sense("b1", soc=0.2, discharge_ah=100.0)]
        decision = policy.evaluate(offline, [], surplus_w=300.0,
                                   elapsed_seconds=DAY, demand_pressure=True)
        assert decision.to_charging == []

    def test_elastic_bonus_reset_on_roll(self):
        policy = SpatialPolicy(SpatialParams(elastic=True))
        offline = [sense("b1", soc=0.2, discharge_ah=policy.daily_budget_ah() + 1.0)]
        policy.evaluate(offline, [], 300.0, DAY, demand_pressure=True)
        relaxed = policy.discharge_threshold(DAY)
        # Roll with the whole day's budget spent: no carryover, and the
        # elastic bonus must be cleared.
        policy.roll_budget(policy.daily_budget_ah())
        assert policy.discharge_threshold(DAY) < relaxed
