"""Controller behaviour on short constant-source runs."""

import pytest

from repro.battery.unit import BatteryMode
from repro.core.system import build_system
from repro.solar.field import ConstantSource
from repro.workloads import SeismicAnalysis, VideoSurveillance

HOUR = 3600.0


def constant_system(controller, power_w, workload=None, initial_soc=0.9, **kwargs):
    return build_system(
        None,
        workload or VideoSurveillance(),
        controller=controller,
        source=ConstantSource("solar", power_w),
        initial_soc=initial_soc,
        seed=0,
        **kwargs,
    )


class TestInsure:
    def test_serves_with_ample_solar(self):
        system = constant_system("insure", 1500.0)
        summary = system.run(2 * HOUR)
        assert summary.uptime_fraction > 0.7
        assert summary.crash_count == 0

    def test_stays_dark_with_no_power(self):
        system = constant_system("insure", 0.0, initial_soc=0.15)
        summary = system.run(1 * HOUR)
        assert summary.uptime_fraction == 0.0

    def test_keeps_online_reserve(self):
        system = constant_system("insure", 1200.0, initial_soc=0.6)
        system.run(1 * HOUR)
        online = system.bank.in_mode(BatteryMode.STANDBY, BatteryMode.DISCHARGING)
        assert len(online) >= 1

    def test_charges_surplus_into_buffer(self):
        system = constant_system("insure", 1500.0, initial_soc=0.4)
        start = system.bank.stored_energy_wh
        system.run(3 * HOUR)
        assert system.bank.stored_energy_wh > start

    def test_mode_transitions_validated(self):
        system = constant_system("insure", 900.0, initial_soc=0.5)
        system.run(2 * HOUR)
        # Every recorded transition passed the FSM's validation.
        assert all(t.paper_numbers is not None for t in
                   system.controller.mode_transitions)

    def test_duty_workload_uses_dvfs(self):
        system = constant_system(
            "insure", 700.0, workload=SeismicAnalysis(), initial_soc=0.9
        )
        system.run(3 * HOUR)
        # The controller's duty should remain within actuation bounds.
        assert 0.5 <= system.controller.duty <= 1.0


class TestBaseline:
    def test_unified_bank_moves_together(self):
        system = constant_system("baseline", 800.0, initial_soc=0.5)
        system.run(2 * HOUR)
        modes = {unit.mode for unit in system.bank}
        # Unified buffer: at most online-group modes together, never a
        # mixed charge/discharge split.
        assert not (
            BatteryMode.CHARGING in modes
            and (BatteryMode.DISCHARGING in modes or BatteryMode.STANDBY in modes)
        )

    def test_protection_trip_pulls_whole_bank(self):
        system = constant_system(
            "baseline", 100.0, workload=SeismicAnalysis(), initial_soc=0.5
        )
        system.run(4 * HOUR)
        if system.controller.checkpoint_stops:
            assert not system.controller.buffer_online or all(
                unit.mode in (BatteryMode.STANDBY, BatteryMode.DISCHARGING)
                for unit in system.bank
            )

    def test_recharges_to_capacity_goal_before_return(self):
        system = constant_system("baseline", 900.0, initial_soc=0.3)
        system.run(1 * HOUR)
        if not system.controller.buffer_online:
            assert all(unit.mode is BatteryMode.CHARGING for unit in system.bank)


class TestBuildSystem:
    def test_unknown_controller(self):
        with pytest.raises(ValueError):
            constant_system("magic", 500.0)

    def test_requires_trace_or_source(self):
        with pytest.raises(ValueError):
            build_system(None, VideoSurveillance())

    def test_initial_socs_length_checked(self):
        with pytest.raises(ValueError):
            build_system(
                None,
                VideoSurveillance(),
                source=ConstantSource("solar", 100.0),
                initial_socs=[0.5],
            )

    def test_run_requires_duration_for_source(self):
        system = constant_system("insure", 500.0)
        with pytest.raises(ValueError):
            system.run()
