"""Sliced stepping (begin_run/advance/finalize) vs one-shot run().

The serve daemon's entire determinism story rests on this equivalence:
chopping a run into arbitrary tick slices must be bit-identical to
running it in one call, because the engine kernel takes the same step
sequence either way.
"""

from __future__ import annotations

import pytest

from repro.core.system import build_system
from repro.sim.engine import SimulationError
from repro.solar.traces import make_day_trace
from repro.workloads import SeismicAnalysis, VideoSurveillance


def make_system(workload, controller="insure", seed=5):
    trace = make_day_trace("cloudy", seed=seed, dt_seconds=5.0)
    return build_system(trace, workload, controller=controller, seed=seed)


DURATION_S = 6 * 3600.0  # 4320 ticks at dt=5


@pytest.mark.parametrize("slice_ticks", [1, 7, 240, 4320, 10_000])
def test_sliced_run_is_bit_identical(slice_ticks):
    oneshot = make_system(SeismicAnalysis())
    oneshot.run(DURATION_S)
    want = vars(oneshot.metrics.summary())

    sliced = make_system(SeismicAnalysis())
    total = sliced.begin_run(DURATION_S)
    assert total == 4320
    while sliced.remaining_steps > 0:
        executed = sliced.advance(slice_ticks)
        assert 0 < executed <= min(slice_ticks, total)
    got = vars(sliced.finalize())
    assert got == want


def test_sliced_run_baseline_controller():
    oneshot = make_system(VideoSurveillance(), controller="baseline")
    oneshot.run(DURATION_S)
    want = vars(oneshot.metrics.summary())

    sliced = make_system(VideoSurveillance(), controller="baseline")
    sliced.begin_run(DURATION_S)
    while sliced.remaining_steps > 0:
        sliced.advance(333)
    assert vars(sliced.finalize()) == want


def test_advance_accounting():
    system = make_system(SeismicAnalysis())
    total = system.begin_run(DURATION_S)
    assert system.remaining_steps == total
    assert system.advance(100) == 100
    assert system.remaining_steps == total - 100
    assert system.advance(0) == 0
    # Over-asking clamps to the remaining budget.
    assert system.advance(10 ** 9) == total - 100
    assert system.remaining_steps == 0
    assert system.advance(100) == 0


def test_advance_before_begin_raises():
    system = make_system(SeismicAnalysis())
    with pytest.raises(SimulationError):
        system.engine.advance(10)


def test_finalize_produces_summary_once_hooks_fired():
    system = make_system(SeismicAnalysis())
    system.begin_run(1800.0)
    while system.remaining_steps > 0:
        system.advance(97)
    summary = system.finalize()
    assert summary.availability_pct >= 0.0
