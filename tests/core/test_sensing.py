"""Battery telemetry: sensing chain and state estimation."""

import pytest

from repro.battery.bank import BatteryBank
from repro.core.sensing import BatteryTelemetry
from repro.sim.rng import RandomStreams


@pytest.fixture
def setup():
    bank = BatteryBank.build(count=3, soc=0.8)
    telemetry = BatteryTelemetry(bank, streams=RandomStreams(0))
    return bank, telemetry


class TestSensing:
    def test_voltage_read_through_registers(self, setup):
        bank, telemetry = setup
        telemetry.plc.step_clock = None  # not used; scan manually
        from repro.sim.clock import Clock

        telemetry.plc.step(Clock(dt=1.0))
        senses = telemetry.refresh(1.0)
        for unit in bank:
            assert senses[unit.name].voltage == pytest.approx(
                unit.terminal_voltage, abs=0.2
            )

    def test_current_sensed_after_discharge(self, setup):
        bank, telemetry = setup
        from repro.sim.clock import Clock

        bank[0].apply_discharge(10.0, 5.0)
        telemetry.plc.step(Clock(dt=1.0))
        senses = telemetry.refresh(5.0)
        assert senses["battery-1"].current == pytest.approx(10.0, abs=0.3)

    def test_unknown_battery_raises(self, setup):
        _, telemetry = setup
        with pytest.raises(KeyError):
            telemetry.sense("battery-9")


class TestEstimation:
    def test_coulomb_counting_tracks_soc(self, setup):
        bank, telemetry = setup
        from repro.sim.clock import Clock

        clock = Clock(dt=5.0)
        for _ in range(720):  # one hour at 10 A
            bank[0].apply_discharge(10.0, 5.0)
            bank[1].idle(5.0)
            bank[2].idle(5.0)
            telemetry.plc.step(clock)
            telemetry.refresh(5.0)
            clock.advance()
        estimate = telemetry.sense("battery-1").soc_estimate
        assert estimate == pytest.approx(bank[0].soc, abs=0.05)

    def test_discharge_ah_accumulates(self, setup):
        bank, telemetry = setup
        from repro.sim.clock import Clock

        clock = Clock(dt=5.0)
        for _ in range(720):
            bank[0].apply_discharge(10.0, 5.0)
            telemetry.plc.step(clock)
            telemetry.refresh(5.0)
            clock.advance()
        assert telemetry.sense("battery-1").discharge_ah == pytest.approx(10.0, rel=0.05)

    def test_rest_anchoring_corrects_drift(self, setup):
        bank, telemetry = setup
        from repro.sim.clock import Clock

        # Poison the estimate, then rest: OCV anchoring pulls it back.
        telemetry.senses["battery-1"].soc_estimate = 0.2
        clock = Clock(dt=5.0)
        for _ in range(2000):
            bank[0].idle(5.0)
            telemetry.plc.step(clock)
            telemetry.refresh(5.0)
            clock.advance()
        estimate = telemetry.sense("battery-1").soc_estimate
        assert estimate == pytest.approx(0.8, abs=0.1)

    def test_aggregate_helpers(self, setup):
        bank, telemetry = setup
        from repro.sim.clock import Clock

        bank[0].apply_discharge(8.0, 5.0)
        bank[1].apply_discharge(6.0, 5.0)
        telemetry.plc.step(Clock(dt=1.0))
        telemetry.refresh(5.0)
        names = ["battery-1", "battery-2"]
        assert telemetry.total_discharge_current(names) == pytest.approx(14.0, abs=0.5)
        assert telemetry.min_soc(names) <= 0.8
        assert telemetry.min_soc([]) == 0.0

    def test_refresh_validates_dt(self, setup):
        _, telemetry = setup
        with pytest.raises(ValueError):
            telemetry.refresh(0.0)
