"""PLC-resident battery switch program: interlocks and request flow."""

import pytest

from repro.battery.bank import BatteryBank
from repro.core.plc_program import REQUEST_BASE_ADDRESS, BatterySwitchProgram
from repro.core.sensing import BatteryTelemetry
from repro.core.system import build_system
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock
from repro.sim.rng import RandomStreams
from repro.solar.field import ConstantSource
from repro.workloads import VideoSurveillance

HOUR = 3600.0


@pytest.fixture
def rig():
    bank = BatteryBank.build(count=3, soc=0.8)
    switchnet = SwitchNetwork([u.name for u in bank])
    telemetry = BatteryTelemetry(bank, streams=RandomStreams(0))
    program = BatterySwitchProgram(switchnet, [u.name for u in bank])
    telemetry.plc.set_program(program)
    return bank, switchnet, telemetry, program


def scan(telemetry, times=1, dt=1.0):
    clock = Clock(dt=dt)
    for _ in range(times):
        telemetry.plc.step(clock)
        clock.advance()


class TestRequestFlow:
    def test_request_applied_on_scan(self, rig):
        bank, switchnet, telemetry, program = rig
        program.request(telemetry.plc, "battery-1", "charge")
        scan(telemetry)
        assert switchnet.state_of("battery-1") == "charging"

    def test_requested_bus_readback(self, rig):
        _, _, telemetry, program = rig
        program.request(telemetry.plc, "battery-2", "load")
        assert program.requested_bus(telemetry.plc, "battery-2") == "load"

    def test_idempotent_requests_no_extra_actuations(self, rig):
        _, switchnet, telemetry, program = rig
        program.request(telemetry.plc, "battery-1", "charge")
        scan(telemetry, times=5)
        assert switchnet.switch_operations == 1

    def test_unknown_battery_or_bus(self, rig):
        _, _, telemetry, program = rig
        with pytest.raises(ValueError):
            program.request(telemetry.plc, "battery-1", "sideways")
        with pytest.raises(KeyError):
            program.request(telemetry.plc, "battery-9", "load")

    def test_register_layout(self, rig):
        _, _, telemetry, program = rig
        program.request(telemetry.plc, "battery-3", "load")
        assert telemetry.plc.slave.get_holding(REQUEST_BASE_ADDRESS + 2) == 2


class TestBreakBeforeMake:
    def test_charge_to_load_passes_through_offline(self, rig):
        _, switchnet, telemetry, program = rig
        program.request(telemetry.plc, "battery-1", "charge")
        scan(telemetry)
        program.request(telemetry.plc, "battery-1", "load")
        scan(telemetry)
        assert switchnet.state_of("battery-1") == "offline"  # first half
        scan(telemetry)
        assert switchnet.state_of("battery-1") == "load"     # second half

    def test_offline_to_bus_is_single_step(self, rig):
        _, switchnet, telemetry, program = rig
        program.request(telemetry.plc, "battery-1", "load")
        scan(telemetry)
        assert switchnet.state_of("battery-1") == "load"


class TestLowVoltageLockout:
    def test_empty_cabinet_refused_load_bus(self, rig):
        bank, switchnet, telemetry, program = rig
        bank[0].kibam.set_soc(0.01)  # OCV well below the LVD
        program.request(telemetry.plc, "battery-1", "load")
        scan(telemetry, times=3)
        assert switchnet.state_of("battery-1") == "offline"
        assert program.lockout_refusals >= 1

    def test_request_honoured_after_recovery(self, rig):
        bank, switchnet, telemetry, program = rig
        bank[0].kibam.set_soc(0.01)
        program.request(telemetry.plc, "battery-1", "load")
        scan(telemetry, times=2)
        bank[0].kibam.set_soc(0.8)  # recovered (e.g. recharged elsewhere)
        scan(telemetry, times=2)
        assert switchnet.state_of("battery-1") == "load"

    def test_charge_bus_never_locked_out(self, rig):
        bank, switchnet, telemetry, program = rig
        bank[0].kibam.set_soc(0.01)
        program.request(telemetry.plc, "battery-1", "charge")
        scan(telemetry)
        assert switchnet.state_of("battery-1") == "charging"


class TestFullSystemWithInterlocks:
    def test_interlocked_system_still_serves(self):
        system = build_system(
            None, VideoSurveillance(), controller="insure",
            source=ConstantSource("solar", 1200.0), initial_soc=0.6,
            seed=0, plc_interlocks=True,
        )
        summary = system.run(4 * HOUR)
        assert summary.uptime_fraction > 0.4
        assert summary.crash_count < 5

    def test_results_comparable_to_direct_actuation(self):
        def run(interlocks):
            system = build_system(
                None, VideoSurveillance(), controller="insure",
                source=ConstantSource("solar", 1000.0), initial_soc=0.6,
                seed=0, plc_interlocks=interlocks,
            )
            return system.run(4 * HOUR)

        direct = run(False)
        plc = run(True)
        # One extra scan of latency per mode change must not change the
        # day's outcome materially.
        assert plc.processed_gb == pytest.approx(direct.processed_gb, rel=0.15)
        assert plc.uptime_fraction == pytest.approx(direct.uptime_fraction,
                                                    abs=0.15)
