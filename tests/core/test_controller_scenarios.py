"""Targeted controller scenarios: each InSURE mechanism in isolation."""


from repro.battery.unit import BatteryMode
from repro.core.energy_manager import InsureParams
from repro.core.system import build_system
from repro.core.temporal import TemporalParams
from repro.solar.field import ConstantSource
from repro.workloads import SeismicAnalysis, VideoSurveillance

HOUR = 3600.0


def system_with(power_w, workload=None, initial_socs=None, initial_soc=0.9,
                params=None, controller="insure"):
    return build_system(
        None,
        workload or VideoSurveillance(),
        controller=controller,
        source=ConstantSource("solar", power_w),
        initial_soc=initial_soc,
        initial_socs=initial_socs,
        insure_params=params,
        seed=0,
    )


class SmallStream(VideoSurveillance):
    """A two-VM stream: leaves plenty of solar surplus for charging."""

    preferred_vms = 2


class TestChargeToStandbyPromotion:
    def test_charged_cabinet_comes_online(self):
        """A cabinet the SPM charges past 90 % moves to standby (Fig. 8
        transitions 2/5)."""
        system = system_with(1200.0, workload=SmallStream(),
                             initial_socs=[0.95, 0.95, 0.5])
        system.run(5 * HOUR)
        promoted = [
            e for e in system.events.of_kind("buffer.mode")
            if e.source == "battery-3" and e.data.get("to") == "standby"
            and e.data.get("reason") == "capacity-goal"
        ]
        assert promoted
        assert system.bank.by_name("battery-3").soc > 0.8


class TestSocFloorCheckpoint:
    def test_floor_triggers_graceful_stop_not_crash(self):
        """Draining the buffer with no solar must end in a checkpoint
        stop (transition 4), not an uncontrolled power loss."""
        system = system_with(
            0.0, initial_soc=0.45,
            params=InsureParams(temporal=TemporalParams(soc_floor=0.30)),
        )
        summary = system.run(4 * HOUR)
        assert system.events.count("load.checkpoint_stop") >= 1
        assert summary.crash_count <= 1
        # The exhausted cabinets were switched out for protection.
        offline = system.bank.in_mode(BatteryMode.OFFLINE, BatteryMode.CHARGING)
        assert len(offline) >= 1


class TestDutyCycling:
    def test_batch_load_gets_duty_capped_when_solar_collapses(self):
        """A batch job sized during good sun keeps its VM count when the
        sun collapses; the TPM must ride the gap on DVFS duty cycling
        (Fig. 11, batch path) before resorting to checkpoints."""
        import numpy as np

        from repro.solar.field import trace_from_array

        dt = 5.0
        good = np.full(int(1.0 * HOUR / dt), 1500.0)
        collapse = np.full(int(1.5 * HOUR / dt), 250.0)
        trace = trace_from_array(np.concatenate([good, collapse]), dt)
        system = build_system(trace, SeismicAnalysis(), controller="insure",
                              initial_soc=0.95, seed=0)
        system.run()
        assert system.events.count("power.duty") >= 1
        duties = [e.data["duty"] for e in system.events.of_kind("power.duty")]
        assert min(duties) < 1.0

    def test_ample_solar_keeps_full_duty(self):
        system = system_with(2000.0, workload=SeismicAnalysis(), initial_soc=0.95)
        system.run(2 * HOUR)
        assert system.controller.duty == 1.0


class TestBatchReconfiguration:
    def test_batch_vm_count_grows_under_abundance(self):
        """When duty sits at 1.0 and power is plentiful, the controller
        reconfigures the batch job to more VM instances (rarely)."""
        system = system_with(2000.0, workload=SeismicAnalysis(), initial_soc=0.95)
        system.run(3 * HOUR)
        assert system.controller.vm_target >= 4


class TestSpatialChargingSelection:
    def test_scarce_surplus_charges_one_cabinet_at_a_time(self):
        """Figure 10: with surplus below one cabinet's peak charging
        power, at most one cabinet occupies the charge bus."""
        system = system_with(500.0, initial_socs=[0.4, 0.4, 0.4])
        max_simultaneous = 0

        def watch(clock):
            nonlocal max_simultaneous
            charging = len(system.bank.in_mode(BatteryMode.CHARGING))
            max_simultaneous = max(max_simultaneous, charging)

        system.engine.observe(watch)
        system.run(3 * HOUR)
        # 500 W minus the running load leaves < 1 P_PC of surplus.
        assert max_simultaneous <= 2

    def test_abundant_surplus_charges_several(self):
        system = system_with(1600.0, workload=VideoSurveillance(),
                             initial_socs=[0.3, 0.3, 0.3])
        max_simultaneous = 0

        def watch(clock):
            nonlocal max_simultaneous
            charging = len(system.bank.in_mode(BatteryMode.CHARGING))
            max_simultaneous = max(max_simultaneous, charging)

        system.engine.observe(watch)
        system.run(2 * HOUR)
        assert max_simultaneous >= 2


class TestWearScreening:
    def test_overused_cabinet_rested(self):
        """A cabinet far past its Eq. 1 allowance stays offline while
        fresh cabinets are selected."""
        system = system_with(900.0, initial_socs=[0.4, 0.4, 0.4])
        worn = system.bank.by_name("battery-2")
        worn.wear.discharge_ah = 100.0
        system.telemetry.senses["battery-2"].discharge_ah = 100.0
        system.run(2 * HOUR)
        fresh_charge = (
            system.bank.by_name("battery-1").wear.charge_ah
            + system.bank.by_name("battery-3").wear.charge_ah
        )
        assert worn.wear.charge_ah <= fresh_charge
