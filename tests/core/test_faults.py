"""The supported fault-injection hook itself.

``build_system(..., faults=[...])`` must apply each fault to the wired
system — the same objects the controller and the physics see — so these
tests verify the injection mechanics directly (the behavioural
consequences are covered by ``tests/integration/test_robustness.py``).
"""

import pytest

from repro.core.faults import SelfDischargeFault, SensorGainFault, StuckRelayFault
from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.workloads import VideoSurveillance

HOUR = 3600.0


def build(**kwargs):
    trace = make_day_trace("sunny", seed=21, target_mean_w=900.0)
    return build_system(trace, VideoSurveillance(), seed=21,
                        initial_soc=0.6, **kwargs)


class TestSensorGainFault:
    def test_applies_to_every_transducer(self):
        system = build(faults=[SensorGainFault(0.04)])
        sensors = system.telemetry._sensors
        assert len(sensors) == 2 * len(system.bank)
        assert all(s.gain == pytest.approx(1.04) for s in sensors)

    def test_controller_sees_the_same_faulted_chain(self):
        # The hook must calibrate the chain the controller actually reads,
        # not a replacement object.
        system = build(faults=[SensorGainFault(0.04)])
        assert system.controller.telemetry is system.telemetry

    def test_biases_sensed_voltage(self):
        healthy = build()
        faulted = build(faults=[SensorGainFault(0.05)])
        healthy.run(0.5 * HOUR)
        faulted.run(0.5 * HOUR)
        name = healthy.bank[0].name
        v_healthy = healthy.telemetry.sense(name).voltage
        v_faulted = faulted.telemetry.sense(name).voltage
        assert v_faulted > v_healthy * 1.02

    def test_preserves_seeded_noise_streams(self):
        # Same seed, same fault: the sensed trajectory stays deterministic.
        a = build(faults=[SensorGainFault(0.03)])
        b = build(faults=[SensorGainFault(0.03)])
        a.run(0.5 * HOUR)
        b.run(0.5 * HOUR)
        for unit in a.bank:
            assert (a.telemetry.sense(unit.name).voltage
                    == b.telemetry.sense(unit.name).voltage)


class TestStuckRelayFault:
    def test_freezes_pair_in_requested_position(self):
        system = build(faults=[StuckRelayFault("battery-2", "load")])
        pair = system.switchnet.pairs["battery-2"]
        assert pair.state == "load"
        assert pair.charge.stuck and pair.discharge.stuck

    def test_later_commands_are_ignored(self):
        system = build(faults=[StuckRelayFault("battery-2", "load")])
        system.switchnet.attach("battery-2", "charge")
        assert system.switchnet.state_of("battery-2") == "load"

    def test_unknown_bus_rejected(self):
        with pytest.raises(ValueError, match="unknown bus"):
            build(faults=[StuckRelayFault("battery-2", "sideways")])

    def test_unknown_battery_rejected(self):
        with pytest.raises(KeyError):
            build(faults=[StuckRelayFault("battery-9", "load")])


class TestSelfDischargeFault:
    def test_scales_leakage_of_one_unit(self):
        system = build(faults=[SelfDischargeFault("battery-3", 8.0)])
        healthy_rate = system.bank.by_name("battery-1").params.self_discharge_per_day
        faulted_rate = system.bank.by_name("battery-3").params.self_discharge_per_day
        assert faulted_rate == pytest.approx(8.0 * healthy_rate)

    def test_rejects_sub_unity_multiplier(self):
        with pytest.raises(ValueError):
            build(faults=[SelfDischargeFault("battery-1", 0.5)])


class TestComposition:
    def test_multiple_faults_apply_in_order(self):
        system = build(faults=[
            SensorGainFault(0.02),
            StuckRelayFault("battery-1", "offline"),
        ])
        assert system.telemetry._sensors[0].gain == pytest.approx(1.02)
        assert system.switchnet.pairs["battery-1"].state == "offline"

    def test_faulted_build_passes_invariants(self):
        system = build(faults=[StuckRelayFault("battery-2", "load"),
                               SensorGainFault(0.03)],
                       invariants=True, invariant_stride=1)
        system.run(2 * HOUR)
        system.checker.assert_clean()
