"""Operating-mode FSM (Figures 7-8)."""

import pytest

from repro.battery.unit import BatteryMode
from repro.core.modes import ModeTransition, bus_for_mode, legal_transitions


class TestLegalTransitions:
    def test_paper_cycle(self):
        """Offline -> Charging -> Standby -> Discharging -> Offline."""
        assert BatteryMode.CHARGING in legal_transitions(BatteryMode.OFFLINE)
        assert BatteryMode.STANDBY in legal_transitions(BatteryMode.CHARGING)
        assert BatteryMode.DISCHARGING in legal_transitions(BatteryMode.STANDBY)
        assert BatteryMode.OFFLINE in legal_transitions(BatteryMode.DISCHARGING)

    def test_transition_7_back_to_standby(self):
        assert BatteryMode.STANDBY in legal_transitions(BatteryMode.DISCHARGING)

    def test_offline_cannot_jump_to_discharging(self):
        assert BatteryMode.DISCHARGING not in legal_transitions(BatteryMode.OFFLINE)

    def test_charging_cannot_jump_to_discharging(self):
        assert BatteryMode.DISCHARGING not in legal_transitions(BatteryMode.CHARGING)


class TestModeTransition:
    def test_valid_transition_constructs(self):
        change = ModeTransition("b1", BatteryMode.OFFLINE, BatteryMode.CHARGING, "spm")
        assert change.paper_numbers == (1,)

    def test_illegal_transition_raises(self):
        with pytest.raises(ValueError):
            ModeTransition("b1", BatteryMode.OFFLINE, BatteryMode.DISCHARGING, "bad")

    def test_paper_numbers_for_capacity_goal(self):
        change = ModeTransition("b1", BatteryMode.CHARGING, BatteryMode.STANDBY, "goal")
        assert set(change.paper_numbers) == {2, 5}

    def test_soc_floor_is_transition_4(self):
        change = ModeTransition("b1", BatteryMode.DISCHARGING, BatteryMode.OFFLINE, "soc")
        assert change.paper_numbers == (4,)


class TestBusMapping:
    def test_offline_bus(self):
        assert bus_for_mode(BatteryMode.OFFLINE) == "offline"

    def test_charging_bus(self):
        assert bus_for_mode(BatteryMode.CHARGING) == "charge"

    def test_online_modes_on_load_bus(self):
        assert bus_for_mode(BatteryMode.STANDBY) == "load"
        assert bus_for_mode(BatteryMode.DISCHARGING) == "load"
