"""Temporal power management (Figure 11)."""

import pytest

from repro.core.temporal import (
    TemporalAction,
    TemporalParams,
    TemporalPolicy,
)


@pytest.fixture
def policy():
    return TemporalPolicy(TemporalParams(), capacity_ah=35.0)


class TestCap:
    def test_cap_scales_with_online_units(self, policy):
        assert policy.cap_amps(2) == pytest.approx(2 * 0.30 * 35.0)
        assert policy.cap_amps(0) == 0.0

    def test_over_current_caps(self, policy):
        decision = policy.evaluate(
            total_discharge_a=30.0, online_units=2, min_online_soc=0.8,
            battery_needed=True,
        )
        assert decision.action is TemporalAction.CAP

    def test_moderate_current_holds(self, policy):
        cap = policy.cap_amps(2)
        decision = policy.evaluate(
            total_discharge_a=cap * 0.8, online_units=2, min_online_soc=0.8,
            battery_needed=True,
        )
        assert decision.action is TemporalAction.HOLD

    def test_low_current_relaxes(self, policy):
        cap = policy.cap_amps(2)
        decision = policy.evaluate(
            total_discharge_a=cap * 0.3, online_units=2, min_online_soc=0.8,
            battery_needed=True,
        )
        assert decision.action is TemporalAction.RELAX

    def test_ample_solar_always_relaxes(self, policy):
        decision = policy.evaluate(
            total_discharge_a=0.0, online_units=2, min_online_soc=0.8,
            battery_needed=False,
        )
        assert decision.action is TemporalAction.RELAX


class TestSocFloor:
    def test_floor_triggers_checkpoint(self, policy):
        decision = policy.evaluate(
            total_discharge_a=5.0, online_units=2, min_online_soc=0.2,
            battery_needed=True,
        )
        assert decision.action is TemporalAction.CHECKPOINT

    def test_floor_ignored_when_solar_ample(self, policy):
        decision = policy.evaluate(
            total_discharge_a=0.0, online_units=2, min_online_soc=0.2,
            battery_needed=False,
        )
        assert decision.action is not TemporalAction.CHECKPOINT

    def test_no_online_units_no_checkpoint(self, policy):
        decision = policy.evaluate(
            total_discharge_a=0.0, online_units=0, min_online_soc=0.0,
            battery_needed=True,
        )
        assert decision.action is not TemporalAction.CHECKPOINT


class TestActuation:
    def test_duty_steps_down_and_floors(self, policy):
        duty = 1.0
        for _ in range(10):
            duty = policy.next_duty(duty, TemporalAction.CAP)
        assert duty == policy.params.duty_min

    def test_duty_steps_up_and_caps(self, policy):
        duty = policy.next_duty(0.95, TemporalAction.RELAX)
        assert duty == 1.0

    def test_duty_hold_unchanged(self, policy):
        assert policy.next_duty(0.7, TemporalAction.HOLD) == 0.7

    def test_vm_target_scales_down(self, policy):
        assert policy.next_vm_target(6, 8, TemporalAction.CAP) == 4

    def test_vm_target_never_negative(self, policy):
        assert policy.next_vm_target(1, 8, TemporalAction.CAP) == 0

    def test_vm_target_capped_at_preferred(self, policy):
        assert policy.next_vm_target(8, 8, TemporalAction.RELAX) == 8

    def test_negative_current_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.evaluate(-1.0, 2, 0.5, True)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TemporalPolicy(capacity_ah=0.0)
