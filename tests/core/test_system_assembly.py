"""build_system wiring: every knob lands where it should."""

import pytest

from repro.cluster.profiles import CORE_I7
from repro.core.system import build_system
from repro.solar.field import ConstantSource
from repro.solar.traces import make_day_trace
from repro.workloads import VideoSurveillance


def sys_with(**kwargs):
    defaults = dict(source=ConstantSource("solar", 500.0), seed=0)
    defaults.update(kwargs)
    return build_system(None, VideoSurveillance(), **defaults)


class TestAssembly:
    def test_battery_count(self):
        system = sys_with(battery_count=5)
        assert len(system.bank) == 5
        assert len(system.switchnet.pairs) == 5

    def test_server_count_and_profile(self):
        system = sys_with(server_count=2, server_profile=CORE_I7)
        assert len(system.rack.servers) == 2
        assert system.rack.profile is CORE_I7

    def test_per_vm_watts_follow_profile(self):
        xeon = sys_with()
        i7 = sys_with(server_profile=CORE_I7)
        assert xeon.controller.per_vm_w == pytest.approx(174.0, abs=5.0)
        assert i7.controller.per_vm_w < 30.0

    def test_shared_event_log(self):
        system = sys_with()
        assert system.rack.events is system.events
        assert system.switchnet.events is system.events
        assert system.plant.events is system.events

    def test_bus_bound_to_relays(self):
        system = sys_with()
        assert system.plant.bus.switchnet is system.switchnet

    def test_storage_attachment(self):
        system = sys_with(storage_gb=50.0)
        assert system.workload.storage is not None
        assert system.workload.storage.capacity_gb == 50.0
        assert sys_with().workload.storage is None

    def test_trace_every_decimation(self):
        fine = build_system(
            make_day_trace("sunny", seed=0), VideoSurveillance(),
            seed=0, trace_every=1,
        )
        coarse = build_system(
            make_day_trace("sunny", seed=0), VideoSurveillance(),
            seed=0, trace_every=24,
        )
        fine.run(1800.0)
        coarse.run(1800.0)
        assert len(fine.recorder) > len(coarse.recorder) * 10

    def test_start_hour_from_trace(self):
        trace = make_day_trace("sunny", seed=0)
        system = build_system(trace, VideoSurveillance(), seed=0)
        assert system.engine.clock.hour_of_day == pytest.approx(trace.start_hour)

    def test_recorder_has_per_battery_channels(self):
        system = sys_with(battery_count=2)
        assert "battery-1.v" in system.recorder
        assert "battery-2.soc" in system.recorder

    def test_plc_interlocks_flag(self):
        plain = sys_with()
        locked = sys_with(plc_interlocks=True)
        assert plain.controller.plc_program is None
        assert locked.controller.plc_program is not None
        assert locked.telemetry.plc.program is locked.controller.plc_program
