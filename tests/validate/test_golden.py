"""Golden-trace regression suite (``pytest -m golden``).

Recomputes the controller × workload × weather matrix and compares every
cell's per-signal trace digests and coarse summary fingerprint against the
records pinned under ``tests/golden/``.  A mismatch fails loudly with the
per-signal diff summary; after an *intentional* behaviour change, refresh
with ``python -m repro validate --refresh`` and review the JSON diff.

Also pins the determinism claims the harness rests on: identical digests
across worker counts (``--jobs 1`` vs ``--jobs 4``) and across run-cache
states (cold vs replay), and cache keys independent of checker state.
"""

import pytest

from repro.sim.cache import RunCache, cache_key
from repro.validate import golden

pytestmark = pytest.mark.golden

CELLS = golden.matrix_cells()
CELL_NAMES = [golden.cell_name(**cell) for cell in CELLS]


@pytest.fixture(scope="module")
def matrix_results():
    """Every golden cell, computed once for the whole module (fanned out
    through the experiment runner)."""
    return golden.compute_matrix(CELLS)


@pytest.mark.parametrize("name", CELL_NAMES)
def test_cell_matches_golden_record(matrix_results, name):
    record = golden.load_record(name)
    fresh = matrix_results[name]
    diffs = golden.diff_records(record, fresh)
    if diffs:
        detail = "\n  ".join(diffs)
        pytest.fail(
            f"golden cell {name} diverged:\n  {detail}\n"
            f"(intentional change? `python -m repro validate --refresh` "
            f"and review the diff — see docs/validation.md)"
        )


def test_matrix_runs_with_zero_invariant_violations(matrix_results):
    violating = {
        name: record["invariants"]
        for name, record in matrix_results.items()
        if record["invariants"]["violations"]
    }
    assert not violating, f"invariant violations in {violating}"


def test_matrix_covers_full_day_runs(matrix_results):
    # ~17k ticks per cell: duration / dt, checked at the recorded stride.
    expected_checks = int(golden.DURATION_S / golden.DT_SECONDS
                          / golden.CHECK_STRIDE)
    for record in matrix_results.values():
        assert record["invariants"]["checks_run"] == expected_checks


def test_digests_identical_across_worker_counts(matrix_results):
    """Same seed, ``--jobs 4`` process fan-out: bit-identical digests."""
    subset = [CELLS[0], CELLS[-1]]
    parallel = golden.compute_matrix(subset, max_workers=4)
    for cell in subset:
        name = golden.cell_name(**cell)
        assert parallel[name]["signals"] == matrix_results[name]["signals"]
        assert parallel[name]["summary"] == matrix_results[name]["summary"]


def test_summary_fingerprint_identical_cache_cold_vs_replay(tmp_path,
                                                            monkeypatch):
    """The cached-summary path reproduces the golden fingerprint exactly."""
    from repro.experiments.fullsystem import run_single

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cold = run_single("insure", "video", "sunny", 800.0, seed=11)
    assert RunCache(tmp_path).entry_count() == 1
    replay = run_single("insure", "video", "sunny", 800.0, seed=11)
    assert replay == cold
    assert (golden.summary_fingerprint(replay)
            == golden.summary_fingerprint(cold))


def test_cache_keys_are_checker_independent():
    """Enabling the invariant checker must not shift any cache key: keys
    hash only the run configuration (plus the code fingerprint), never
    engine observer state."""
    parts = dict(controller="insure", workload="video", profile="sunny",
                 solar_mean_w=800.0, seed=1, initial_soc=0.55, dt=5.0)
    assert (cache_key("fullsystem.run_single", **parts)
            == cache_key("fullsystem.run_single", **parts))
    from repro.core.system import build_system
    from repro.solar.traces import make_day_trace
    from repro.workloads import VideoSurveillance

    trace = make_day_trace("sunny", seed=2, target_mean_w=700.0)
    checked = build_system(trace, VideoSurveillance(), seed=2,
                           initial_soc=0.6, invariants=True)
    plain = build_system(trace, VideoSurveillance(), seed=2,
                         initial_soc=0.6)
    assert checked.run(2 * 3600.0) == plain.run(2 * 3600.0)
