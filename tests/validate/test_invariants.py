"""Unit tests for the physics-invariant checker.

Each invariant must (a) stay silent on the healthy models and (b) trip —
with a structured record naming tick, component and observed/expected —
when the corresponding law is broken.  Healthy full-matrix coverage lives
in the golden suite (``pytest -m golden``); here we rig states by hand.
"""

import hashlib

import pytest

from repro.battery.bank import BatteryBank
from repro.core.system import build_system
from repro.power.bus import BusReport
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock
from repro.solar.traces import make_day_trace
from repro.validate import InvariantChecker, InvariantError
from repro.workloads import VideoSurveillance

HOUR = 3600.0


class FakePlant:
    def __init__(self, report):
        self.last_report = report


def healthy_report(**overrides):
    fields = dict(
        demand_w=500.0, solar_available_w=800.0, solar_to_load_w=500.0,
        battery_to_load_w=0.0, unserved_w=0.0, charge_power_w=250.0,
        curtailed_w=50.0,
    )
    fields.update(overrides)
    return BusReport(**fields)


def make_checker(report=None, stride=1, **kwargs):
    bank = BatteryBank.build(count=2, soc=0.5)
    switchnet = SwitchNetwork([u.name for u in bank])
    plant = FakePlant(report if report is not None else healthy_report())
    checker = InvariantChecker(bank=bank, switchnet=switchnet, plant=plant,
                               stride=stride, **kwargs)
    return checker, bank, switchnet, plant


def tick(checker, index=0, dt=5.0):
    clock = Clock(dt=dt)
    clock.step_index = index
    clock.t = index * dt
    checker(clock)


class TestHealthyState:
    def test_balanced_report_is_clean(self):
        checker, _, _, _ = make_checker()
        tick(checker)
        assert checker.ok
        assert checker.checks_run == 1
        checker.assert_clean()  # must not raise
        assert "ok" in checker.report()

    def test_stride_skips_between_windows(self):
        checker, _, _, _ = make_checker(stride=5)
        for index in range(12):
            tick(checker, index)
        # Windows at ticks 0, 5 and 10.
        assert checker.checks_run == 3

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            make_checker(stride=0)


class TestBusInvariants:
    def test_solar_leak_trips_energy_conservation(self):
        # 100 W of PV vanishes: split says 700 of 800 available.
        checker, _, _, _ = make_checker(
            healthy_report(charge_power_w=150.0))
        tick(checker)
        assert not checker.ok
        violation = checker.violations[0]
        assert violation.invariant == "energy_conservation"
        assert violation.component == "bus.solar"
        assert violation.tick == 0

    def test_unserved_mismatch_trips_load_identity(self):
        checker, _, _, _ = make_checker(
            healthy_report(demand_w=900.0, unserved_w=0.0))
        tick(checker)
        assert any(v.component == "bus.load" for v in checker.violations)

    def test_negative_flow_detected(self):
        checker, _, _, _ = make_checker(
            healthy_report(curtailed_w=-25.0, charge_power_w=325.0))
        tick(checker)
        assert any(v.invariant == "nonnegative_flow" for v in checker.violations)

    def test_accumulated_residual_tracks_leak(self):
        # A 0.6 mW systematic leak stays below the 1 mW per-tick gate but
        # integrates into the accumulated account and eventually trips it.
        checker, _, _, _ = make_checker(
            healthy_report(solar_available_w=800.0006))
        for index in range(1500):
            tick(checker, index, dt=300.0)
        assert any(v.component == "bus.accumulated"
                   for v in checker.violations)

    def test_missing_report_is_ignored(self):
        checker, _, _, plant = make_checker()
        plant.last_report = None
        tick(checker)
        assert checker.ok


class TestBatteryInvariants:
    def test_overfull_available_well_detected(self):
        checker, bank, _, _ = make_checker()
        bank[0].kibam.y1 = bank[0].kibam.capacity_ah  # > c * C
        tick(checker)
        assert any(v.invariant == "well_bounds" and "y1" in v.component
                   for v in checker.violations)

    def test_negative_bound_well_detected(self):
        checker, bank, _, _ = make_checker()
        bank[1].kibam.y2 = -0.5
        tick(checker)
        assert any(v.invariant == "well_bounds" and "y2" in v.component
                   for v in checker.violations)

    def test_charge_above_acceptance_ceiling_detected(self):
        checker, bank, _, _ = make_checker()
        unit = bank[0]
        ceiling = unit.acceptance.max_current(unit.soc)
        unit.last_current = -(ceiling * 2.0)
        tick(checker)
        violation = next(v for v in checker.violations
                         if v.invariant == "charge_acceptance")
        assert violation.component == unit.name
        assert violation.observed == pytest.approx(ceiling * 2.0)
        assert violation.expected == pytest.approx(ceiling)

    def test_charge_at_ceiling_is_clean(self):
        checker, bank, _, _ = make_checker()
        unit = bank[0]
        unit.last_current = -unit.acceptance.max_current(unit.soc)
        tick(checker)
        assert checker.ok

    def test_wear_counter_decrease_detected(self):
        checker, bank, _, _ = make_checker()
        bank[0].wear.discharge_ah = 5.0
        tick(checker)           # records the new high-water mark
        assert checker.ok
        bank[0].wear.discharge_ah = 4.0
        tick(checker, index=1)
        assert any(v.invariant == "wear_monotone" for v in checker.violations)


class TestRelayInvariants:
    def test_bridged_pair_detected(self):
        checker, _, switchnet, _ = make_checker()
        pair = switchnet.pairs["battery-1"]
        pair.charge.closed = True       # bypass actuation-time validation
        pair.discharge.closed = True
        tick(checker)
        violation = next(v for v in checker.violations
                         if v.invariant == "relay_exclusivity")
        assert violation.component == "battery-1"


class TestReporting:
    def test_assert_clean_raises_with_structured_records(self):
        checker, _, switchnet, _ = make_checker()
        pair = switchnet.pairs["battery-2"]
        pair.charge.closed = pair.discharge.closed = True
        tick(checker)
        with pytest.raises(InvariantError) as excinfo:
            checker.assert_clean()
        assert excinfo.value.violations
        assert "relay_exclusivity" in str(excinfo.value)

    def test_raise_mode_raises_at_the_offending_tick(self):
        checker, _, switchnet, _ = make_checker(raise_on_violation=True)
        pair = switchnet.pairs["battery-1"]
        pair.charge.closed = pair.discharge.closed = True
        with pytest.raises(InvariantError):
            tick(checker, index=7)
        assert checker.violations[0].tick == 7

    def test_violation_list_is_bounded(self):
        checker, _, switchnet, _ = make_checker(max_violations=3)
        pair = switchnet.pairs["battery-1"]
        pair.charge.closed = pair.discharge.closed = True
        for index in range(10):
            tick(checker, index)
        assert len(checker.violations) == 3

    def test_counts_group_by_invariant(self):
        checker, bank, switchnet, _ = make_checker()
        switchnet.pairs["battery-1"].charge.closed = True
        switchnet.pairs["battery-1"].discharge.closed = True
        bank[0].kibam.y2 = -1.0
        tick(checker)
        counts = checker.counts()
        assert counts["relay_exclusivity"] == 1
        assert counts["well_bounds"] == 1


class TestFullSystemWiring:
    """The checker rides along a real run without perturbing it."""

    @staticmethod
    def run_system(invariants, stride=1, seed=5):
        trace = make_day_trace("sunny", seed=seed, target_mean_w=900.0)
        system = build_system(trace, VideoSurveillance(), seed=seed,
                              initial_soc=0.6, invariants=invariants,
                              invariant_stride=stride)
        summary = system.run(3 * HOUR)
        return system, summary

    @staticmethod
    def trace_hash(system):
        digest = hashlib.sha256()
        for name in ("t",) + system.recorder.names:
            digest.update(system.recorder[name].tobytes())
        return digest.hexdigest()

    def test_checker_is_attached_and_clean_on_healthy_run(self):
        system, _ = self.run_system(invariants=True)
        assert system.checker is not None
        assert system.checker.checks_run > 0
        system.checker.assert_clean()

    def test_disabled_by_default(self):
        system, _ = self.run_system(invariants=False)
        assert system.checker is None

    def test_enabling_checker_leaves_same_seed_trace_bit_identical(self):
        plain, summary_plain = self.run_system(invariants=False)
        checked, summary_checked = self.run_system(invariants=True)
        assert self.trace_hash(plain) == self.trace_hash(checked)
        assert summary_plain == summary_checked

    def test_stride_reduces_check_count(self):
        dense, _ = self.run_system(invariants=True, stride=1)
        sparse, _ = self.run_system(invariants=True, stride=24)
        assert sparse.checker.checks_run < dense.checker.checks_run
        assert sparse.checker.checks_run >= dense.checker.checks_run // 24
        sparse.checker.assert_clean()
