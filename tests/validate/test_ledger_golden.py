"""Ledger vs golden matrix: bit-identity, closure, summary cross-check.

Runs every golden matrix cell with full observability (ledger + alerts)
and proves three things per cell:

* the trace digests still match the pinned records — the instruments
  never perturbed the trajectory;
* the ledger closure account holds over the full day;
* the ledger's flow edges agree with the independently computed
  RunSummary energy fields to within 0.1 %.

The matrix fans out through ``run_cells``, which also exercises the
runner's ledger/alert rollup into the global registry.
"""

import pytest

from repro.experiments.runner import run_cells
from repro.obs.registry import global_registry, reset_global_registry
from repro.validate import golden

#: Cross-check tolerance: 0.1 % relative, with an absolute floor for
#: fields that are legitimately ~0 (e.g. curtailment on a rainy day).
REL_TOL = 1e-3
ABS_FLOOR_WH = 0.5


def _assert_close(cell: str, field: str, summary_kwh: float, ledger_wh: float):
    expected_wh = summary_kwh * 1000.0
    tolerance = max(ABS_FLOOR_WH, REL_TOL * abs(expected_wh))
    assert abs(expected_wh - ledger_wh) <= tolerance, (
        f"{cell}: {field} summary={expected_wh:.3f} Wh "
        f"ledger={ledger_wh:.3f} Wh (tolerance {tolerance:.3f} Wh)"
    )


@pytest.mark.golden
def test_ledger_matrix_cross_check():
    reset_global_registry()
    records = run_cells(golden.compute_ledger_cell, golden.matrix_cells())
    assert len(records) == len(golden.matrix_cells()) == 12

    for record in records:
        cell = record["cell"]
        # Bit-identity: the instrumented run matches the pinned digests
        # (which were produced with observability off).
        stored = golden.load_record(cell)
        assert record["signals"] == stored["signals"], cell

        closure = record["closure"]
        assert closure["ok"], f"{cell}: {closure}"

        edges = record["ledger_edges"]
        energy = record["summary_energy"]
        _assert_close(cell, "solar_used_kwh", energy["solar_used_kwh"],
                      edges["bus.solar_to_load"] + edges["bus.to_charger"])
        _assert_close(cell, "curtailed_kwh", energy["curtailed_kwh"],
                      edges["bus.curtailed"])
        _assert_close(cell, "load_energy_kwh", energy["load_energy_kwh"],
                      edges["servers.load"])
        _assert_close(cell, "effective_energy_kwh",
                      energy["effective_energy_kwh"],
                      edges["servers.effective"])
        # The ledger's harvest edge is the summary's solar total.
        _assert_close(cell, "solar_energy_kwh", energy["solar_energy_kwh"],
                      edges["pv.harvest"])

    # The fan-out rolled per-cell ledgers and alert counts into the
    # global registry (fleet totals).
    registry = global_registry()
    harvest = registry.get("runner.ledger_wh_total", edge="pv.harvest")
    assert harvest is not None and harvest.value > 0
    total_alerts = sum(sum(r["alert_counts"].values()) for r in records)
    if total_alerts:
        rolled = sum(
            metric.value for metric in registry
            if metric.name == "runner.alerts_total"
        )
        assert rolled == total_alerts
