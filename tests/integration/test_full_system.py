"""End-to-end integration: full day runs, determinism, cross-controller."""

import numpy as np
import pytest

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.workloads import SeismicAnalysis, VideoSurveillance

HOUR = 3600.0


def day_system(controller="insure", seed=1, workload=None, mean_w=900.0):
    trace = make_day_trace("sunny", dt_seconds=5.0, seed=seed, target_mean_w=mean_w)
    return build_system(
        trace,
        workload or VideoSurveillance(),
        controller=controller,
        seed=seed,
        initial_soc=0.55,
    )


class TestFullDayRun:
    @pytest.fixture(scope="class")
    def summary(self):
        return day_system().run()

    def test_completes_and_serves(self, summary):
        assert summary.elapsed_s == pytest.approx(13 * HOUR, rel=0.01)
        assert summary.uptime_fraction > 0.4

    def test_energy_flow_accounted(self, summary):
        # Load energy must be covered by solar plus battery depletion,
        # within conversion-loss slack.
        assert summary.load_energy_kwh < summary.solar_energy_kwh + 2.6

    def test_trace_recorded(self):
        system = day_system(seed=2)
        system.run(2 * HOUR)
        recorder = system.recorder
        assert len(recorder) > 100
        assert recorder["solar_w"].max() > 0.0
        assert "battery-1.v" in recorder

    def test_events_logged(self):
        system = day_system(seed=2)
        system.run(3 * HOUR)
        assert len(system.events) > 0


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = day_system(seed=7).run(4 * HOUR)
        b = day_system(seed=7).run(4 * HOUR)
        assert a.processed_gb == b.processed_gb
        assert a.power_ctrl_times == b.power_ctrl_times
        assert a.min_battery_voltage == b.min_battery_voltage

    def test_traces_bitwise_identical(self):
        sys_a = day_system(seed=7)
        sys_a.run(2 * HOUR)
        sys_b = day_system(seed=7)
        sys_b.run(2 * HOUR)
        assert np.array_equal(sys_a.recorder["mean_voltage"],
                              sys_b.recorder["mean_voltage"])

    def test_different_seeds_differ(self):
        a = day_system(seed=7).run(4 * HOUR)
        b = day_system(seed=8).run(4 * HOUR)
        assert a.processed_gb != b.processed_gb


class TestControllerComparison:
    """The headline claim, smoke-scale: InSURE beats the baseline."""

    @pytest.fixture(scope="class")
    def pair(self):
        trace_seed = 11
        results = {}
        for controller in ("insure", "baseline"):
            results[controller] = day_system(
                controller=controller, seed=trace_seed, mean_w=500.0
            ).run()
        return results

    def test_insure_uptime_at_least_baseline(self, pair):
        assert pair["insure"].uptime_fraction >= pair["baseline"].uptime_fraction

    def test_insure_life_better(self, pair):
        assert pair["insure"].projected_life_days > pair["baseline"].projected_life_days

    def test_insure_more_fine_grained_control(self, pair):
        """Table 6: Opt performs more control operations than Non-Opt."""
        assert (
            pair["insure"].vm_ctrl_times + pair["insure"].power_ctrl_times
            > pair["baseline"].vm_ctrl_times + pair["baseline"].power_ctrl_times
        )


class TestBatchWorkloadIntegration:
    def test_seismic_day_processes_data(self):
        summary = day_system(workload=SeismicAnalysis(), seed=3, mean_w=1000.0).run()
        assert summary.processed_gb > 50.0

    def test_duty_cycling_recorded_for_batch(self):
        system = day_system(workload=SeismicAnalysis(), seed=3, mean_w=500.0)
        system.run()
        # Batch runs actuate DVFS (power.duty events) or checkpoint stops.
        assert (
            system.events.count("power.duty") > 0
            or system.events.count("load.checkpoint_stop") > 0
        )
