"""Failure injection: the controller must degrade gracefully.

The prototype lives in the field: sensors drift, relays stick, batteries
age.  These tests inject each fault into a full-system run and check the
controller keeps the installation serving without crash storms.
"""

import pytest

from repro.battery.params import BatteryParams, VoltageParams
from repro.core.sensing import BatteryTelemetry
from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.workloads import VideoSurveillance

HOUR = 3600.0


def healthy_system(seed=13, **kwargs):
    trace = make_day_trace("sunny", seed=seed, target_mean_w=900.0)
    return build_system(trace, VideoSurveillance(), controller="insure",
                        seed=seed, initial_soc=0.6, **kwargs)


class TestSensorFaults:
    @pytest.mark.parametrize("gain_error", [-0.03, 0.03])
    def test_survives_uncalibrated_sensors(self, gain_error):
        system = healthy_system()
        # Rebuild the sensing chain with a systematic gain error.
        system.controller.telemetry = BatteryTelemetry(
            system.bank, gain_error=gain_error
        )
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3
        assert summary.crash_count < 10

    def test_biased_sensors_shift_but_dont_break_estimates(self):
        system = healthy_system()
        system.controller.telemetry = BatteryTelemetry(
            system.bank, gain_error=0.03
        )
        system.run(3 * HOUR)
        for unit in system.bank:
            estimate = system.controller.telemetry.sense(unit.name).soc_estimate
            assert abs(estimate - unit.soc) < 0.35


class TestRelayFaults:
    def test_stuck_discharge_relay(self):
        """One cabinet frozen on the load bus: the system keeps serving."""
        system = healthy_system()
        pair = system.switchnet.pairs["battery-2"]
        pair.to_load()
        pair.discharge.force_stick()
        pair.charge.force_stick()
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3

    def test_stuck_open_relay_loses_one_cabinet(self):
        """One cabinet stuck offline: capacity shrinks, service survives."""
        system = healthy_system()
        pair = system.switchnet.pairs["battery-3"]
        pair.to_offline()
        pair.discharge.force_stick()
        pair.charge.force_stick()
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3
        # The stuck cabinet never carried load.
        assert system.bank.by_name("battery-3").wear.discharge_ah < 1.0


class TestAgedBatteries:
    def test_degraded_bank_still_serves(self):
        """Aged cells: 70 % capacity, doubled internal resistance."""
        aged = BatteryParams(
            capacity_ah=24.5,
            voltage=VoltageParams(r_internal_ohm=0.06),
        )
        system = healthy_system(battery_params=aged)
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.25

    def test_degradation_costs_throughput(self):
        fresh = healthy_system().run(6 * HOUR)
        aged_params = BatteryParams(
            capacity_ah=24.5,
            voltage=VoltageParams(r_internal_ohm=0.06),
        )
        aged = healthy_system(battery_params=aged_params).run(6 * HOUR)
        assert aged.processed_gb <= fresh.processed_gb * 1.05


class TestMismatchedBank:
    def test_wildly_uneven_initial_socs(self):
        system = healthy_system(initial_socs=[0.95, 0.4, 0.1])
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3
        # The SPM must have worked on the empty cabinet.
        assert system.bank.by_name("battery-3").soc > 0.1
