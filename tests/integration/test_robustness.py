"""Failure injection: the controller must degrade gracefully.

The prototype lives in the field: sensors drift, relays stick, batteries
age.  These tests inject each fault through the supported
``build_system(..., faults=[...])`` hook (:mod:`repro.core.faults`) into a
full-system run and check the controller keeps the installation serving
without crash storms.
"""

import pytest

from repro.battery.params import BatteryParams, VoltageParams
from repro.core.faults import SelfDischargeFault, SensorGainFault, StuckRelayFault
from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.workloads import VideoSurveillance

HOUR = 3600.0


def healthy_system(seed=13, **kwargs):
    trace = make_day_trace("sunny", seed=seed, target_mean_w=900.0)
    return build_system(trace, VideoSurveillance(), controller="insure",
                        seed=seed, initial_soc=0.6, **kwargs)


class TestSensorFaults:
    @pytest.mark.parametrize("gain_error", [-0.03, 0.03])
    def test_survives_uncalibrated_sensors(self, gain_error):
        system = healthy_system(faults=[SensorGainFault(gain_error)])
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3
        assert summary.crash_count < 10

    def test_biased_sensors_shift_but_dont_break_estimates(self):
        system = healthy_system(faults=[SensorGainFault(0.03)])
        system.run(3 * HOUR)
        for unit in system.bank:
            estimate = system.telemetry.sense(unit.name).soc_estimate
            assert abs(estimate - unit.soc) < 0.35


class TestRelayFaults:
    def test_stuck_discharge_relay(self):
        """One cabinet frozen on the load bus: the system keeps serving."""
        system = healthy_system(faults=[StuckRelayFault("battery-2", "load")])
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3

    def test_stuck_open_relay_loses_one_cabinet(self):
        """One cabinet stuck offline: capacity shrinks, service survives."""
        system = healthy_system(faults=[StuckRelayFault("battery-3", "offline")])
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3
        # The stuck cabinet never carried load.
        assert system.bank.by_name("battery-3").wear.discharge_ah < 1.0


class TestAgedBatteries:
    def test_degraded_bank_still_serves(self):
        """Aged cells: 70 % capacity, doubled internal resistance."""
        aged = BatteryParams(
            capacity_ah=24.5,
            voltage=VoltageParams(r_internal_ohm=0.06),
        )
        system = healthy_system(battery_params=aged)
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.25

    def test_degradation_costs_throughput(self):
        fresh = healthy_system().run(6 * HOUR)
        aged_params = BatteryParams(
            capacity_ah=24.5,
            voltage=VoltageParams(r_internal_ohm=0.06),
        )
        aged = healthy_system(battery_params=aged_params).run(6 * HOUR)
        assert aged.processed_gb <= fresh.processed_gb * 1.05

    def test_leaky_cabinet_still_serves(self):
        system = healthy_system(faults=[SelfDischargeFault("battery-2", 10.0)])
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3


class TestMismatchedBank:
    def test_wildly_uneven_initial_socs(self):
        system = healthy_system(initial_socs=[0.95, 0.4, 0.1])
        summary = system.run(6 * HOUR)
        assert summary.uptime_fraction > 0.3
        # The SPM must have worked on the empty cabinet.
        assert system.bank.by_name("battery-3").soc > 0.1


class TestFaultedRunsStayPhysical:
    """Faulted hardware still obeys physics: the invariant checker rides
    along each injection and must stay clean."""

    @pytest.mark.parametrize("faults", [
        [SensorGainFault(0.03)],
        [StuckRelayFault("battery-2", "load")],
        [StuckRelayFault("battery-3", "offline"), SensorGainFault(-0.03)],
    ])
    def test_invariants_hold_under_faults(self, faults):
        system = healthy_system(faults=faults, invariants=True,
                                invariant_stride=6)
        system.run(6 * HOUR)
        system.checker.assert_clean()
