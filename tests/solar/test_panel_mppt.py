"""PV panel curve and P&O MPPT tracking."""

import numpy as np
import pytest

from repro.solar.mppt import PerturbObserveMPPT
from repro.solar.panel import PVPanel


@pytest.fixture
def panel():
    return PVPanel()


class TestPanel:
    def test_max_power_scales_with_irradiance(self, panel):
        assert panel.max_power(500.0) == pytest.approx(0.5 * panel.max_power(1000.0))

    def test_dark_panel_produces_nothing(self, panel):
        assert panel.max_power(0.0) == 0.0
        assert panel.power_at(30.0, 0.0) == 0.0

    def test_power_zero_at_voltage_extremes(self, panel):
        v_oc = panel.v_oc(1000.0)
        assert panel.power_at(0.0, 1000.0) == 0.0
        assert panel.power_at(v_oc, 1000.0) == 0.0

    def test_curve_peaks_at_v_mpp(self, panel):
        v_mpp = panel.v_mpp(1000.0)
        peak = panel.power_at(v_mpp, 1000.0)
        assert peak >= panel.power_at(v_mpp * 0.9, 1000.0)
        assert peak >= panel.power_at(v_mpp * 1.08, 1000.0)
        assert peak == pytest.approx(panel.max_power(1000.0), rel=1e-6)

    def test_voc_shrinks_in_low_light(self, panel):
        assert panel.v_oc(100.0) < panel.v_oc(1000.0)

    def test_rejects_bad_rating(self):
        with pytest.raises(ValueError):
            PVPanel(rated_w=0.0)
        with pytest.raises(ValueError):
            PVPanel(derate=1.5)

    def test_derate_applied(self):
        lossless = PVPanel(derate=1.0)
        lossy = PVPanel(derate=0.8)
        assert lossy.max_power(1000.0) == pytest.approx(
            0.8 * lossless.max_power(1000.0)
        )


class TestMPPT:
    def test_settles_near_mpp(self, panel):
        mppt = PerturbObserveMPPT(panel)
        outputs = [mppt.step(800.0, 5.0) for _ in range(600)]
        settled = np.mean(outputs[300:])
        assert settled > 0.97 * panel.max_power(800.0)

    def test_reacquires_after_irradiance_step(self, panel):
        mppt = PerturbObserveMPPT(panel)
        for _ in range(300):
            mppt.step(900.0, 5.0)
        outputs = [mppt.step(300.0, 5.0) for _ in range(300)]
        assert np.mean(outputs[150:]) > 0.95 * panel.max_power(300.0)

    def test_oscillates_around_knee(self, panel):
        """P&O never sits still: its probing creates output ripple."""
        mppt = PerturbObserveMPPT(panel)
        outputs = [mppt.step(800.0, 5.0) for _ in range(400)]
        assert np.std(outputs[200:]) > 0.0

    def test_tracking_efficiency_bounded(self, panel):
        mppt = PerturbObserveMPPT(panel)
        for _ in range(100):
            mppt.step(700.0, 5.0)
        assert 0.0 < mppt.tracking_efficiency(700.0) <= 1.0

    def test_rejects_bad_params(self, panel):
        with pytest.raises(ValueError):
            PerturbObserveMPPT(panel, step_fraction=0.0)
        with pytest.raises(ValueError):
            PerturbObserveMPPT(panel, period_s=0.0)
        mppt = PerturbObserveMPPT(panel)
        with pytest.raises(ValueError):
            mppt.step(800.0, 0.0)
