"""Solar geometry."""

import math

import pytest

from repro.solar.geometry import (
    cos_zenith,
    daylight_hours,
    declination_rad,
    hour_angle_rad,
)


class TestDeclination:
    def test_solstices(self):
        assert declination_rad(172) == pytest.approx(math.radians(23.45), abs=0.01)
        assert declination_rad(355) == pytest.approx(math.radians(-23.45), abs=0.01)

    def test_equinox_near_zero(self):
        assert abs(declination_rad(81)) < math.radians(1.0)

    def test_rejects_bad_day(self):
        with pytest.raises(ValueError):
            declination_rad(0)
        with pytest.raises(ValueError):
            declination_rad(367)


class TestHourAngle:
    def test_zero_at_noon(self):
        assert hour_angle_rad(12.0) == 0.0

    def test_fifteen_degrees_per_hour(self):
        assert hour_angle_rad(13.0) == pytest.approx(math.radians(15.0))
        assert hour_angle_rad(11.0) == pytest.approx(math.radians(-15.0))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hour_angle_rad(24.0)


class TestZenith:
    def test_peak_at_noon(self):
        values = [cos_zenith(h) for h in (8.0, 10.0, 12.0, 14.0, 16.0)]
        assert max(values) == values[2]

    def test_zero_at_night(self):
        assert cos_zenith(1.0) == 0.0
        assert cos_zenith(23.0) == 0.0

    def test_symmetric_about_noon(self):
        assert cos_zenith(10.0) == pytest.approx(cos_zenith(14.0), rel=1e-9)

    def test_winter_lower_than_summer(self):
        assert cos_zenith(12.0, day_of_year=355) < cos_zenith(12.0, day_of_year=172)


class TestDaylight:
    def test_summer_longer_than_winter(self):
        assert daylight_hours(172) > daylight_hours(355)

    def test_polar_extremes(self):
        assert daylight_hours(172, latitude_deg=80.0) == 24.0
        assert daylight_hours(355, latitude_deg=80.0) == 0.0

    def test_gainesville_summer_reasonable(self):
        hours = daylight_hours(172)
        assert 13.0 < hours < 15.0
