"""Calibrated day traces (Figure 15, Table 6)."""

import numpy as np
import pytest

from repro.solar.traces import (
    DAY_ENERGY_KWH,
    HIGH_TRACE_MEAN_W,
    LOW_TRACE_MEAN_W,
    DayTrace,
    make_day_trace,
    paper_high_trace,
    paper_low_trace,
    scale_to_mean_power,
    table6_trace,
)


class TestCalibration:
    def test_high_trace_mean(self):
        assert paper_high_trace().mean_power_w == pytest.approx(HIGH_TRACE_MEAN_W)

    def test_low_trace_mean(self):
        assert paper_low_trace().mean_power_w == pytest.approx(LOW_TRACE_MEAN_W)

    @pytest.mark.parametrize("day", ["sunny", "cloudy", "rainy"])
    def test_table6_energies(self, day):
        assert table6_trace(day).energy_kwh == pytest.approx(DAY_ENERGY_KWH[day])

    def test_sunny_more_energy_than_rainy(self):
        sunny = make_day_trace("sunny", seed=1)
        rainy = make_day_trace("rainy", seed=1)
        assert sunny.energy_kwh > rainy.energy_kwh


class TestDeterminism:
    def test_same_seed_identical(self):
        a = make_day_trace("cloudy", seed=5)
        b = make_day_trace("cloudy", seed=5)
        assert np.array_equal(a.power_w, b.power_w)

    def test_different_seed_differs(self):
        a = make_day_trace("cloudy", seed=5)
        b = make_day_trace("cloudy", seed=6)
        assert not np.array_equal(a.power_w, b.power_w)


class TestAccessors:
    def test_at_indexing(self):
        trace = make_day_trace("sunny", dt_seconds=10.0)
        assert trace.at(0.0) == trace.power_w[0]
        assert trace.at(25.0) == trace.power_w[2]

    def test_at_past_end_zero(self):
        trace = make_day_trace("sunny")
        assert trace.at(trace.duration_s + 100.0) == 0.0

    def test_at_negative_rejected(self):
        trace = make_day_trace("sunny")
        with pytest.raises(ValueError):
            trace.at(-1.0)

    def test_duration(self):
        trace = make_day_trace("sunny", dt_seconds=5.0)
        assert trace.duration_s == pytest.approx(13 * 3600.0, rel=0.01)


class TestValidation:
    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            make_day_trace("hurricane")

    def test_both_targets_rejected(self):
        with pytest.raises(ValueError):
            make_day_trace("sunny", target_energy_kwh=5.0, target_mean_w=400.0)

    def test_scale_to_mean_power(self):
        trace = make_day_trace("sunny", seed=2)
        scaled = scale_to_mean_power(trace, 500.0)
        assert scaled.mean_power_w == pytest.approx(500.0)
        # Shape preserved: correlation is exactly 1.
        corr = np.corrcoef(trace.power_w, scaled.power_w)[0, 1]
        assert corr == pytest.approx(1.0)

    def test_scale_rejects_negative(self):
        trace = make_day_trace("sunny")
        with pytest.raises(ValueError):
            scale_to_mean_power(trace, -10.0)

    def test_empty_trace_mean(self):
        empty = DayTrace(start_hour=7.0, dt_seconds=5.0, power_w=np.array([]))
        assert empty.mean_power_w == 0.0
