"""Haurwitz clear-sky irradiance."""

import pytest

from repro.solar.clearsky import clearsky_ghi


class TestClearSky:
    def test_zero_at_night(self):
        assert clearsky_ghi(2.0) == 0.0

    def test_noon_magnitude(self):
        # Summer solstice at Gainesville: close to 1000 W/m^2 at noon.
        ghi = clearsky_ghi(12.0)
        assert 900.0 < ghi < 1100.0

    def test_monotonic_morning(self):
        values = [clearsky_ghi(h) for h in (7.0, 8.0, 9.0, 10.0, 11.0, 12.0)]
        assert values == sorted(values)

    def test_symmetric_day(self):
        assert clearsky_ghi(9.0) == pytest.approx(clearsky_ghi(15.0), rel=1e-9)

    def test_winter_weaker(self):
        assert clearsky_ghi(12.0, day_of_year=355) < clearsky_ghi(12.0, day_of_year=172)

    def test_never_negative(self):
        for h in range(24):
            assert clearsky_ghi(float(h)) >= 0.0
