"""Solar field components."""

import numpy as np
import pytest

from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.solar.clouds import CloudField
from repro.solar.field import ConstantSource, SolarField, TracePlayer, trace_from_array
from repro.solar.traces import make_day_trace


class TestTracePlayer:
    def test_follows_trace(self):
        trace = make_day_trace("sunny", dt_seconds=5.0, seed=1)
        player = TracePlayer("solar", trace)
        engine = Engine(dt=5.0, start_hour=trace.start_hour)
        engine.add(player)
        engine.run(50.0)
        assert player.available_power_w == trace.at(45.0)

    def test_energy_passthrough(self):
        trace = make_day_trace("sunny", target_energy_kwh=5.0)
        assert TracePlayer("solar", trace).total_energy_kwh == pytest.approx(5.0)


class TestSolarField:
    def test_produces_power_during_day(self):
        clouds = CloudField.sunny(RandomStreams(0).stream("c"))
        field = SolarField("solar", clouds)
        engine = Engine(dt=5.0, start_hour=12.0)
        engine.add(field)
        engine.run(600.0)
        assert field.available_power_w > 200.0

    def test_dark_at_night(self):
        clouds = CloudField.sunny(RandomStreams(0).stream("c"))
        field = SolarField("solar", clouds)
        engine = Engine(dt=5.0, start_hour=1.0)
        engine.add(field)
        engine.run(600.0)
        assert field.available_power_w == 0.0


class TestConstantSource:
    def test_constant(self):
        source = ConstantSource("s", 400.0)
        engine = Engine(dt=1.0)
        engine.add(source)
        engine.run(10.0)
        assert source.available_power_w == 400.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantSource("s", -1.0)


class TestTraceFromArray:
    def test_wraps_array(self):
        trace = trace_from_array(np.array([1.0, 2.0, 3.0]), dt_seconds=5.0)
        assert trace.at(6.0) == 2.0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            trace_from_array(np.array([1.0, -2.0]), dt_seconds=5.0)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            trace_from_array(np.ones((2, 2)), dt_seconds=5.0)
