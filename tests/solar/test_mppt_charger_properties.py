"""Charger/bus draw can never exceed the MPPT-extracted budget.

The power budget that reaches the DC bus is whatever the P&O tracker
pulls off the panel — a path with real dynamics (probe oscillation,
direction reversals, knee walking after irradiance jumps).  Hypothesis
feeds arbitrary irradiance traces through the tracker and checks that
downstream consumers (the solar charger, the power bus) treat the
extracted power as a hard ceiling at every tick.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.battery.bank import BatteryBank
from repro.battery.charger import SolarCharger
from repro.battery.unit import BatteryMode, BatteryUnit
from repro.power.bus import PowerBus
from repro.solar.mppt import PerturbObserveMPPT
from repro.solar.panel import PVPanel

irradiance_traces = st.lists(st.floats(0.0, 1200.0), min_size=5, max_size=50)


@given(irradiances=irradiance_traces, dt=st.sampled_from([1.0, 5.0, 30.0]))
@settings(max_examples=80, deadline=None)
def test_tracker_output_bounded_by_panel_physics(irradiances, dt):
    """Whatever the trace, extraction sits in [0, true MPP]."""
    panel = PVPanel()
    mppt = PerturbObserveMPPT(panel)
    for irradiance in irradiances:
        power = mppt.step(irradiance, dt)
        assert power >= 0.0
        assert power <= panel.max_power(irradiance) + 1e-9
        if irradiance == 0.0:
            assert power == pytest.approx(0.0, abs=1e-12)


@given(
    irradiances=irradiance_traces,
    socs=st.lists(st.floats(0.05, 0.95), min_size=1, max_size=4),
    dt=st.sampled_from([1.0, 5.0, 30.0]),
)
@settings(max_examples=80, deadline=None)
def test_charger_never_draws_above_mppt_budget(irradiances, socs, dt):
    """The charger's draw tracks the tick-by-tick MPPT budget, never the
    nameplate: for any irradiance trace, ``power_used_w <= budget``."""
    panel = PVPanel()
    mppt = PerturbObserveMPPT(panel)
    charger = SolarCharger()
    units = [BatteryUnit(f"u{i}", soc=s) for i, s in enumerate(socs)]
    for irradiance in irradiances:
        budget = mppt.step(irradiance, dt)
        result = charger.step(units, budget, dt)
        assert result.power_used_w <= budget + 1e-6
        assert result.power_used_w >= 0.0


@given(
    irradiances=irradiance_traces,
    demand=st.floats(0.0, 1500.0),
    dt=st.sampled_from([1.0, 5.0, 30.0]),
)
@settings(max_examples=80, deadline=None)
def test_bus_never_spends_more_solar_than_the_tracker_extracted(
        irradiances, demand, dt):
    """Bus-level ceiling: direct-to-load plus charging can never exceed
    the MPPT budget — surplus must show up as curtailment, not free W."""
    panel = PVPanel()
    mppt = PerturbObserveMPPT(panel)
    bank = BatteryBank.build(count=3, soc=0.6)
    for unit in bank:
        unit.set_mode(BatteryMode.CHARGING)
    bus = PowerBus(bank)
    for irradiance in irradiances:
        budget = mppt.step(irradiance, dt)
        report = bus.resolve(budget, demand, dt)
        spent = report.solar_to_load_w + report.charge_power_w
        assert spent <= budget + max(1e-6, budget * 1e-9)
        assert report.curtailed_w >= -1e-9
