"""Cloud regime process."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams
from repro.solar.clouds import CloudField, CloudRegime


def rng(name="clouds", seed=0):
    return RandomStreams(seed).stream(name)


def mean_clearness(field, steps=2000, dt=5.0):
    return float(np.mean([field.step(dt) for _ in range(steps)]))


class TestBounds:
    def test_clearness_stays_in_range(self):
        field = CloudField(rng())
        for _ in range(5000):
            value = field.step(5.0)
            assert 0.02 <= value <= 1.0

    def test_rejects_bad_reversion(self):
        with pytest.raises(ValueError):
            CloudField(rng(), reversion_per_hour=0.0)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            CloudField(rng(), {CloudRegime.CLEAR: 0.0})

    def test_rejects_bad_dt(self):
        field = CloudField(rng())
        with pytest.raises(ValueError):
            field.step(0.0)


class TestRegimeProfiles:
    def test_sunny_clearer_than_rainy(self):
        sunny = mean_clearness(CloudField.sunny(rng("a")))
        rainy = mean_clearness(CloudField.rainy(rng("b")))
        assert sunny > 0.75
        assert rainy < 0.45
        assert sunny > rainy + 0.3

    def test_cloudy_most_variable(self):
        def variability(field):
            values = [field.step(5.0) for _ in range(3000)]
            return float(np.std(np.diff(values)))

        cloudy = variability(CloudField.cloudy(rng("c")))
        sunny = variability(CloudField.sunny(rng("d")))
        assert cloudy > sunny

    def test_deterministic_given_stream(self):
        a = [CloudField.sunny(rng(seed=3)).step(5.0) for _ in range(1)]
        b = [CloudField.sunny(rng(seed=3)).step(5.0) for _ in range(1)]
        assert a == b

    def test_regimes_switch_over_time(self):
        field = CloudField.cloudy(rng("switch"))
        seen = set()
        for _ in range(20_000):
            field.step(5.0)
            seen.add(field.regime)
        assert len(seen) >= 2
