"""Short-horizon solar forecasters."""

import numpy as np
import pytest

from repro.solar.clearsky import clearsky_ghi
from repro.solar.forecast import ClearSkyScaledForecast, PersistenceForecast
from repro.solar.traces import make_day_trace


class TestPersistence:
    def test_predicts_rolling_mean(self):
        forecast = PersistenceForecast(window_s=100.0)
        for t in range(0, 100, 10):
            forecast.observe(float(t), 500.0)
        assert forecast.predict(600.0) == pytest.approx(500.0)

    def test_window_forgets_old_samples(self):
        forecast = PersistenceForecast(window_s=50.0)
        forecast.observe(0.0, 1000.0)
        for t in range(100, 160, 10):
            forecast.observe(float(t), 200.0)
        assert forecast.predict(600.0) == pytest.approx(200.0)

    def test_empty_predicts_zero(self):
        assert PersistenceForecast().predict(600.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PersistenceForecast(window_s=0.0)
        with pytest.raises(ValueError):
            PersistenceForecast().observe(0.0, -1.0)


class TestClearSkyScaled:
    def _feed(self, forecast, trace, until_s, dt=60.0):
        t = 0.0
        while t < until_s:
            forecast.observe(t, trace.at(t))
            t += dt

    def test_tracks_clear_day(self):
        trace = make_day_trace("sunny", seed=3)
        forecast = ClearSkyScaledForecast()
        self._feed(forecast, trace, 3 * 3600.0)
        horizon = 1800.0
        predicted = forecast.predict(horizon)
        actual = np.mean([trace.at(3 * 3600.0 + s) for s in range(0, 1800, 60)])
        assert predicted == pytest.approx(actual, rel=0.35)

    def test_beats_persistence_near_sunset(self):
        """Persistence is systematically high in the evening decline."""
        trace = make_day_trace("sunny", seed=3)
        scaled = ClearSkyScaledForecast()
        naive = PersistenceForecast()
        # Feed up to one hour before the trace ends (evening).
        until = trace.duration_s - 3600.0
        t = 0.0
        while t < until:
            power = trace.at(t)
            scaled.observe(t, power)
            naive.observe(t, power)
            t += 60.0
        actual = np.mean([trace.at(until + s) for s in range(0, 3600, 60)])
        err_scaled = abs(scaled.predict(3600.0) - actual)
        err_naive = abs(naive.predict(3600.0) - actual)
        assert err_scaled < err_naive

    def test_validation(self):
        forecast = ClearSkyScaledForecast()
        with pytest.raises(ValueError):
            forecast.predict(0.0)
        with pytest.raises(ValueError):
            forecast.observe(0.0, -5.0)
        with pytest.raises(ValueError):
            ClearSkyScaledForecast(rated_w=0.0)

    def test_night_observations_ignored(self):
        forecast = ClearSkyScaledForecast(start_hour=0.0)
        # At midnight the clear-sky ceiling is zero: no clearness sample.
        assert clearsky_ghi(0.0) == 0.0
        forecast.observe(0.0, 0.0)
        assert forecast.predict(600.0) == 0.0
