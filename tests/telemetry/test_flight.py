"""Flight report: builder, Markdown/HTML rendering, artifacts, compare."""

import json

import pytest

from repro.telemetry.flight import (
    render_html,
    render_markdown,
    run_flight,
    write_flight_report,
)

SHORT_H = 3.0


@pytest.fixture(scope="module")
def flight():
    return run_flight(controller="insure", workload="seismic",
                      weather="cloudy", seed=1, duration_s=SHORT_H * 3600.0)


@pytest.fixture(scope="module")
def flight_with_compare():
    return run_flight(controller="insure", workload="seismic",
                      weather="cloudy", seed=1,
                      duration_s=SHORT_H * 3600.0, compare="baseline")


class TestRunFlight:
    def test_collects_summary_ledger_and_alerts(self, flight):
        assert flight.summary.elapsed_s == pytest.approx(SHORT_H * 3600.0)
        assert flight.ticks == int(SHORT_H * 3600.0 / 5.0)
        assert flight.obs.ledger.closure().ok
        assert flight.ledger_edges["pv.harvest"] > 0

    def test_compare_must_differ(self):
        with pytest.raises(ValueError, match="differ"):
            run_flight(controller="insure", compare="insure",
                       duration_s=600.0)

    def test_compare_runs_same_trace(self, flight_with_compare):
        report = flight_with_compare
        assert report.compare_controller == "baseline"
        assert report.compare_summary is not None
        # identical seed/trace: identical harvest, different usage
        ours = report.ledger_edges["pv.harvest"]
        theirs = report.compare_obs.ledger.edges()["pv.harvest"]
        assert ours == pytest.approx(theirs)


class TestMarkdown:
    def test_sections_present(self, flight):
        text = render_markdown(flight)
        for heading in ("# Flight report — insure / seismic / cloudy",
                        "## Service", "## Energy ledger", "## Alerts",
                        "## Decisions", "## Span profile"):
            assert heading in text
        assert "Closure: ledger closure ok" in text
        assert "| pv.harvest |" in text
        assert "## Comparison" not in text

    def test_compare_sections(self, flight_with_compare):
        text = render_markdown(flight_with_compare)
        assert "## Comparison" in text
        assert "### Ledger delta" in text
        assert "| flow edge | insure | baseline |" in text


class TestHtml:
    def test_is_self_contained_document(self, flight):
        page = render_html(flight)
        assert page.startswith("<!DOCTYPE html>")
        assert page.endswith("</html>")
        assert "<h2>Energy ledger</h2>" in page
        assert "pv.harvest" in page

    def test_escapes_content(self, flight):
        # The renderer must escape whatever lands in messages/labels.
        flight_alerts = flight.alerts
        page = render_html(flight)
        for alert in flight_alerts:
            assert f"<td>{alert.rule}</td>" in page


class TestArtifacts:
    def test_write_flight_report(self, flight, tmp_path):
        paths = write_flight_report(flight, tmp_path, with_html=True)
        assert {"flight_md", "flight_html", "ledger_json", "alerts_jsonl",
                "metrics_prom", "decisions_jsonl",
                "spans_folded"} <= set(paths)
        assert paths["flight_md"].read_text().startswith("# Flight report")
        ledger = json.loads(paths["ledger_json"].read_text())
        assert ledger["closure"]["ok"] is True

    def test_markdown_only_by_default(self, flight, tmp_path):
        paths = write_flight_report(flight, tmp_path)
        assert "flight_html" not in paths
        assert paths["flight_md"].is_file()
