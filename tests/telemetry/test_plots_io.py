"""Terminal plotting and trace/summary persistence."""

import numpy as np
import pytest

from repro.core.system import build_system
from repro.solar.field import ConstantSource
from repro.solar.traces import make_day_trace
from repro.telemetry.io import (
    export_day_trace_csv,
    export_recorder_csv,
    load_day_trace_csv,
    load_summary_json,
    save_summary_json,
)
from repro.telemetry.plots import bar_chart, channel_panel, histogram, sparkline
from repro.workloads import VideoSurveillance


class TestSparkline:
    def test_fixed_width(self):
        assert len(sparkline([1, 2, 3], width=20)) == 20

    def test_empty_is_blank(self):
        assert sparkline([], width=10) == " " * 10

    def test_monotone_ramp(self):
        line = sparkline(list(range(100)), width=10)
        assert line[0] == " " and line[-1] == "@"

    def test_explicit_range_clamps(self):
        line = sparkline([0.0, 5.0, 10.0], width=3, lo=0.0, hi=5.0)
        assert line[-1] == "@"  # 10 clamps to the top block

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)
        with pytest.raises(ValueError):
            sparkline([1.0], lo=5.0, hi=1.0)


class TestBarChartHistogram:
    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_bar_chart_empty(self):
        assert bar_chart({}) == ""

    def test_histogram_bins(self):
        text = histogram(np.random.default_rng(0).normal(size=500), bins=5)
        assert len(text.splitlines()) == 5

    def test_histogram_empty(self):
        assert histogram([]) == "(no data)"


@pytest.fixture(scope="module")
def run():
    system = build_system(
        None, VideoSurveillance(), controller="insure",
        source=ConstantSource("solar", 900.0), initial_soc=0.7, seed=4,
    )
    summary = system.run(2 * 3600.0)
    return system, summary


class TestChannelPanel:
    def test_renders_all_channels(self, run):
        system, _ = run
        panel = channel_panel(system.recorder, ["solar_w", "demand_w"],
                              labels={"solar_w": "solar"})
        lines = panel.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("solar")


class TestPersistence:
    def test_recorder_csv_roundtrip(self, run, tmp_path):
        system, _ = run
        path = export_recorder_csv(system.recorder, tmp_path / "trace.csv")
        header = path.read_text().splitlines()[0].split(",")
        assert header[0] == "t"
        assert "solar_w" in header
        body_lines = path.read_text().splitlines()[1:]
        assert len(body_lines) == len(system.recorder)

    def test_summary_json_roundtrip(self, run, tmp_path):
        _, summary = run
        path = save_summary_json(summary, tmp_path / "summary.json",
                                 extra={"seed": 4})
        loaded = load_summary_json(path)
        assert loaded == summary

    def test_extra_keys_cannot_shadow(self, run, tmp_path):
        _, summary = run
        with pytest.raises(ValueError):
            save_summary_json(summary, tmp_path / "x.json",
                              extra={"processed_gb": 0.0})

    def test_summary_missing_fields_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"elapsed_s": 1.0}')
        with pytest.raises(ValueError):
            load_summary_json(tmp_path / "bad.json")

    def test_day_trace_csv_roundtrip(self, tmp_path):
        trace = make_day_trace("cloudy", seed=6, dt_seconds=30.0)
        path = export_day_trace_csv(trace, tmp_path / "day.csv")
        loaded = load_day_trace_csv(path)
        assert loaded.dt_seconds == trace.dt_seconds
        assert loaded.start_hour == trace.start_hour
        assert np.allclose(loaded.power_w, trace.power_w)

    def test_empty_trace_file_rejected(self, tmp_path):
        (tmp_path / "empty.csv").write_text("t_seconds,power_w\n")
        with pytest.raises(ValueError):
            load_day_trace_csv(tmp_path / "empty.csv")
