"""Metrics collection and comparison analysis."""

import pytest

from repro.core.system import build_system
from repro.solar.field import ConstantSource
from repro.telemetry.analyzer import (
    all_improvements,
    improvement,
    service_metrics,
    system_metrics,
    table6_row,
)
from repro.workloads import VideoSurveillance

HOUR = 3600.0


@pytest.fixture(scope="module")
def summary():
    system = build_system(
        None, VideoSurveillance(), controller="insure",
        source=ConstantSource("solar", 1200.0), initial_soc=0.8, seed=0,
    )
    return system.run(2 * HOUR)


class TestImprovement:
    def test_higher_is_better(self):
        assert improvement(1.2, 1.0) == pytest.approx(0.2)

    def test_lower_is_better_sign_flip(self):
        assert improvement(0.8, 1.0, higher_is_better=False) == pytest.approx(0.2)

    def test_zero_baseline(self):
        assert improvement(0.0, 0.0) == 0.0
        assert improvement(1.0, 0.0) == float("inf")


class TestRunSummary:
    def test_energy_accounting_consistent(self, summary):
        assert summary.effective_energy_kwh <= summary.load_energy_kwh + 1e-9
        assert 0.0 <= summary.effective_fraction <= 1.0

    def test_solar_accounting(self, summary):
        assert summary.solar_used_kwh <= summary.solar_energy_kwh + 1e-9
        assert summary.curtailed_kwh >= 0.0

    def test_uptime_in_unit_interval(self, summary):
        assert 0.0 <= summary.uptime_fraction <= 1.0

    def test_availability_pct(self, summary):
        assert summary.availability_pct == pytest.approx(
            100.0 * summary.uptime_fraction
        )

    def test_voltage_stats_sane(self, summary):
        assert 20.0 < summary.min_battery_voltage <= summary.end_battery_voltage + 3.0
        assert summary.battery_voltage_sigma >= 0.0

    def test_throughput_positive_when_serving(self, summary):
        if summary.uptime_fraction > 0.3:
            assert summary.throughput_gb_per_hour > 0.0


class TestProjections:
    def test_table6_row_columns(self, summary):
        row = table6_row(summary)
        expected = {
            "load_kwh", "effective_kwh", "power_ctrl_times", "on_off_cycles",
            "vm_ctrl_times", "min_battery_volt", "end_of_day_volt",
            "battery_volt_sigma",
        }
        assert set(row) == expected

    def test_metric_groups(self, summary):
        service = service_metrics(summary)
        system = system_metrics(summary)
        assert set(service) == {"system_uptime", "load_perf", "avg_latency_min"}
        assert set(system) == {"ebuffer_avail_wh", "service_life_days", "perf_per_ah"}

    def test_all_improvements_keys(self, summary):
        improvements = all_improvements(summary, summary)
        assert all(v == pytest.approx(0.0) for v in improvements.values())
        assert len(improvements) == 6
