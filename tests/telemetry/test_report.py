"""Markdown run reports."""

import pytest

from repro.core.system import build_system
from repro.solar.field import ConstantSource
from repro.telemetry.report import render_comparison, render_summary
from repro.workloads import VideoSurveillance

HOUR = 3600.0


@pytest.fixture(scope="module")
def summaries():
    results = {}
    for controller in ("insure", "baseline"):
        system = build_system(
            None, VideoSurveillance(), controller=controller,
            source=ConstantSource("solar", 900.0), initial_soc=0.7, seed=4,
        )
        results[controller] = system.run(3 * HOUR)
    return results


class TestSummaryReport:
    def test_contains_all_sections(self, summaries):
        report = render_summary(summaries["insure"])
        for section in ("# InSURE day report", "## Service", "## Energy",
                        "## Energy buffer", "## Control activity"):
            assert section in report

    def test_custom_title(self, summaries):
        report = render_summary(summaries["insure"], title="Field log 7")
        assert report.startswith("# Field log 7")

    def test_numbers_present(self, summaries):
        summary = summaries["insure"]
        report = render_summary(summary)
        assert f"{summary.availability_pct:.1f} %" in report
        assert str(summary.vm_ctrl_times) in report

    def test_valid_markdown_tables(self, summaries):
        report = render_summary(summaries["insure"])
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")


class TestComparisonReport:
    def test_win_count_line(self, summaries):
        report = render_comparison(summaries["insure"], summaries["baseline"])
        assert "wins" in report
        assert "of 6 metrics" in report

    def test_both_columns_present(self, summaries):
        report = render_comparison(summaries["insure"], summaries["baseline"])
        assert "| metric | InSURE | baseline | improvement |" in report

    def test_self_comparison_wins_nothing(self, summaries):
        report = render_comparison(summaries["insure"], summaries["insure"])
        assert "wins 0 of 6" in report
