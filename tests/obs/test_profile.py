"""Profiling harness: breakdown, hottest ticks, artifacts, cProfile."""

import pstats

from repro.obs.profile import (
    profile_run,
    render_breakdown,
    render_decisions,
    render_hottest,
    write_outputs,
)

SHORT_S = 1800.0


def test_profile_run_produces_breakdown_and_decisions():
    result = profile_run(workload="seismic", weather="sunny", seed=3,
                         duration_s=SHORT_S, stride=4)
    assert result.ticks == int(SHORT_S / 5.0)
    assert result.wall_s > 0
    spans = {row["span"] for row in result.breakdown}
    assert {"insure", "plant", "controller.sense"} <= spans
    assert result.hottest  # at least one sampled tick retained
    assert all(entry["wall_us"] > 0 for entry in result.hottest)
    # renderers produce non-empty text without raising
    assert "per-component time breakdown" in render_breakdown(result)
    assert "tick" in render_hottest(result)
    assert render_decisions(result)


def test_write_outputs_creates_artifacts(tmp_path):
    result = profile_run(duration_s=SHORT_S, stride=8)
    paths = write_outputs(result, tmp_path)
    assert (tmp_path / "breakdown.txt").is_file()
    assert set(paths) == {"metrics_jsonl", "metrics_prom", "decisions_jsonl",
                          "spans_folded", "ledger_json", "alerts_jsonl",
                          "breakdown"}
    text = (tmp_path / "breakdown.txt").read_text()
    assert "per-component time breakdown" in text


def test_cprofile_output_is_loadable(tmp_path):
    target = tmp_path / "run.pstats"
    result = profile_run(duration_s=SHORT_S, cprofile_path=target)
    assert result.cprofile_path == target
    stats = pstats.Stats(str(target))
    assert stats.total_calls > 0
