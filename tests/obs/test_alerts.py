"""Alert engine: rule units (synthetic systems), hysteresis, integration."""

import json
from types import SimpleNamespace

import pytest

from repro.core.system import build_system
from repro.obs.alerts import (
    AlertEngine,
    CheckpointStormRule,
    DischargeCapNearMissRule,
    LvdProximityRule,
    SocDroopRule,
    SustainedCurtailmentRule,
    WearImbalanceRule,
    default_rules,
)
from repro.obs.decisions import KNOWN_KINDS, DecisionLog
from repro.obs.hub import Observability
from repro.obs.registry import MetricsRegistry
from repro.solar.traces import make_day_trace
from repro.workloads import SeismicAnalysis


def _unit(name="battery-1", soc=0.5, voltage=24.0, current=0.0,
          discharge_ah=0.0, v_cutoff=23.3):
    return SimpleNamespace(
        name=name, soc=soc, terminal_voltage=voltage, last_current=current,
        wear=SimpleNamespace(discharge_ah=discharge_ah),
        params=SimpleNamespace(voltage=SimpleNamespace(v_cutoff=v_cutoff)),
    )


class _FakeBank(list):
    """Iterable of fake units with the mean_soc the droop rule reads."""

    def __init__(self, units, mean_soc):
        super().__init__(units)
        self.mean_soc = mean_soc


def _system(units=None, mean_soc=0.5, cap=None, checkpoint_stops=0,
            curtailed_w=0.0):
    units = units if units is not None else [_unit()]
    bank = _FakeBank(units, mean_soc)
    return SimpleNamespace(
        bank=bank,
        controller=SimpleNamespace(discharge_cap_amps=cap,
                                   checkpoint_stops=checkpoint_stops),
        plant=SimpleNamespace(
            last_report=SimpleNamespace(curtailed_w=curtailed_w)),
    )


class TestSocDroopRule:
    def test_fires_on_fast_drop_and_rearms(self):
        rule = SocDroopRule(max_drop_per_hour=0.1, window_s=600.0)
        # 0.2/h drop: 0.0333 SoC over 600 s.
        fired = []
        soc = 0.9
        for i in range(13):
            t = i * 60.0
            system = _system(mean_soc=soc)
            fired.append(rule.evaluate(t, system))
            soc -= 0.2 / 60.0  # 0.2 SoC per hour, sampled each minute
        hits = [f for f in fired if f is not None]
        assert len(hits) == 1  # edge-triggered, not once per sample
        message, data = hits[0]
        assert "dropping" in message
        assert data["rate_per_hour"] > 0.1

    def test_quiet_on_stable_soc(self):
        rule = SocDroopRule(max_drop_per_hour=0.1, window_s=600.0)
        for i in range(13):
            assert rule.evaluate(i * 60.0, _system(mean_soc=0.8)) is None


class TestWearImbalanceRule:
    def test_fires_once_on_spread(self):
        rule = WearImbalanceRule(max_imbalance_ah=5.0)
        units = [_unit("b1", discharge_ah=12.0), _unit("b2", discharge_ah=2.0)]
        first = rule.evaluate(0.0, _system(units=units))
        again = rule.evaluate(60.0, _system(units=units))
        assert first is not None and again is None
        message, data = first
        assert data["spread_ah"] == pytest.approx(10.0)

    def test_rearms_below_hysteresis_band(self):
        rule = WearImbalanceRule(max_imbalance_ah=5.0)
        bad = [_unit("b1", discharge_ah=12.0), _unit("b2", discharge_ah=2.0)]
        good = [_unit("b1", discharge_ah=3.0), _unit("b2", discharge_ah=2.0)]
        assert rule.evaluate(0.0, _system(units=bad)) is not None
        assert rule.evaluate(1.0, _system(units=good)) is None  # re-arm
        assert rule.evaluate(2.0, _system(units=bad)) is not None


class TestDischargeCapNearMissRule:
    def test_inert_without_a_cap(self):
        rule = DischargeCapNearMissRule()
        units = [_unit(current=100.0)]
        assert rule.evaluate(0.0, _system(units=units, cap=None)) is None

    def test_fires_near_cap(self):
        rule = DischargeCapNearMissRule(fraction=0.9)
        units = [_unit("b1", current=10.0), _unit("b2", current=9.0)]
        fired = rule.evaluate(0.0, _system(units=units, cap=20.0))
        assert fired is not None
        message, data = fired
        assert data["total_amps"] == pytest.approx(19.0)
        # below the re-arm fraction the rule resets
        calm = [_unit("b1", current=5.0)]
        assert rule.evaluate(1.0, _system(units=calm, cap=20.0)) is None
        assert rule.evaluate(2.0, _system(units=units, cap=20.0)) is not None

    def test_charging_current_not_counted(self):
        rule = DischargeCapNearMissRule(fraction=0.9)
        units = [_unit("b1", current=-50.0), _unit("b2", current=1.0)]
        assert rule.evaluate(0.0, _system(units=units, cap=20.0)) is None


class TestLvdProximityRule:
    def test_fires_per_unit_when_discharging_near_cutoff(self):
        rule = LvdProximityRule(margin_v=0.25)
        near = [_unit("b1", voltage=23.4, current=2.0)]
        fired = rule.evaluate(0.0, _system(units=near))
        assert fired is not None
        assert fired[1]["unit"] == "b1"
        # armed per unit: stays quiet until the unit leaves the band
        assert rule.evaluate(1.0, _system(units=near)) is None

    def test_quiet_when_not_discharging(self):
        rule = LvdProximityRule(margin_v=0.25)
        idle = [_unit("b1", voltage=23.4, current=0.0)]
        assert rule.evaluate(0.0, _system(units=idle)) is None


class TestCheckpointStormRule:
    def test_fires_on_repeated_stops_in_window(self):
        rule = CheckpointStormRule(count=2, window_s=3600.0)
        assert rule.evaluate(0.0, _system(checkpoint_stops=1)) is None
        fired = rule.evaluate(600.0, _system(checkpoint_stops=2))
        assert fired is not None
        assert fired[1]["stops_in_window"] == 2
        # the window cleared on fire: one more stop is not yet a storm
        assert rule.evaluate(700.0, _system(checkpoint_stops=3)) is None

    def test_stops_outside_window_do_not_accumulate(self):
        rule = CheckpointStormRule(count=2, window_s=600.0)
        assert rule.evaluate(0.0, _system(checkpoint_stops=1)) is None
        assert rule.evaluate(3600.0, _system(checkpoint_stops=2)) is None


class TestSustainedCurtailmentRule:
    def test_fires_after_sustained_episode_only(self):
        rule = SustainedCurtailmentRule(floor_w=100.0, duration_s=600.0)
        assert rule.evaluate(0.0, _system(curtailed_w=300.0)) is None
        assert rule.evaluate(300.0, _system(curtailed_w=250.0)) is None
        fired = rule.evaluate(650.0, _system(curtailed_w=200.0))
        assert fired is not None
        # one alert per episode
        assert rule.evaluate(700.0, _system(curtailed_w=200.0)) is None
        # episode ends, new episode can fire again
        assert rule.evaluate(800.0, _system(curtailed_w=0.0)) is None
        assert rule.evaluate(900.0, _system(curtailed_w=200.0)) is None
        assert rule.evaluate(1600.0, _system(curtailed_w=200.0)) is not None


class TestAlertEngine:
    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError, match="stride"):
            AlertEngine(stride=0)

    def test_emit_records_decision_and_counter(self):
        decisions = DecisionLog()
        registry = MetricsRegistry()
        engine = AlertEngine(rules=[WearImbalanceRule(max_imbalance_ah=1.0)],
                             stride=1, decisions=decisions, registry=registry)
        units = [_unit("b1", discharge_ah=9.0), _unit("b2")]
        engine.attach(_system(units=units), observe=False)
        engine(SimpleNamespace(step_index=0, t=120.0))
        assert len(engine) == 1
        alert = engine.alerts[0]
        assert alert.rule == "wear_imbalance" and alert.t == 120.0
        assert decisions.of_kind("alert")[0].kind == "alert.wear_imbalance"
        counter = registry.get("alerts_total", rule="wear_imbalance")
        assert counter is not None and counter.value == 1

    def test_all_alert_kinds_are_known_decision_kinds(self):
        for rule in default_rules():
            assert f"alert.{rule.name}" in KNOWN_KINDS

    def test_jsonl_lines_parse(self):
        engine = AlertEngine(rules=[WearImbalanceRule(max_imbalance_ah=1.0)],
                             stride=1)
        units = [_unit("b1", discharge_ah=9.0), _unit("b2")]
        engine.attach(_system(units=units), observe=False)
        engine(SimpleNamespace(step_index=0, t=60.0))
        lines = engine.to_jsonl().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["rule"] == "wear_imbalance"
        assert payload["severity"] == "warning"


class TestIntegration:
    def test_full_system_run_streams_alerts_into_decisions(self):
        trace = make_day_trace("cloudy", dt_seconds=5.0, seed=1,
                               target_mean_w=800.0)
        obs = Observability()
        system = build_system(trace, SeismicAnalysis(), controller="insure",
                              seed=1, initial_soc=0.55, dt=5.0,
                              observability=obs)
        system.run(3 * 3600.0)
        assert len(obs.alerts) > 0
        counts = obs.alerts.counts()
        assert sum(counts.values()) == len(obs.alerts)
        joined = obs.decisions.of_kind("alert")
        assert len(joined) == len(obs.alerts)
        for decision, alert in zip(joined, obs.alerts.alerts, strict=True):
            assert decision.kind == f"alert.{alert.rule}"
            assert decision.t == alert.t
