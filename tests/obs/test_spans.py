"""Span tracer: nesting/self-time attribution, stride sampling, null path."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer


class FakeClock:
    """Deterministic timer: each call advances by the scripted increments."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_null_tracer_is_inert():
    assert NULL_TRACER.begin_tick(0, 0.0) is False
    assert NULL_TRACER.sampling is False
    with NULL_TRACER.span("anything"):
        pass  # no state, no error


def test_stride_sampling():
    tracer = SpanTracer(stride=4)
    sampled = []
    for index in range(12):
        if tracer.begin_tick(index, float(index)):
            sampled.append(index)
            tracer.end_tick()
    assert sampled == [0, 4, 8]
    assert tracer.ticks_seen == 12
    assert tracer.sampled_ticks == 3


def test_span_outside_sampled_tick_is_noop():
    tracer = SpanTracer(stride=2)
    assert tracer.begin_tick(1, 0.0) is False  # unsampled tick
    with tracer.span("work"):
        pass
    assert tracer.stats == {}


def test_nested_self_time_attribution():
    # Scripted timer ticks 1s per call.  Parent wraps one child; the
    # child's elapsed time must be subtracted from the parent's self time.
    clock = FakeClock(step=1.0)
    tracer = SpanTracer(stride=1, timer=clock)
    assert tracer.begin_tick(0, 0.0)
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
    tracer.end_tick()

    parent = tracer.stats["parent"]
    child = tracer.stats["child"]
    # child: enter at t1, exit reads t2 -> elapsed 1; all self time.
    assert child.total_s == pytest.approx(1.0)
    assert child.self_s == pytest.approx(1.0)
    # parent: enter at t0, exit reads t3 -> elapsed 3, minus child 1 -> 2.
    assert parent.total_s == pytest.approx(3.0)
    assert parent.self_s == pytest.approx(2.0)
    assert parent.count == child.count == 1


def test_report_rows_sorted_by_self_time_with_shares():
    clock = FakeClock(step=1.0)
    tracer = SpanTracer(stride=1, timer=clock)
    tracer.begin_tick(0, 0.0)
    with tracer.span("slow"):
        with tracer.span("fast"):
            pass
    tracer.end_tick()
    rows = tracer.report_rows()
    assert [row["span"] for row in rows] == ["slow", "fast"]
    assert sum(row["share"] for row in rows) == pytest.approx(1.0)


def test_hottest_ticks_keep_the_slowest():
    clock = FakeClock(step=0.0)
    tracer = SpanTracer(stride=1, hot_ticks=2, timer=clock)
    for index, cost in enumerate((1.0, 5.0, 3.0, 0.5)):
        clock.step = 0.0
        tracer.begin_tick(index, float(index) * 10)
        clock.step = cost  # every timer call inside this tick costs `cost`
        with tracer.span("work"):
            pass
        clock.step = 0.0
        tracer.end_tick()
    hottest = tracer.hottest()
    assert [entry["tick"] for entry in hottest] == [1, 2]
    assert hottest[0]["wall_us"] >= hottest[1]["wall_us"]
    assert "work" in hottest[0]["breakdown"]


def test_to_folded_is_flamegraph_compatible():
    clock = FakeClock(step=1.0)
    tracer = SpanTracer(stride=1, timer=clock)
    tracer.begin_tick(0, 0.0)
    with tracer.span("alpha"):
        pass
    tracer.end_tick()
    lines = tracer.to_folded().strip().splitlines()
    assert len(lines) == 1
    stack, weight = lines[0].rsplit(" ", 1)
    assert stack == "tick;alpha"
    assert int(weight) >= 1


def test_bind_registry_exposes_aggregates():
    tracer = SpanTracer(stride=1)
    registry = MetricsRegistry()
    tracer.bind_registry(registry, prefix="engine")
    tracer.begin_tick(0, 0.0)
    tracer.end_tick()
    samples = {s["name"]: s["value"] for s in registry.collect()}
    assert samples["engine.ticks_seen"] == 1
    assert samples["engine.sampled_ticks"] == 1


def test_constructor_validation():
    with pytest.raises(ValueError):
        SpanTracer(stride=0)
    with pytest.raises(ValueError):
        SpanTracer(hot_ticks=-1)
