"""Metrics registry semantics: counters, gauges, histograms, export."""

import json
import math

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("ops")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("ops")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("depth")
        g.set(4.2)
        assert g.value == 4.2

    def test_function_binding_reads_at_collection_time(self):
        state = {"x": 1.0}
        g = Gauge("live")
        g.set_function(lambda: state["x"])
        assert g.value == 1.0
        state["x"] = 7.0
        assert g.value == 7.0
        # an explicit set unbinds the callable
        g.set(0.5)
        state["x"] = 99.0
        assert g.value == 0.5


class TestHistogram:
    def test_observe_counts_and_moments(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(16.5)
        assert h.mean == pytest.approx(3.3)

    def test_cumulative_counts_end_with_inf_total(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        pairs = h.cumulative_counts()
        assert pairs[-1] == (math.inf, 3)
        assert pairs[0] == (1.0, 1)
        assert pairs[1] == (2.0, 2)

    def test_quantiles_bracket_the_data(self):
        h = Histogram("lat", buckets=(0.1, 0.2, 0.4, 0.8))
        for _ in range(100):
            h.observe(0.15)
        assert 0.1 <= h.quantile(0.5) <= 0.2
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_quantile_clamps_to_max_beyond_last_bound(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 50.0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram_quantile_is_zero(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.quantile(0.5) == 0.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help")
        b = reg.counter("x")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.gauge("soc", unit="b1")
        b = reg.gauge("soc", unit="b2")
        assert a is not b
        assert reg.get("soc", unit="b1") is a

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_jsonl_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        reg.gauge("depth", unit="b1").set(0.5)
        reg.histogram("lat", buckets=(1.0,)).observe(0.2)
        samples = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        by_name = {s["name"]: s for s in samples}
        assert by_name["ops"]["value"] == 3
        assert by_name["depth"]["labels"] == {"unit": "b1"}
        assert by_name["lat"]["count"] == 1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("runner.cells_total", "cells run").inc(2)
        reg.gauge("bank.soc", unit="b1").set(0.4)
        reg.histogram("tick_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus()
        assert "# HELP runner_cells_total cells run" in text
        assert "# TYPE runner_cells_total counter" in text
        assert "runner_cells_total 2.0" in text
        assert 'bank_soc{unit="b1"} 0.4' in text
        assert 'tick_seconds_bucket{le="0.1"} 1' in text
        assert 'tick_seconds_bucket{le="+Inf"} 1' in text
        assert "tick_seconds_count 1" in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("alerts_total",
                    rule='say "hi"\nback\\slash').inc()
        text = reg.to_prometheus()
        assert r'rule="say \"hi\"\nback\\slash"' in text
        assert "\nback" not in text.replace("\\nback", "")  # no raw newline

    def test_prometheus_escapes_help_text(self):
        reg = MetricsRegistry()
        reg.counter("ops", "first line\nsecond \\ line").inc()
        text = reg.to_prometheus()
        assert "# HELP ops first line\\nsecond \\\\ line" in text

    def test_prometheus_headers_once_per_family(self):
        # Children of one family (same name, different labels) must yield
        # exactly one HELP and one TYPE line, even when the help text
        # arrives on a later-created (or later-sorted) child.
        reg = MetricsRegistry()
        reg.counter("alerts_total", rule="zz_first_created").inc()
        reg.counter("alerts_total", "alerts fired per rule",
                    rule="aa_sorted_first").inc()
        reg.gauge("bank.soc", unit="b1").set(0.4)
        reg.gauge("bank.soc", unit="b2").set(0.5)
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert lines.count("# HELP alerts_total alerts fired per rule") == 1
        assert lines.count("# TYPE alerts_total counter") == 1
        assert lines.count("# TYPE bank_soc gauge") == 1
        assert sum(1 for li in lines
                   if li.startswith("# HELP alerts_total")) == 1

    def test_prometheus_format_conformance(self):
        # Every non-comment line must be `name{labels} value` with a
        # sanitized metric name; every family headed by exactly one TYPE.
        import re

        reg = MetricsRegistry()
        reg.counter("runner.cells_total", "cells run").inc(2)
        reg.gauge("ledger.edge_wh", "energy per edge",
                  edge="pv.harvest").set(123.4)
        reg.histogram("tick_seconds", "tick wall time",
                      buckets=(0.1, 1.0)).observe(0.05)
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$')
        seen_types: list[str] = []
        for line in reg.to_prometheus().splitlines():
            if line.startswith("# TYPE "):
                seen_types.append(line.split()[2])
            elif not line.startswith("#"):
                assert sample_re.match(line), line
        assert seen_types == sorted(seen_types)  # name-sorted families
        assert len(seen_types) == len(set(seen_types))

    def test_collect_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zzz")
        reg.counter("aaa")
        names = [s["name"] for s in reg.collect()]
        assert names == sorted(names)

    def test_reset_global_registry(self):
        first = global_registry()
        first.counter("probe").inc()
        fresh = reset_global_registry()
        assert fresh is global_registry()
        assert fresh.get("probe") is None
