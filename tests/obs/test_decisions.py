"""Decision log: recording, JSONL round trip, trace joining."""

import numpy as np

from repro.obs.decisions import NULL_DECISIONS, DecisionLog
from repro.obs.registry import MetricsRegistry
from repro.telemetry.analyzer import join_decisions


def test_null_log_is_inert():
    assert NULL_DECISIONS.enabled is False
    assert NULL_DECISIONS.record(0.0, "buffer.mode", "b1", x=1) is None


def test_record_and_counts():
    log = DecisionLog()
    log.record(10.0, "buffer.mode", "b1", from_mode="standby", to_mode="discharge")
    log.record(20.0, "buffer.mode", "b2", from_mode="charge", to_mode="standby")
    log.record(30.0, "vm.target", "insure", vms=4)
    assert len(log) == 3
    assert log.counts() == {"buffer.mode": 2, "vm.target": 1}


def test_of_kind_prefix_matching():
    log = DecisionLog()
    log.record(1.0, "buffer.mode", "b1")
    log.record(2.0, "buffer.trip", "b1")
    log.record(3.0, "vm.target", "c")
    assert len(log.of_kind("buffer")) == 2
    assert len(log.of_kind("buffer.mode")) == 1
    assert len(log.of_kind("vm")) == 1


def test_registry_counter_increment():
    registry = MetricsRegistry()
    log = DecisionLog(registry=registry)
    log.record(0.0, "dvfs.duty", "insure", to_duty=0.8)
    log.record(1.0, "dvfs.duty", "insure", to_duty=0.6)
    counter = registry.get("decisions_total", kind="dvfs.duty")
    assert counter is not None and counter.value == 2


def test_jsonl_round_trip(tmp_path):
    log = DecisionLog()
    log.record(5.0, "load.restart", "insure", vms=3)
    log.record(9.5, "power.shed", "plant", unserved_w=120.5, demand_w=700.0)
    path = log.write_jsonl(tmp_path / "decisions.jsonl")
    loaded = DecisionLog.from_jsonl(path)
    assert len(loaded) == 2
    original = list(log)
    reloaded = list(loaded)
    for a, b in zip(original, reloaded, strict=True):
        assert (a.t, a.kind, a.source, a.data) == (b.t, b.kind, b.source, b.data)


class _StubRecorder:
    """Minimal TraceRecorder look-alike for the join."""

    def __init__(self):
        self._data = {
            "t": np.array([0.0, 60.0, 120.0]),
            "demand_w": np.array([100.0, 200.0, 300.0]),
        }
        self.names = ("demand_w",)

    def __getitem__(self, name):
        return self._data[name]


def test_join_decisions_attaches_nearest_prior_sample():
    log = DecisionLog()
    log.record(65.0, "vm.target", "insure", vms=2)
    log.record(-1.0, "buffer.mode", "b1")  # before the first sample
    rows = join_decisions(_StubRecorder(), log)
    by_kind = {row["kind"]: row for row in rows}
    joined = by_kind["vm.target"]
    assert joined["trace_t"] == 60.0
    assert joined["trace.demand_w"] == 200.0
    assert joined["data.vms"] == 2
    assert "trace_t" not in by_kind["buffer.mode"]


def test_join_decisions_after_final_sample_uses_last_sample():
    # Alerts and shutdown decisions are routinely stamped after the trace
    # recorder's final (decimated) sample; they join against that sample.
    log = DecisionLog()
    log.record(10_000.0, "alert.soc_droop", "alerts", severity="warning")
    rows = join_decisions(_StubRecorder(), log)
    assert rows[0]["trace_t"] == 120.0
    assert rows[0]["trace.demand_w"] == 300.0


def test_join_decisions_with_empty_recorder():
    from repro.sim.trace import TraceRecorder

    log = DecisionLog()
    log.record(5.0, "vm.target", "insure", vms=1)
    recorder = TraceRecorder()
    recorder.channel("demand_w", lambda: 0.0)
    rows = join_decisions(recorder, log)  # no samples recorded yet
    assert len(rows) == 1
    assert "trace_t" not in rows[0]
    assert rows[0]["data.vms"] == 1


def test_join_decisions_accepts_plain_mapping():
    log = DecisionLog()
    log.record(65.0, "vm.target", "insure", vms=2)
    arrays = {"t": [0.0, 60.0, 120.0], "soc": [0.9, 0.8, 0.7]}
    rows = join_decisions(arrays, log)
    assert rows[0]["trace_t"] == 60.0
    assert rows[0]["trace.soc"] == 0.8


def test_join_decisions_empty_mapping_and_no_decisions():
    log = DecisionLog()
    log.record(1.0, "vm.target", "insure")
    assert join_decisions({}, log)[0].get("trace_t") is None
    assert join_decisions(_StubRecorder(), DecisionLog()) == []


def test_join_decisions_ragged_channel_shorter_than_time():
    # A channel array shorter than the time axis (interrupted export)
    # must not index out of range.
    log = DecisionLog()
    log.record(130.0, "vm.target", "insure")
    arrays = {"t": [0.0, 60.0, 120.0], "soc": [0.9, 0.8]}
    rows = join_decisions(arrays, log)
    assert rows[0]["trace_t"] == 120.0
    assert "trace.soc" not in rows[0]
