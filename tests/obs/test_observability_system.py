"""Observability on a full system: read-only guarantee and wiring.

The central contract: attaching the metrics registry, span tracer and
decision log never perturbs the same-seed trajectory.  The short-horizon
tests prove digest equality directly; the golden-marked test runs a full
day with observability ON against the pinned digests (which were produced
with observability OFF).
"""

import pytest

from repro.core.system import build_system
from repro.obs.hub import Observability
from repro.solar.traces import make_day_trace
from repro.validate import golden
from repro.workloads import SeismicAnalysis, VideoSurveillance

SHORT_S = 2 * 3600.0


def _run(controller, workload_cls, obs, weather="cloudy", seed=11):
    trace = make_day_trace(weather, dt_seconds=5.0, seed=seed, target_mean_w=850.0)
    system = build_system(trace, workload_cls(), controller=controller,
                          seed=seed, initial_soc=0.55, dt=5.0,
                          observability=obs)
    summary = system.run(SHORT_S)
    return system, summary


@pytest.mark.parametrize("controller,workload_cls", [
    ("insure", SeismicAnalysis),
    ("baseline", VideoSurveillance),
])
def test_traces_bit_identical_with_observability(controller, workload_cls):
    plain, plain_summary = _run(controller, workload_cls, obs=None)
    observed, observed_summary = _run(controller, workload_cls, obs=True)
    assert golden.trace_digests(plain.recorder) == \
        golden.trace_digests(observed.recorder)
    assert vars(plain_summary) == vars(observed_summary)


def test_attach_wires_all_three_instruments():
    obs = Observability(trace_stride=8)
    system, _ = _run("insure", SeismicAnalysis, obs=obs)
    assert system.obs is obs
    assert system.engine.tracer is obs.tracer
    assert system.controller.decisions is obs.decisions
    assert system.plant.decisions is obs.decisions

    # the tracer saw the whole run and sampled 1-in-8 ticks
    ticks = system.engine.clock.step_index
    assert obs.tracer.ticks_seen == ticks
    assert obs.tracer.sampled_ticks == ticks // 8 + (1 if ticks % 8 else 0)
    spans = {row["span"] for row in obs.tracer.report_rows()}
    assert {"insure", "plant", "rack", "solar", "metrics",
            "controller.sense"} <= spans

    # controllers routed decisions through the log
    assert len(obs.decisions) > 0
    assert obs.decisions.of_kind("buffer.mode")

    # collection-time gauges read live component state
    samples = {s["name"]: s for s in obs.registry.collect()}
    assert samples["engine.ticks"]["value"] == ticks
    assert samples["bank.stored_wh"]["value"] > 0
    assert 0.0 <= samples["bank.mean_soc"]["value"] <= 1.0


def test_decision_log_matches_mode_transitions():
    obs = Observability()
    system, _ = _run("insure", SeismicAnalysis, obs=obs)
    recorded = obs.decisions.of_kind("buffer.mode")
    assert len(recorded) == len(system.controller.mode_transitions)
    for decision, change in zip(recorded, system.controller.mode_transitions, strict=True):
        assert decision.source == change.battery
        assert decision.data["from_mode"] == change.from_mode.value
        assert decision.data["to_mode"] == change.to_mode.value
        assert decision.data["reason"] == change.reason


def test_export_writes_all_artifacts(tmp_path):
    obs = Observability()
    _run("insure", SeismicAnalysis, obs=obs)
    paths = obs.export(tmp_path)
    assert set(paths) == {"metrics_jsonl", "metrics_prom", "decisions_jsonl",
                          "spans_folded", "ledger_json", "alerts_jsonl"}
    for name, path in paths.items():
        assert path.is_file()
        if name != "alerts_jsonl":  # a calm run legitimately fires no alert
            assert path.stat().st_size > 0


@pytest.mark.golden
@pytest.mark.parametrize("cell", [
    {"controller": "insure", "workload": "seismic", "weather": "cloudy"},
    {"controller": "baseline", "workload": "video", "weather": "sunny"},
])
def test_golden_digests_hold_with_observability_on(cell):
    """Full-day obs-ON run vs pinned digests produced with obs OFF."""
    seed = golden.derive_seed(golden.BASE_SEED, cell["controller"],
                              cell["workload"], cell["weather"])
    trace = make_day_trace(cell["weather"], dt_seconds=golden.DT_SECONDS,
                           seed=seed, target_mean_w=golden.TARGET_MEAN_W)
    workload_cls = SeismicAnalysis if cell["workload"] == "seismic" \
        else VideoSurveillance
    system = build_system(trace, workload_cls(),
                          controller=cell["controller"], seed=seed,
                          initial_soc=golden.INITIAL_SOC,
                          dt=golden.DT_SECONDS, observability=True)
    system.run(golden.DURATION_S)
    stored = golden.load_record(
        golden.cell_name(cell["controller"], cell["workload"],
                         cell["weather"]))
    assert golden.trace_digests(system.recorder) == stored["signals"]
