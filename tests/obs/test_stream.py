"""StreamTap: delta extraction over a live Observability bundle."""

from __future__ import annotations

from repro.core.system import build_system
from repro.obs.hub import Observability
from repro.obs.stream import DEFAULT_GAUGES, StreamTap
from repro.solar.traces import make_day_trace
from repro.workloads import SeismicAnalysis


def make_instrumented_system(seed: int = 3):
    trace = make_day_trace("cloudy", seed=seed, dt_seconds=5.0)
    obs = Observability(trace_stride=16)
    system = build_system(trace, SeismicAnalysis(), controller="insure",
                          seed=seed, observability=obs)
    return system, obs


class TestStreamTap:
    def test_poll_always_carries_metrics(self):
        system, obs = make_instrumented_system()
        tap = StreamTap(obs)
        events = tap.poll(0.0)
        metrics = [e for e in events if e["type"] == "metrics"]
        assert len(metrics) == 1
        assert set(metrics[0]["values"]) <= set(DEFAULT_GAUGES)
        assert "engine.ticks" in metrics[0]["values"]

    def test_decisions_stream_once(self):
        system, obs = make_instrumented_system()
        tap = StreamTap(obs)
        system.begin_run()
        system.advance(360)  # 30 sim-minutes: boot decisions land
        t = system.engine.clock.t
        first = [e for e in tap.poll(t) if e["type"] in ("decision", "alert")]
        assert first, "expected boot decisions in the first poll"
        again = [e for e in tap.poll(t) if e["type"] in ("decision", "alert")]
        assert again == []  # cursor advanced; nothing new
        system.advance(720)
        t = system.engine.clock.t
        fresh = [e for e in tap.poll(t) if e["type"] in ("decision", "alert")]
        for event in fresh:
            assert event["t"] >= first[-1]["t"]

    def test_alert_kinds_retyped(self):
        system, obs = make_instrumented_system()
        tap = StreamTap(obs)
        obs.decisions.record(1.0, "alert.test", "unit", detail="x")
        events = tap.poll(1.0)
        alerts = [e for e in events if e["type"] == "alert"]
        assert len(alerts) == 1
        assert alerts[0]["kind"] == "alert.test"
        assert alerts[0]["data"] == {"detail": "x"}

    def test_ledger_deltas_only_when_moving(self):
        system, obs = make_instrumented_system()
        tap = StreamTap(obs)
        # Nothing has run: no edge movement, no ledger event.
        assert [e for e in tap.poll(0.0) if e["type"] == "ledger"] == []
        system.begin_run()
        system.advance(720)
        t = system.engine.clock.t
        ledger = [e for e in tap.poll(t) if e["type"] == "ledger"]
        assert len(ledger) == 1
        assert ledger[0]["delta_wh"], "energy moved but no deltas"
        assert "ok" in ledger[0]["closure"]
        # A second poll with no ticks in between streams no ledger event.
        assert [e for e in tap.poll(t) if e["type"] == "ledger"] == []

    def test_deltas_sum_to_edge_totals(self):
        system, obs = make_instrumented_system()
        tap = StreamTap(obs)
        system.begin_run()
        totals: dict[str, float] = {}
        for _ in range(6):
            system.advance(360)
            t = system.engine.clock.t
            for event in tap.poll(t):
                if event["type"] == "ledger":
                    for name, wh in event["delta_wh"].items():
                        totals[name] = totals.get(name, 0.0) + wh
        edges = obs.ledger.edges()
        for name, total in totals.items():
            assert abs(edges[name] - total) < 1e-6, name

    def test_polling_does_not_perturb_the_run(self):
        quiet_sys, _ = make_instrumented_system(seed=9)
        tapped_sys, tapped_obs = make_instrumented_system(seed=9)
        tap = StreamTap(tapped_obs)
        quiet_sys.begin_run()
        tapped_sys.begin_run()
        for _ in range(12):
            quiet_sys.advance(360)
            tapped_sys.advance(360)
            tap.poll(tapped_sys.engine.clock.t)
        quiet = quiet_sys.finalize()
        tapped = tapped_sys.finalize()
        assert vars(quiet) == vars(tapped)
