"""Energy-flow ledger: closure, edge identities, read-only guarantee."""

import json

import pytest

from repro.core.system import build_system
from repro.obs.hub import Observability
from repro.obs.ledger import EDGE_NAMES, SIGNED_EDGES, EnergyLedger
from repro.solar.traces import make_day_trace
from repro.validate import golden
from repro.workloads import SeismicAnalysis

SHORT_S = 2 * 3600.0


def _run(obs, controller="insure", seed=11, duration_s=SHORT_S):
    trace = make_day_trace("cloudy", dt_seconds=5.0, seed=seed,
                           target_mean_w=850.0)
    system = build_system(trace, SeismicAnalysis(), controller=controller,
                          seed=seed, initial_soc=0.55, dt=5.0,
                          observability=obs)
    system.run(duration_s)
    return system


class TestClosure:
    @pytest.mark.parametrize("controller", ["insure", "baseline"])
    def test_closure_holds_on_short_runs(self, controller):
        obs = Observability()
        _run(obs, controller=controller)
        closure = obs.ledger.closure()
        assert closure.ok, str(closure)
        assert closure.hours == pytest.approx(SHORT_S / 3600.0)
        assert abs(closure.residual_solar_wh) <= closure.tolerance_wh
        assert abs(closure.residual_load_wh) <= closure.tolerance_wh

    def test_closure_str_mentions_verdict(self):
        obs = Observability()
        _run(obs)
        text = str(obs.ledger.closure())
        assert "ledger closure ok" in text
        assert "ungated" in text


class TestEdges:
    def test_catalogue_complete_and_ordered(self):
        obs = Observability()
        _run(obs)
        edges = obs.ledger.edges()
        assert tuple(edges) == EDGE_NAMES

    def test_flow_edges_non_negative(self):
        obs = Observability()
        _run(obs)
        for name, wh in obs.ledger.edges().items():
            if name not in SIGNED_EDGES:
                assert wh >= -1e-9, f"{name} = {wh}"

    def test_bus_identities_integrate_exactly(self):
        obs = Observability()
        _run(obs)
        e = obs.ledger.edges()
        tol = obs.ledger.closure().tolerance_wh
        assert e["pv.harvest"] == pytest.approx(
            e["bus.solar_to_load"] + e["bus.to_charger"] + e["bus.curtailed"],
            abs=tol)
        assert e["charger.to_batteries"] + e["charger.loss"] == pytest.approx(
            e["bus.to_charger"], abs=tol)
        # Load-side decomposition of what the servers drew at the wall.
        assert e["servers.load"] == pytest.approx(
            e["servers.effective"] + e["servers.checkpoint_overhead"]
            + e["servers.idle_overhead"], abs=1e-6)

    def test_attach_snapshots_a_baseline(self):
        # Attaching mid-run must account only the energy moved *after*
        # the attach point.
        system = _run(None, duration_s=SHORT_S)
        late = EnergyLedger().attach(system)
        assert all(abs(wh) < 1e-9 for wh in late.edges().values())

    def test_unattached_ledger_raises(self):
        ledger = EnergyLedger()
        assert not ledger.attached
        with pytest.raises(RuntimeError, match="not attached"):
            ledger.edges()
        with pytest.raises(RuntimeError, match="not attached"):
            ledger.closure()


class TestInstrumentation:
    def test_gauges_registered_and_live(self):
        obs = Observability()
        _run(obs)
        harvest = obs.registry.get("ledger.edge_wh", edge="pv.harvest")
        assert harvest is not None
        assert harvest.value == pytest.approx(
            obs.ledger.edges()["pv.harvest"])
        ok = obs.registry.get("ledger.closure_ok")
        assert ok is not None and ok.value == 1.0

    def test_json_export_round_trips(self):
        obs = Observability()
        _run(obs)
        payload = json.loads(obs.ledger.to_json())
        assert set(payload) == {"edges", "closure"}
        assert set(payload["edges"]) == set(EDGE_NAMES)
        assert payload["closure"]["ok"] is True

    def test_ledger_can_be_disabled(self, tmp_path):
        obs = Observability(ledger=False)
        system = _run(obs)
        assert obs.ledger is None
        assert system.obs is obs
        assert "ledger_json" not in obs.export(tmp_path)


class TestReadOnly:
    def test_traces_identical_with_ledger_on_and_off(self):
        with_ledger = _run(Observability(ledger=True, alerts=False))
        without = _run(Observability(ledger=False, alerts=False))
        assert golden.trace_digests(with_ledger.recorder) == \
            golden.trace_digests(without.recorder)
