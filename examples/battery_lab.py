"""Energy-buffer laboratory: the battery phenomena InSURE exploits.

Reproduces the measurements of Figure 4 interactively:

1. The *rate-capacity effect* — a 35 Ah cabinet discharged at high
   current cuts out early with much of its charge stranded.
2. The *recovery effect* — resting lets the bound charge diffuse back.
3. *Sequential versus batch charging* — why concentrating a scarce solar
   budget on fewer cabinets charges the bank faster.

Run:  python examples/battery_lab.py
"""

from repro.battery import BatteryUnit, SolarCharger
from repro.experiments.charging import charging_time_hours


def discharge_experiment(amps: float) -> None:
    unit = BatteryUnit("lab", soc=1.0)
    t = 0.0
    while t < 8 * 3600:
        delivered = unit.apply_discharge(amps, 5.0)
        t += 5.0
        if delivered < amps * 0.99:
            break
    print(f"  {amps:4.0f} A: cut-out after {t / 60:5.0f} min, "
          f"SoC stranded = {unit.soc:.2f}, V = {unit.terminal_voltage:.2f}")

    # Recovery: rest and watch the open-circuit voltage climb back.
    checkpoints = []
    for minute in range(31):
        for _ in range(12):
            unit.idle(5.0)
        if minute in (0, 5, 15, 30):
            checkpoints.append((minute, unit.open_circuit_voltage))
    rebound = ", ".join(f"{m:2d} min: {v:.2f} V" for m, v in checkpoints)
    print(f"        recovery: {rebound}")


def charging_experiment() -> None:
    print("\nCharging three empty cabinets to 90 % "
          "(sequential vs all-at-once):")
    print(f"  {'budget':>8s} {'one-by-one':>12s} {'batch':>8s} {'verdict':>22s}")
    for budget in (150.0, 250.0, 800.0):
        seq = charging_time_hours(1, budget)
        batch = charging_time_hours(3, budget)
        verdict = ("sequential wins" if seq < batch else "batch wins")
        print(f"  {budget:6.0f} W {seq:10.1f} h {batch:7.1f} h {verdict:>22s}")
    print("  -> a scarce budget should be concentrated (Figure 4a); an")
    print("     abundant one split — hence SPM's batch size N = P_G / P_PC.")


def acceptance_curve() -> None:
    unit = BatteryUnit("lab", soc=0.0)
    print("\nCharge acceptance ceiling vs state of charge:")
    print("  SoC   max charge current")
    for soc10 in range(0, 11, 2):
        soc = soc10 / 10.0
        unit.kibam.set_soc(soc)
        ceiling = unit.max_charge_current()
        bar = "#" * int(ceiling * 3)
        print(f"  {soc:.1f}   {ceiling:5.2f} A  {bar}")


def main() -> None:
    print("Rate-capacity effect (Figure 4b): discharge to cut-out")
    for amps in (18.0, 12.0, 8.0):
        discharge_experiment(amps)
    acceptance_curve()
    charging_experiment()

    # A taste of the charger API itself.
    print("\nOne water-filling charger step across a mixed bank:")
    bank = [BatteryUnit(f"b{i}", soc=s) for i, s in enumerate((0.2, 0.6, 0.95))]
    result = SolarCharger().step(bank, 500.0, 60.0)
    for unit in bank:
        print(f"  {unit.name}: soc {unit.soc:.3f}, charge current "
              f"{-unit.last_current:5.2f} A")
    print(f"  budget utilisation: {result.utilisation * 100:.0f} %")


if __name__ == "__main__":
    main()
