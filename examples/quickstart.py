"""Quickstart: assemble and run a complete InSURE installation.

Builds the paper's prototype configuration — a 1.6 kW solar array, three
24 V battery cabinets behind a relay switch network, four Xeon servers —
gives it a day of synthetic sunshine and the video-surveillance workload,
and prints the day's operating report.

Run:  python examples/quickstart.py
"""

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.workloads import VideoSurveillance


def main() -> None:
    # A sunny day, rescaled to the paper's "high generation" level.
    trace = make_day_trace("sunny", target_mean_w=1000.0, seed=42)

    system = build_system(
        trace,
        VideoSurveillance(),          # 24 cameras at 0.21 GB/min
        controller="insure",          # the paper's spatio-temporal manager
        initial_soc=0.55,             # yesterday's half-used buffer
    )

    summary = system.run()            # run the whole day

    print("InSURE day report")
    print("-" * 44)
    print(f"solar energy available   {summary.solar_energy_kwh:6.2f} kWh")
    print(f"solar energy used        {summary.solar_used_kwh:6.2f} kWh")
    print(f"server load energy       {summary.load_energy_kwh:6.2f} kWh")
    print(f"effective (useful) energy{summary.effective_energy_kwh:6.2f} kWh")
    print(f"system uptime            {summary.availability_pct:6.1f} %")
    print(f"data processed           {summary.processed_gb:6.1f} GB")
    print(f"throughput               {summary.throughput_gb_per_hour:6.2f} GB/h")
    print(f"mean chunk delay         {summary.mean_delay_minutes:6.1f} min")
    print(f"e-Buffer availability    {summary.energy_availability_wh:6.0f} Wh")
    print(f"projected battery life   {summary.projected_life_days:6.0f} days")
    print(f"performance per Ah       {summary.perf_per_ah_gb:6.2f} GB/Ah")
    print(f"relay operations         {summary.power_ctrl_times:6d}")
    print(f"VM control operations    {summary.vm_ctrl_times:6d}")
    print(f"server on/off cycles     {summary.on_off_cycles:6d}")

    # The recorder holds full traces for plotting or analysis.
    recorder = system.recorder
    print(f"\ntrace channels recorded: {', '.join(recorder.names[:6])}, ...")
    print(f"samples per channel:     {len(recorder)}")


if __name__ == "__main__":
    main()
