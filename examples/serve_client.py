"""Talk to a running serve daemon: create, stream, inject, summarize.

Boots nothing itself — start the daemon first::

    python -m repro serve --port 8737

then::

    python examples/serve_client.py [port]

The script creates a short session with a carbon-aware duty-cap policy,
follows its Server-Sent-Events stream, injects a governor swap mid-run,
and prints the final summary with the decision counts showing the
injection in the record.  See docs/serving.md for the full manifest
schema and endpoint catalogue.
"""

from __future__ import annotations

import json
import sys
import threading

from repro.serve.client import ServeClient

MANIFEST = {
    "controller": "insure",
    "workload": "seismic",
    "weather": "cloudy",
    "seed": 11,
    "duration_s": 2 * 3600.0,       # two sim-hours
    "tick_slice": 120,              # cooperative slice: 10 sim-minutes
    "policies": [
        {
            "name": "carbon-duty",
            "signal": "carbon",
            "governor": "step:420=80%:560=60%",
            "control": "duty_cap",
            "interval_s": 300.0,
        }
    ],
}


def main() -> int:
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 8737
    client = ServeClient(port=port)
    try:
        client.wait_ready(timeout=3.0)
    except TimeoutError:
        print(f"no daemon on port {port}; start one with: "
              f"python -m repro serve --port {port}")
        return 1

    info = client.create_session(MANIFEST)
    sid = info["session"]
    print(f"session {sid}: {info['total_ticks']} ticks\n")

    # Stream in a thread so the main thread can steer mid-run.
    def follow() -> None:
        for event in client.stream(sid):
            if event.event in ("hello", "state", "decision", "alert",
                               "summary", "end"):
                payload = json.loads(event.data)
                if event.event == "decision":
                    print(f"  [{event.id:4d}] {payload['kind']:22s} "
                          f"t={payload['t']:8.0f} from {payload['source']}")
                else:
                    print(f"  [{event.id:4d}] {event.event}")

    follower = threading.Thread(target=follow)
    follower.start()

    # Mid-run steering: swap the governor to a flat 70% cap.
    import time

    while client.get_session(sid)["ticks_done"] == 0:
        time.sleep(0.05)
    ack = client.inject(sid, {"kind": "governor", "policy": "carbon-duty",
                              "governor": "const:0.7"})
    print(f"\ninjected governor swap at t={ack['t']:.0f}s -> "
          f"{ack['governor']}\n")

    follower.join(timeout=120)
    summary = client.summary(sid)
    print("\nfinal summary")
    print("-" * 44)
    print(f"closure ok      {summary['closure']['ok']}")
    print(f"injected        {summary['injected']}")
    print(f"uptime          {summary['summary']['uptime_fraction'] * 100:.1f} %")
    print(f"processed       {summary['summary']['processed_gb']:.1f} GB")
    print("decisions:")
    for kind, count in sorted(summary["decision_counts"].items()):
        print(f"  {kind:24s} {count}")
    client.delete_session(sid)
    return 0


if __name__ == "__main__":
    sys.exit(main())
