"""Deployment planner: is in-situ processing worth it for your site?

Interactive use of the cost models behind Figures 3, 23, 24 and 25:
given a data generation rate, a sunshine fraction and a deployment
length, compare an InSURE deployment against shipping raw data out.

Run:  python examples/deployment_planner.py [gb_per_day] [sunshine] [days]
e.g.  python examples/deployment_planner.py 120 0.65 180
"""

import sys

from repro.cost.scaleout import (
    cloud_cost,
    crossover_rate,
    insitu_cost,
    pods_required,
)
from repro.cost.scenarios import SCENARIOS, scenario_savings
from repro.cost.transfer import transfer_hours_per_tb


def main() -> None:
    gb_per_day = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    sunshine = float(sys.argv[2]) if len(sys.argv) > 2 else 0.7
    days = float(sys.argv[3]) if len(sys.argv) > 3 else 180.0
    years = days / 365.0

    print("In-situ deployment planner")
    print("=" * 52)
    print(f"site data rate       {gb_per_day:8.1f} GB/day")
    print(f"sunshine fraction    {sunshine:8.2f}")
    print(f"deployment length    {days:8.0f} days")

    local = insitu_cost(gb_per_day, sunshine, years)
    remote = cloud_cost(gb_per_day, years)
    pods = pods_required(gb_per_day, sunshine)

    print(f"\nInSURE deployment    ${local:12,.0f}  ({pods} pod(s))")
    print(f"cellular-to-cloud    ${remote:12,.0f}")
    if local < remote:
        print(f"verdict: deploy in-situ — saves {100 * (1 - local / remote):.0f}%")
    else:
        print(f"verdict: use the cloud — in-situ costs "
              f"{100 * (local / remote - 1):.0f}% more")
    print(f"(break-even data rate at full sun: "
          f"{crossover_rate():.2f} GB/day — paper: ~0.9)")

    # How long would shipping the backlog take over realistic links?
    tb_per_month = gb_per_day * 30 / 1000.0
    print(f"\nmoving one month of raw data ({tb_per_month:.1f} TB) would take:")
    for name, mbps in (("cellular (20 Mbps)", 20.0), ("T3 (45 Mbps)", 44.7),
                       ("100 Mbps fibre", 100.0)):
        hours = transfer_hours_per_tb(mbps) * tb_per_month
        print(f"  {name:20s} {hours / 24:6.1f} days of continuous transfer")

    print("\nreference scenarios (Figure 25):")
    for key, scenario in SCENARIOS.items():
        saving = scenario_savings(scenario, sunshine)
        print(f"  {key}: {scenario.name:36s} "
              f"{scenario.data_rate_gb_day:5.0f} GB/day x "
              f"{scenario.deployment_days:4.0f} d -> saves {saving * 100:3.0f}%")


if __name__ == "__main__":
    main()
