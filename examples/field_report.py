"""Field reporting: archive a day of operation as shareable artefacts.

Runs a full day (InSURE and the baseline for comparison), then writes
the artefacts a field operator would file:

* ``out/day_report.md``    — Markdown operating report
* ``out/comparison.md``    — InSURE-vs-baseline six-metric comparison
* ``out/trace.csv``        — every recorded channel, for plotting
* ``out/summary.json``     — machine-readable run summary
* ``out/solar_day.csv``    — the solar input, replayable via
                             ``repro.telemetry.io.load_day_trace_csv``

Run:  python examples/field_report.py [output_dir]
"""

import sys
from pathlib import Path

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.telemetry.io import (
    export_day_trace_csv,
    export_recorder_csv,
    save_summary_json,
)
from repro.telemetry.plots import channel_panel
from repro.telemetry.report import render_comparison, render_summary
from repro.workloads import SeismicAnalysis


def main() -> None:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "out")
    out.mkdir(parents=True, exist_ok=True)

    trace = make_day_trace("cloudy", target_mean_w=650.0, seed=17)
    runs = {}
    systems = {}
    for controller in ("insure", "baseline"):
        system = build_system(trace, SeismicAnalysis(), controller=controller,
                              seed=17, initial_soc=0.55)
        runs[controller] = system.run()
        systems[controller] = system

    insure_system = systems["insure"]
    report_path = out / "day_report.md"
    report_path.write_text(render_summary(runs["insure"],
                                          title="InSURE field day report"))
    (out / "comparison.md").write_text(
        render_comparison(runs["insure"], runs["baseline"])
    )
    export_recorder_csv(insure_system.recorder, out / "trace.csv")
    save_summary_json(runs["insure"], out / "summary.json",
                      extra={"seed": 17, "solar_profile": "cloudy"})
    export_day_trace_csv(trace, out / "solar_day.csv")

    print(f"artefacts written to {out}/")
    for name in ("day_report.md", "comparison.md", "trace.csv",
                 "summary.json", "solar_day.csv"):
        size = (out / name).stat().st_size
        print(f"  {name:16s} {size:8,d} bytes")

    print("\nDay at a glance:")
    print(channel_panel(
        insure_system.recorder,
        ["solar_w", "demand_w", "stored_wh", "mean_voltage"],
        labels={"solar_w": "solar (W)", "demand_w": "demand (W)",
                "stored_wh": "buffer (Wh)", "mean_voltage": "voltage (V)"},
    ))


if __name__ == "__main__":
    main()
