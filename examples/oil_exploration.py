"""Oil-exploration case study: seismic batch analysis in the field.

The paper's first in-situ application: a geographical survey of a 225 km²
oil field produces 114 GB of micro-seismic data twice a day, processed by
a Madagascar-style velocity analysis.  This example runs the same day
under InSURE and under the unified-buffer baseline and prints the
head-to-head comparison of Figure 20, plus the operating timeline.

Run:  python examples/oil_exploration.py [low|high]
"""

import sys

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.telemetry.analyzer import all_improvements
from repro.workloads import SeismicAnalysis


def run_day(controller: str, mean_w: float, seed: int = 7):
    trace = make_day_trace(
        "sunny" if mean_w >= 800 else "cloudy",
        target_mean_w=mean_w,
        seed=seed,
    )
    system = build_system(
        trace,
        SeismicAnalysis(),
        controller=controller,
        initial_soc=0.55,
        seed=seed,
    )
    return system, system.run()


def print_timeline(system, label: str) -> None:
    print(f"\n  {label} operating timeline:")
    interesting = ("load.checkpoint_stop", "load.restart", "buffer.online",
                   "power.unserved")
    shown = 0
    for event in system.events:
        if event.kind in interesting and shown < 8:
            hour = 7.0 + event.t / 3600.0
            detail = ", ".join(f"{k}={v}" for k, v in event.data.items())
            print(f"    {hour:5.2f}h  {event.kind:22s} {detail}")
            shown += 1
    if shown == 0:
        print("    (uninterrupted operation)")


def main() -> None:
    level = sys.argv[1] if len(sys.argv) > 1 else "low"
    mean_w = 1000.0 if level == "high" else 500.0
    print(f"Seismic case study at {level} solar generation ({mean_w:.0f} W avg)")
    print("=" * 60)

    systems = {}
    summaries = {}
    for controller in ("insure", "baseline"):
        systems[controller], summaries[controller] = run_day(controller, mean_w)

    print(f"\n{'metric':28s} {'InSURE':>10s} {'baseline':>10s}")
    insure, base = summaries["insure"], summaries["baseline"]
    rows = [
        ("uptime (%)", insure.availability_pct, base.availability_pct),
        ("throughput (GB/h)", insure.throughput_gb_per_hour,
         base.throughput_gb_per_hour),
        ("processed (GB)", insure.processed_gb, base.processed_gb),
        ("mean delay (min)", insure.mean_delay_minutes, base.mean_delay_minutes),
        ("e-Buffer avail (Wh)", insure.energy_availability_wh,
         base.energy_availability_wh),
        ("battery life (days)", insure.projected_life_days,
         base.projected_life_days),
        ("perf per Ah (GB)", insure.perf_per_ah_gb, base.perf_per_ah_gb),
        ("on/off cycles", insure.on_off_cycles, base.on_off_cycles),
    ]
    for name, a, b in rows:
        print(f"{name:28s} {a:10.1f} {b:10.1f}")

    print("\nInSURE improvement over baseline (Figure 20 shape):")
    for metric, value in all_improvements(insure, base).items():
        print(f"  {metric:18s} {value * 100:+6.0f} %")

    print_timeline(systems["insure"], "InSURE")
    print_timeline(systems["baseline"], "baseline")


if __name__ == "__main__":
    main()
