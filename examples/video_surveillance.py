"""Video-surveillance case study: a continuous stream in the wild.

The paper's second in-situ application: 24 cameras at 1280x720/5 fps
stream 0.21 GB of footage per minute to a Hadoop-style pattern
recognition pipeline.  This example runs a cloudy day under InSURE and
renders an hour-by-hour ASCII dashboard of solar input, VM scaling,
buffer state and stream backlog — the VM-count actuation of the temporal
power manager at work.

Run:  python examples/video_surveillance.py
"""

import numpy as np

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.telemetry.plots import sparkline
from repro.workloads import VideoSurveillance


def main() -> None:
    trace = make_day_trace("cloudy", target_mean_w=600.0, seed=11)
    workload = VideoSurveillance()
    system = build_system(trace, workload, controller="insure",
                          initial_soc=0.55, seed=11)

    # Track stream backlog alongside the built-in channels.
    system.recorder.channel("backlog_gb", lambda: workload.backlog_gb)

    summary = system.run()
    recorder = system.recorder

    print("Video surveillance on a cloudy day — InSURE dashboard")
    print("=" * 64)
    print(f"{'solar input (W)':18s} {sparkline(recorder['solar_w'])}")
    print(f"{'server demand (W)':18s} {sparkline(recorder['demand_w'])}")
    print(f"{'running VMs':18s} {sparkline(recorder['running_vms'], lo=0, hi=8)}")
    print(f"{'buffer stored (Wh)':18s} {sparkline(recorder['stored_wh'])}")
    print(f"{'stream backlog(GB)':18s} {sparkline(recorder['backlog_gb'])}")
    print(f"{'':18s} {'7AM':<15s}{'noon':^18s}{'8PM':>15s}")

    print("\nDay summary")
    print("-" * 30)
    print(f"footage arrived        {0.21 * 60 * 13:6.1f} GB")
    print(f"footage processed      {summary.processed_gb:6.1f} GB")
    print(f"uptime                 {summary.availability_pct:6.1f} %")
    print(f"mean chunk delay       {summary.mean_delay_minutes:6.1f} min")
    print(f"end-of-day backlog     {workload.backlog_gb:6.1f} GB")
    print(f"VM control operations  {summary.vm_ctrl_times:6d}")

    # Show how the temporal manager matched VM count to the power budget.
    vms = recorder["running_vms"]
    solar = recorder["solar_w"]
    # Correlation between available power and allocated capacity.
    mask = solar > 1.0
    if mask.sum() > 10:
        corr = float(np.corrcoef(solar[mask], vms[mask])[0, 1])
        print(f"\nsolar-to-VM-count correlation: {corr:+.2f} "
              "(power-aware load matching)")


if __name__ == "__main__":
    main()
