"""Timestamped structured event log.

Discrete happenings — relay actuations, VM checkpoints, server power cycles,
operating-mode transitions — are recorded as events rather than sampled
channels.  Table 6 of the paper ("Power Ctrl. Times", "On/Off Cycles",
"VM Ctrl. Times") is computed by counting events of each kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any


@dataclass(frozen=True)
class Event:
    """A single simulation event.

    Attributes
    ----------
    t:
        Simulation time in seconds.
    kind:
        Event category, e.g. ``"relay.switch"`` or ``"vm.checkpoint"``.
    source:
        Name of the component that emitted the event.
    data:
        Free-form payload.
    """

    t: float
    kind: str
    source: str
    data: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event store with simple querying."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def emit(self, t: float, kind: str, source: str, **data: Any) -> Event:
        event = Event(t=float(t), kind=kind, source=source, data=data)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """All events whose kind equals or is prefixed by ``kind``.

        ``of_kind("relay")`` matches ``relay.switch`` and ``relay.fault``.
        """
        prefix = kind + "."
        return [e for e in self._events if e.kind == kind or e.kind.startswith(prefix)]

    def count(self, kind: str) -> int:
        return len(self.of_kind(kind))

    def between(self, t0: float, t1: float) -> list[Event]:
        """Events with ``t0 <= t < t1``."""
        return [e for e in self._events if t0 <= e.t < t1]

    def last(self, kind: str) -> Event | None:
        matches = self.of_kind(kind)
        return matches[-1] if matches else None
