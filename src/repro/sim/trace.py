"""Structured trace recording.

A :class:`TraceRecorder` samples named float channels once per tick (or at a
configurable decimation) and exposes them as numpy arrays for analysis.  It
is the software analogue of the prototype's transducer logging: Figures 5,
14 and 16 of the paper are rendered from exactly this kind of multi-channel
voltage/power trace.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.sim.clock import Clock

Sampler = Callable[[], float]


class TraceRecorder:
    """Samples named channels each tick.

    Parameters
    ----------
    every:
        Record once every ``every`` ticks (decimation for long runs).
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self._samplers: dict[str, Sampler] = {}
        self._data: dict[str, list[float]] = {"t": []}

    def channel(self, name: str, sampler: Sampler) -> None:
        """Register a channel; ``sampler`` is called at record time."""
        if name == "t":
            raise ValueError("channel name 't' is reserved for time")
        if name in self._samplers:
            raise ValueError(f"duplicate channel: {name!r}")
        self._samplers[name] = sampler
        self._data[name] = []

    def channels(self, samplers: Mapping[str, Sampler]) -> None:
        for name, sampler in samplers.items():
            self.channel(name, sampler)

    def __call__(self, clock: Clock) -> None:
        """Observer hook for :meth:`repro.sim.engine.Engine.observe`."""
        if clock.step_index % self.every:
            return
        self._data["t"].append(clock.t)
        for name, sampler in self._samplers.items():
            self._data[name].append(float(sampler()))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return np.asarray(self._data[name], dtype=float)
        except KeyError:
            raise KeyError(f"no trace channel named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data["t"])

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name in self._data if name != "t")

    def as_dict(self) -> dict[str, np.ndarray]:
        """All channels (including time) as numpy arrays."""
        return {name: np.asarray(vals, dtype=float) for name, vals in self._data.items()}
