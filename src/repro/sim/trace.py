"""Structured trace recording.

A :class:`TraceRecorder` samples named float channels once per tick (or at a
configurable decimation) and exposes them as numpy arrays for analysis.  It
is the software analogue of the prototype's transducer logging: Figures 5,
14 and 16 of the paper are rendered from exactly this kind of multi-channel
voltage/power trace.

Samples land in compact ``array('d')`` buffers (C-contiguous doubles with
amortised O(1) append) rather than Python lists of boxed floats, and the
numpy views handed to analysis code are cached per channel and invalidated
only when new samples arrive — :mod:`repro.telemetry.analyzer` indexes the
same channels repeatedly, so re-materialising a fresh array per access was
pure waste.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Mapping

import numpy as np

from repro.sim.clock import Clock

Sampler = Callable[[], float]


class TraceRecorder:
    """Samples named channels each tick.

    Parameters
    ----------
    every:
        Record once every ``every`` ticks (decimation for long runs).
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self._samplers: dict[str, Sampler] = {}
        self._data: dict[str, array] = {"t": array("d")}
        #: (buffer.append, sampler) pairs, pre-bound for the record loop.
        self._record_plan: list[tuple[Callable[[float], None], Sampler]] = []
        self._t_append = self._data["t"].append
        #: Cached numpy conversions, invalidated when the length changes.
        self._np_cache: dict[str, np.ndarray] = {}
        self._np_cache_len = -1

    def channel(self, name: str, sampler: Sampler) -> None:
        """Register a channel; ``sampler`` is called at record time."""
        if name == "t":
            raise ValueError("channel name 't' is reserved for time")
        if name in self._samplers:
            raise ValueError(f"duplicate channel: {name!r}")
        buffer = array("d")
        self._samplers[name] = sampler
        self._data[name] = buffer
        self._record_plan.append((buffer.append, sampler))

    def channels(self, samplers: Mapping[str, Sampler]) -> None:
        for name, sampler in samplers.items():
            self.channel(name, sampler)

    def __call__(self, clock: Clock) -> None:
        """Observer hook for :meth:`repro.sim.engine.Engine.observe`."""
        if clock.step_index % self.every:
            return
        self._t_append(clock.t)
        for append, sampler in self._record_plan:
            append(float(sampler()))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _as_array(self, name: str) -> np.ndarray:
        length = len(self._data["t"])
        if length != self._np_cache_len:
            self._np_cache.clear()
            self._np_cache_len = length
        cached = self._np_cache.get(name)
        if cached is None:
            cached = np.frombuffer(self._data[name], dtype=float).copy()
            self._np_cache[name] = cached
        return cached

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._data:
            raise KeyError(f"no trace channel named {name!r}")
        return self._as_array(name)

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data["t"])

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name in self._data if name != "t")

    def as_dict(self) -> dict[str, np.ndarray]:
        """All channels (including time) as numpy arrays."""
        return {name: self._as_array(name) for name in self._data}
