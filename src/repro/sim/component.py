"""Component protocol for the simulation engine.

A component is anything the engine steps once per tick.  Components are
stepped in registration order, which the experiment assemblies choose so
that power flows resolve in a fixed causal order each tick:

    solar generation -> controller decisions -> battery/charger physics ->
    server cluster -> telemetry

Sub-classing :class:`Component` is optional — any object exposing ``name``
and ``step(clock)`` satisfies the engine — but the base class provides the
conventional lifecycle hooks.
"""

from __future__ import annotations

from repro.sim.clock import Clock


class Component:
    """Base class for simulation components.

    Parameters
    ----------
    name:
        Unique identifier used in traces, event logs and engine lookups.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        self.name = name

    def start(self, clock: Clock) -> None:
        """Called once before the first step.  Override as needed."""

    def step(self, clock: Clock) -> None:
        """Advance the component by one tick.  Override in subclasses."""
        raise NotImplementedError

    def finish(self, clock: Clock) -> None:
        """Called once after the final step.  Override as needed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
