"""Fixed-step simulation engine.

The engine owns the clock and a registry of components.  Each tick it steps
every component in registration order, then fires any per-tick observers
(used by the trace recorder).  Runs are bounded by a duration and may end
early via a stop condition (e.g. "battery bank exhausted and no solar").

The tick loop is a *chunked kernel*: component ``step`` methods, observers
and stop conditions are pre-bound into flat lists once per run, the clock is
advanced inline, and the loop is specialised for the common case of no stop
conditions.  A day-long full-system run executes ~17k ticks, so shaving the
per-tick dispatch overhead is a first-order win for every experiment.

When a span tracer is attached (``engine.tracer``, see
:mod:`repro.obs.spans`) the run switches to an instrumented kernel that
attributes wall time to each component on sampled ticks.  The tracer only
*observes* — with it attached or not, same-seed runs take the identical
sequence of component steps and produce bit-identical traces.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.sim.clock import Clock
from repro.sim.component import Component


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Engine:
    """Steps registered components against a shared clock.

    Parameters
    ----------
    dt:
        Step size in seconds.
    start_hour:
        Wall-clock hour of day at ``t == 0``.
    stop_check_stride:
        Evaluate stop conditions once every this many ticks.  The default
        of 1 preserves exact early-stop semantics; raise it for runs where
        a few ticks of overshoot are acceptable in exchange for speed.
    """

    def __init__(
        self,
        dt: float = 1.0,
        start_hour: float = 7.0,
        stop_check_stride: int = 1,
    ) -> None:
        if stop_check_stride < 1:
            raise ValueError(
                f"stop_check_stride must be >= 1, got {stop_check_stride}"
            )
        self.clock = Clock(dt=dt, start_hour=start_hour)
        self.stop_check_stride = int(stop_check_stride)
        #: Optional span tracer (duck-typed, see repro.obs.spans).  None
        #: keeps the untraced fast path.
        self.tracer = None
        self._components: list[Component] = []
        self._by_name: dict[str, Component] = {}
        self._observers: list[tuple[str, Callable[[Clock], None]]] = []
        self._stop_conditions: list[Callable[[Clock], bool]] = []
        self._started = False
        self._finished = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; returns it for fluent assembly."""
        if self._started:
            raise SimulationError("cannot add components after the run started")
        if component.name in self._by_name:
            raise SimulationError(f"duplicate component name: {component.name!r}")
        self._components.append(component)
        self._by_name[component.name] = component
        return component

    def add_all(self, components: Iterable[Component]) -> None:
        for component in components:
            self.add(component)

    def get(self, name: str) -> Component:
        """Look up a registered component by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"no component named {name!r}") from None

    def observe(self, callback: Callable[[Clock], None],
                name: str | None = None) -> None:
        """Register a per-tick observer fired after all components step.

        ``name`` labels the observer's span in the traced kernel (so the
        profile attributes recorder/checker/alert cost individually);
        unnamed observers are labelled after their class.
        """
        if name is None:
            name = type(callback).__name__.lower()
        self._observers.append((f"obs.{name}", callback))

    def stop_when(self, condition: Callable[[Clock], bool]) -> None:
        """Register a predicate that ends the run early when it returns True."""
        self._stop_conditions.append(condition)

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    @property
    def finished(self) -> bool:
        """Whether component ``finish`` hooks have fired."""
        return self._finished

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration: float) -> Clock:
        """Run for ``duration`` simulated seconds (or until a stop condition).

        Returns the clock so callers can inspect how far the run got.

        ``run`` may be called again to extend a run (e.g. multi-day
        operation); ``start`` and ``finish`` hooks each fire exactly once,
        the first time the engine starts and finishes respectively.
        """
        steps = self.begin(duration)
        self._run_kernel(steps)
        self.end()
        return self.clock

    def begin(self, duration: float) -> int:
        """Open a (possibly sliced) run: fire ``start`` hooks, size the run.

        Returns the tick count covering ``duration``.  Together with
        :meth:`advance` and :meth:`end` this is the non-blocking face of
        the engine: a host may interleave many engines on one thread by
        advancing each a bounded slice of ticks at a time.  ``run`` is
        exactly ``begin`` + one full-length ``advance`` + ``end``, so
        sliced stepping takes the identical sequence of component steps
        and produces bit-identical traces.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not self._components:
            raise SimulationError("no components registered")
        clock = self.clock
        if not self._started:
            self._started = True
            for component in self._components:
                component.start(clock)
        return max(1, round(duration / clock.dt))

    def advance(self, ticks: int) -> int:
        """Step up to ``ticks`` ticks; returns the count actually executed.

        A shortfall (return value < ``ticks``) means a stop condition
        ended the run early — callers should stop advancing and call
        :meth:`end`.  Requires a prior :meth:`begin` (or :meth:`run`).
        """
        if ticks <= 0:
            return 0
        if not self._started:
            raise SimulationError("advance() before begin()")
        return self._run_kernel(int(ticks))

    def end(self) -> None:
        """Close the run: fire ``finish`` hooks (exactly once)."""
        if not self._finished:
            self._finished = True
            for component in self._components:
                component.finish(self.clock)

    def _run_kernel(self, steps: int) -> int:
        """The chunked tick loop: pre-bound dispatch, inline clock advance.

        Returns the number of ticks executed (< ``steps`` only when a
        stop condition ended the run early).
        """
        if self.tracer is not None:
            return self._run_kernel_traced(steps)
        clock = self.clock
        dt = clock.dt
        step_fns = [component.step for component in self._components]
        observers = [callback for _, callback in self._observers]
        conditions = list(self._stop_conditions)
        stride = self.stop_check_stride
        index = clock.step_index

        if not conditions:
            # Fast path: fixed tick count, nothing can end the run early.
            for _ in range(steps):
                for step_fn in step_fns:
                    step_fn(clock)
                for observer in observers:
                    observer(clock)
                index += 1
                clock.step_index = index
                clock.t = index * dt
            return steps

        # Run stride-sized chunks of ticks, then evaluate stop conditions
        # once per chunk (after every tick with the default stride of 1).
        remaining = steps
        while remaining > 0:
            ticks = min(stride, remaining)
            for _ in range(ticks):
                for step_fn in step_fns:
                    step_fn(clock)
                for observer in observers:
                    observer(clock)
                index += 1
                clock.step_index = index
                clock.t = index * dt
            remaining -= ticks
            stop = False
            for condition in conditions:
                if condition(clock):
                    stop = True
                    break
            if stop:
                break
        return steps - remaining

    def _run_kernel_traced(self, steps: int) -> int:
        """Instrumented tick loop: per-component spans on sampled ticks.

        Mirrors ``_run_kernel`` exactly — same step order, same chunked
        stop-condition cadence — but routes each tick through the tracer.
        On unsampled ticks the only extra work is one ``begin_tick`` call.
        """
        clock = self.clock
        dt = clock.dt
        tracer = self.tracer
        pairs = [(component.name, component.step) for component in self._components]
        observer_pairs = list(self._observers)
        observers = [callback for _, callback in observer_pairs]
        conditions = list(self._stop_conditions)
        stride = self.stop_check_stride
        index = clock.step_index

        remaining = steps
        while remaining > 0:
            ticks = min(stride, remaining) if conditions else remaining
            for _ in range(ticks):
                if tracer.begin_tick(index, clock.t):
                    for name, step_fn in pairs:
                        with tracer.span(name):
                            step_fn(clock)
                    for name, observer in observer_pairs:
                        with tracer.span(name):
                            observer(clock)
                    tracer.end_tick()
                else:
                    for _, step_fn in pairs:
                        step_fn(clock)
                    for observer in observers:
                        observer(clock)
                index += 1
                clock.step_index = index
                clock.t = index * dt
            remaining -= ticks
            if conditions:
                stop = False
                for condition in conditions:
                    if condition(clock):
                        stop = True
                        break
                if stop:
                    break
        return steps - remaining
