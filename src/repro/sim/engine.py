"""Fixed-step simulation engine.

The engine owns the clock and a registry of components.  Each tick it steps
every component in registration order, then fires any per-tick observers
(used by the trace recorder).  Runs are bounded by a duration and may end
early via a stop condition (e.g. "battery bank exhausted and no solar").
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.sim.clock import Clock
from repro.sim.component import Component


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Engine:
    """Steps registered components against a shared clock.

    Parameters
    ----------
    dt:
        Step size in seconds.
    start_hour:
        Wall-clock hour of day at ``t == 0``.
    """

    def __init__(self, dt: float = 1.0, start_hour: float = 7.0) -> None:
        self.clock = Clock(dt=dt, start_hour=start_hour)
        self._components: list[Component] = []
        self._by_name: dict[str, Component] = {}
        self._observers: list[Callable[[Clock], None]] = []
        self._stop_conditions: list[Callable[[Clock], bool]] = []
        self._started = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; returns it for fluent assembly."""
        if self._started:
            raise SimulationError("cannot add components after the run started")
        if component.name in self._by_name:
            raise SimulationError(f"duplicate component name: {component.name!r}")
        self._components.append(component)
        self._by_name[component.name] = component
        return component

    def add_all(self, components: Iterable[Component]) -> None:
        for component in components:
            self.add(component)

    def get(self, name: str) -> Component:
        """Look up a registered component by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"no component named {name!r}") from None

    def observe(self, callback: Callable[[Clock], None]) -> None:
        """Register a per-tick observer fired after all components step."""
        self._observers.append(callback)

    def stop_when(self, condition: Callable[[Clock], bool]) -> None:
        """Register a predicate that ends the run early when it returns True."""
        self._stop_conditions.append(condition)

    @property
    def components(self) -> tuple[Component, ...]:
        return tuple(self._components)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration: float) -> Clock:
        """Run for ``duration`` simulated seconds (or until a stop condition).

        Returns the clock so callers can inspect how far the run got.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not self._components:
            raise SimulationError("no components registered")

        if not self._started:
            self._started = True
            for component in self._components:
                component.start(self.clock)

        steps = max(1, round(duration / self.clock.dt))
        for _ in range(steps):
            for component in self._components:
                component.step(self.clock)
            for observer in self._observers:
                observer(self.clock)
            self.clock.advance()
            if any(cond(self.clock) for cond in self._stop_conditions):
                break

        for component in self._components:
            component.finish(self.clock)
        return self.clock
