"""Deterministic named random streams.

Every stochastic model (cloud cover, sensor noise, workload jitter) draws
from its own child generator derived from a single experiment seed and the
stream's name.  Adding a new consumer therefore never perturbs the draws
seen by existing consumers, which keeps regression baselines stable.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators.

    Parameters
    ----------
    seed:
        Experiment-level seed.  Two factories with the same seed hand out
        identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory namespaced under ``name``."""
        digest = hashlib.sha256(f"{self.seed}:ns:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))
