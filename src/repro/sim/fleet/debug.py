"""Lockstep scalar-vs-fleet comparator (bring-up and triage tooling).

Steps one golden-cell configuration through the scalar engine and a
1-site :class:`~repro.sim.fleet.kernel._FleetBatch` tick by tick,
diffing the visible state after every tick.  When the kernels diverge
this pinpoints the first tick and the first variable that moved, which
is far cheaper than bisecting a 17 280-tick day run from its summary.

Not used by the simulation paths; imported by tests and by hand during
kernel work::

    PYTHONPATH=src python -m repro.sim.fleet.debug insure video sunny
"""

from __future__ import annotations

from typing import Any

from repro.sim.fleet.kernel import _FleetBatch
from repro.sim.fleet.validator import spec_for_cell

_MODE_NAMES = ("OFFLINE", "CHARGING", "STANDBY", "DISCHARGING")
_SSTATE_NAMES = ("OFF", "BOOTING", "ON", "SAVING")


def build_scalar_system(controller: str, workload: str, weather: str):
    """Build the scalar reference system exactly as the golden cell does."""
    from repro.core.system import build_system
    from repro.experiments.runner import derive_seed
    from repro.solar.traces import make_day_trace
    from repro.validate.golden import (
        BASE_SEED,
        DT_SECONDS,
        INITIAL_SOC,
        TARGET_MEAN_W,
        _make_workload,
    )

    seed = derive_seed(BASE_SEED, controller, workload, weather)
    trace = make_day_trace(weather, dt_seconds=DT_SECONDS, seed=seed,
                           target_mean_w=TARGET_MEAN_W)
    return build_system(
        trace, _make_workload(workload), controller=controller, seed=seed,
        initial_soc=INITIAL_SOC, dt=DT_SECONDS,
    )


def snapshot_scalar(system) -> dict[str, Any]:
    snap: dict[str, Any] = {}
    for u, unit in enumerate(system.bank):
        snap[f"y1[{u}]"] = unit.kibam.y1
        snap[f"y2[{u}]"] = unit.kibam.y2
        snap[f"mode[{u}]"] = unit.mode.name
        snap[f"wear_dis[{u}]"] = unit.wear.discharge_ah
        sense = system.telemetry.senses[unit.name]
        snap[f"sense_v[{u}]"] = sense.voltage
        snap[f"sense_i[{u}]"] = sense.current
        snap[f"est[{u}]"] = sense.soc_estimate
        snap[f"sense_dis[{u}]"] = sense.discharge_ah
    for s, server in enumerate(system.rack.servers):
        snap[f"sstate[{s}]"] = server.state.name
        snap[f"duty[{s}]"] = server.duty
        snap[f"placed[{s}]"] = len(server.vms)
    snap["on_off"] = system.rack.total_on_off_cycles()
    snap["alloc_target"] = system.allocator.target_vms
    snap["vm_ops"] = system.allocator.vm_ctrl_ops
    snap["switch_ops"] = system.switchnet.switch_operations
    snap["ema"] = system.controller.solar_ema_w
    snap["ema_slow"] = system.controller.solar_ema_slow_w
    stats = system.workload.stats
    for attr in ("processed_gb", "crash_count"):
        if hasattr(stats, attr):
            snap[f"wl.{attr}"] = getattr(stats, attr)
    return snap


def snapshot_batch(batch: _FleetBatch, i: int = 0) -> dict[str, Any]:
    snap: dict[str, Any] = {}
    for u in range(batch.b):
        snap[f"y1[{u}]"] = float(batch.y1[i, u])
        snap[f"y2[{u}]"] = float(batch.y2[i, u])
        snap[f"mode[{u}]"] = _MODE_NAMES[int(batch.mode[i, u])]
        snap[f"wear_dis[{u}]"] = float(batch.wear_dis[i, u])
        snap[f"sense_v[{u}]"] = float(batch.sense_v[i, u])
        snap[f"sense_i[{u}]"] = float(batch.sense_i[i, u])
        snap[f"est[{u}]"] = float(batch.est[i, u])
        snap[f"sense_dis[{u}]"] = float(batch.sense_dis[i, u])
    for s in range(batch.s):
        snap[f"sstate[{s}]"] = _SSTATE_NAMES[int(batch.sstate[i, s])]
        snap[f"duty[{s}]"] = int(batch.duty_deci[i]) / 10.0
        snap[f"placed[{s}]"] = int(batch.placed[i, s])
    snap["on_off"] = int(batch.on_off[i])
    snap["alloc_target"] = int(batch.alloc_target[i])
    snap["vm_ops"] = int(batch.vm_ops[i])
    snap["switch_ops"] = int(batch.switch_ops[i])
    snap["ema"] = float(batch.ema[i])
    snap["ema_slow"] = float(batch.ema_slow[i])
    snap["wl.processed_gb"] = float(batch.processed[i])
    snap["wl.crash_count"] = int(batch.crash_count[i])
    return snap


def diff_snapshots(
    scalar: dict[str, Any], batch: dict[str, Any], atol: float = 0.0
) -> dict[str, tuple[Any, Any]]:
    diffs: dict[str, tuple[Any, Any]] = {}
    for key in scalar:
        if key not in batch:
            continue
        a, b = scalar[key], batch[key]
        if isinstance(a, float) or isinstance(b, float):
            if abs(float(a) - float(b)) > atol:
                diffs[key] = (a, b)
        elif a != b:
            diffs[key] = (a, b)
    return diffs


def run_lockstep(
    controller: str,
    workload: str,
    weather: str,
    max_ticks: int = 17280,
    atol: float = 0.0,
    verbose: bool = True,
) -> tuple[int, dict[str, tuple[Any, Any]]] | None:
    """Step both kernels; return (tick, diffs) at first divergence or None."""
    from repro.sim.fleet import controllers

    system = build_scalar_system(controller, workload, weather)
    spec = spec_for_cell(controller, workload, weather)
    batch = _FleetBatch([spec])
    controllers.start(batch)

    dt = batch.dt
    for k in range(min(max_ticks, batch.steps)):
        system.engine.run(dt)
        batch.step_tick(k)
        diffs = diff_snapshots(snapshot_scalar(system), snapshot_batch(batch),
                               atol=atol)
        if diffs:
            if verbose:
                print(f"tick {k} (t={k * dt:.0f}s): {len(diffs)} diffs")
                for key, (a, b) in sorted(diffs.items()):
                    print(f"  {key}: scalar={a!r} fleet={b!r}")
            return k, diffs
    if verbose:
        print(f"lockstep clean for {min(max_ticks, batch.steps)} ticks")
    return None


def main(argv: list[str] | None = None) -> int:
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) < 3:
        print("usage: python -m repro.sim.fleet.debug "
              "<controller> <workload> <weather> [max_ticks]")
        return 2
    max_ticks = int(args[3]) if len(args) > 3 else 17280
    result = run_lockstep(args[0], args[1], args[2], max_ticks=max_ticks)
    return 1 if result else 0


if __name__ == "__main__":
    raise SystemExit(main())
