"""Gate the vectorized fleet kernel against golden-matrix summaries.

The scalar chunked kernel is the bit-exact reference for the physics; the
fleet kernel re-derives every expression in SoA form and is allowed only
ulp-level drift.  :class:`FleetValidator` replays the 12 golden-matrix
cells plus the policy scenario cells through
:func:`repro.sim.fleet.kernel.simulate_fleet` and compares
each run summary against the stored golden record using the same
tolerance model as the physics-invariant checker (relative ``REL_TOL``
with an absolute floor ``ABS_TOL``), applied to the 6-significant-digit
fingerprints that the golden harness itself stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from repro.sim.fleet.kernel import SiteSpec, simulate_fleet
from repro.validate.golden import (
    BASE_SEED,
    DEFAULT_GOLDEN_DIR,
    DT_SECONDS,
    DURATION_S,
    INITIAL_SOC,
    SUMMARY_SIG_DIGITS,
    TARGET_MEAN_W,
    cell_name,
    load_record,
    matrix_cells,
)

#: Tolerance model shared with the invariant checker: a summary variable
#: matches when |fleet - golden| <= max(REL_TOL * |golden|, ABS_TOL).
REL_TOL = 1e-6
ABS_TOL = 1e-3

#: Integer-valued summary variables must match exactly — they count
#: discrete controller decisions (switch ops, crashes, on/off cycles).
EXACT_VARS = frozenset(
    {"power_ctrl_times", "vm_ctrl_times", "on_off_cycles", "crash_count"}
)


@dataclass(frozen=True)
class CellVerdict:
    """Outcome of validating one golden cell against the fleet kernel."""

    cell: str
    ok: bool
    mismatches: dict[str, tuple[Any, Any]] = field(default_factory=dict)

    def describe(self) -> str:
        if self.ok:
            return f"{self.cell}: OK"
        parts = ", ".join(
            f"{var} fleet={got!r} golden={want!r}"
            for var, (got, want) in sorted(self.mismatches.items())
        )
        return f"{self.cell}: MISMATCH ({parts})"


def fingerprint_dict(summary: Mapping[str, Any]) -> dict[str, Any]:
    """Apply the golden fingerprint rounding to a plain summary dict.

    Mirrors :func:`repro.validate.golden.summary_fingerprint`, which takes
    a RunSummary dataclass; fleet summaries are already plain dicts.
    """
    out: dict[str, Any] = {}
    for var, value in sorted(summary.items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            out[var] = value
        elif isinstance(value, int):
            out[var] = value
        else:
            out[var] = float(f"{value:.{SUMMARY_SIG_DIGITS}g}")
    return out


def _values_match(got: Any, want: Any, *, exact: bool) -> bool:
    if isinstance(want, bool) or isinstance(got, bool):
        return bool(got) == bool(want)
    if exact or (isinstance(want, int) and isinstance(got, int)):
        return int(got) == int(want)
    try:
        gf = float(got)
        wf = float(want)
    except (TypeError, ValueError):
        return got == want
    return abs(gf - wf) <= max(REL_TOL * abs(wf), ABS_TOL)


def compare_summaries(
    cell: str,
    fleet_summary: Mapping[str, Any],
    golden_summary: Mapping[str, Any],
) -> CellVerdict:
    """Compare a fleet summary against a golden one at fingerprint precision."""
    got_fp = fingerprint_dict(fleet_summary)
    want_fp = fingerprint_dict(golden_summary)
    mismatches: dict[str, tuple[Any, Any]] = {}
    for var in sorted(set(got_fp) | set(want_fp)):
        if var not in got_fp or var not in want_fp:
            mismatches[var] = (got_fp.get(var, "<missing>"),
                               want_fp.get(var, "<missing>"))
            continue
        if not _values_match(got_fp[var], want_fp[var], exact=var in EXACT_VARS):
            mismatches[var] = (got_fp[var], want_fp[var])
    return CellVerdict(cell=cell, ok=not mismatches, mismatches=mismatches)


def spec_for_cell(
    controller: str,
    workload: str,
    weather: str,
    *,
    duration_s: float = DURATION_S,
    scenario: str | None = None,
) -> SiteSpec:
    """Build the SiteSpec matching one golden cell's configuration.

    With ``scenario`` set, the seed derives from the scenario name (the
    plant axes must already be the scenario's — use
    :func:`scenario_cell_tuple`) and the kernel applies its policies.
    """
    from repro.experiments.runner import derive_seed
    from repro.solar.traces import make_day_trace

    if scenario is not None:
        from repro.experiments.scenarios import scenario_seed

        seed = scenario_seed(scenario)
    else:
        seed = derive_seed(BASE_SEED, controller, workload, weather)
    trace = make_day_trace(
        weather, dt_seconds=DT_SECONDS, seed=seed, target_mean_w=TARGET_MEAN_W
    )
    return SiteSpec(
        controller=controller,
        workload=workload,
        seed=seed,
        initial_soc=INITIAL_SOC,
        trace_power_w=tuple(trace.power_w),
        trace_dt_s=DT_SECONDS,
        duration_s=duration_s,
        scenario=scenario,
    )


def scenario_cell_tuple(scenario: str) -> tuple[str, str, str, str]:
    """The 4-tuple cell for a policy scenario (plant axes + scenario name)."""
    from repro.experiments.scenarios import get_scenario

    spec = get_scenario(scenario)
    return (spec.controller, spec.workload, spec.weather, scenario)


class FleetValidator:
    """Validate the fleet kernel against the stored golden matrix.

    The validator is the acceptance gate for the vectorized path: all 12
    cells must match their golden summaries within the invariant
    tolerance before the ``fleet`` backend is trusted for sweeps.
    """

    def __init__(self, golden_dir: Path | None = None) -> None:
        self.golden_dir = Path(golden_dir) if golden_dir else DEFAULT_GOLDEN_DIR

    def cells(self) -> list[tuple[str, str, str]]:
        """The 12 golden-matrix cells (scenario cells are separate — see
        :meth:`scenario_cells` / :meth:`all_cells`)."""
        return [
            (cell["controller"], cell["workload"], cell["weather"])
            for cell in matrix_cells()
        ]

    def scenario_cells(self) -> list[tuple[str, str, str, str]]:
        """The policy scenario cells as 4-tuples (axes + scenario name)."""
        from repro.experiments.scenarios import scenario_names

        return [scenario_cell_tuple(name) for name in scenario_names()]

    def all_cells(self) -> list[tuple]:
        return list(self.cells()) + list(self.scenario_cells())

    def validate_cells(
        self, cells: Sequence[tuple] | None = None
    ) -> list[CellVerdict]:
        """Run the fleet kernel over *cells* and compare against goldens.

        Cells are ``(controller, workload, weather)`` triples or
        ``(controller, workload, weather, scenario)`` 4-tuples; the
        default covers the matrix plus every scenario.  All requested
        cells run in a single ``simulate_fleet`` batch so the validator
        also exercises the mixed-group scatter path.
        """
        from repro.validate.golden import scenario_cell_name

        todo = [
            (cell if len(cell) == 4 else (*cell, None)) for cell in
            (list(cells) if cells is not None else self.all_cells())
        ]
        specs = [
            spec_for_cell(c, w, x, scenario=sc) for (c, w, x, sc) in todo
        ]
        summaries = simulate_fleet(specs)
        verdicts: list[CellVerdict] = []
        for (c, w, x, sc), summary in zip(todo, summaries, strict=True):
            name = scenario_cell_name(sc) if sc else cell_name(c, w, x)
            record = load_record(name, self.golden_dir)
            verdicts.append(
                compare_summaries(name, summary, record["summary"])
            )
        return verdicts

    def validate(
        self, cells: Sequence[tuple] | None = None
    ) -> CellVerdict | None:
        """Return the first failing verdict, or None when every cell matches."""
        for verdict in self.validate_cells(cells):
            if not verdict.ok:
                return verdict
        return None

    def assert_valid(
        self, cells: Sequence[tuple] | None = None
    ) -> None:
        """Raise AssertionError naming every mismatched variable."""
        failures = [v for v in self.validate_cells(cells) if not v.ok]
        if failures:
            detail = "; ".join(v.describe() for v in failures)
            raise AssertionError(f"fleet kernel diverged from goldens: {detail}")
