"""Structure-of-arrays batch kernel for fleets of in-situ sites.

One :class:`_FleetBatch` holds the full plant state of N sites as numpy
arrays — battery wells ``(N, B)``, server states ``(N, S)``, controller
scalars ``(N,)`` — and replays the scalar engine's per-tick component
order (source → controller → rack → plant → metrics) with one vectorized
op per physical expression.

Numerical contract: every arithmetic expression mirrors the scalar
implementation operation-for-operation (same association order, same
clamps, same ADC rounding), and per-site sensor noise comes from the same
sha256-derived ``RandomStreams`` generators consumed in the same block
pattern.  Elementwise IEEE ops are deterministic, so per-site trajectories
track the scalar kernel to the last ulp except where libm transcendentals
differ; the :class:`~repro.sim.fleet.validator.FleetValidator` gates the
result against scalar golden summaries within the invariant tolerance.

Divergent control flow (mode changes, VM reconciliation, charger
water-filling) is handled with boolean masks; loops run over the *small*
axes (B batteries, S servers, 4 water-filling rounds) so the per-site
axis N always stays vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships in the base install
    np = None

from repro.sim.rng import RandomStreams

__all__ = ["FleetUnsupported", "SiteSpec", "simulate_fleet"]


class FleetUnsupported(RuntimeError):
    """A cell uses features the vectorized kernel cannot batch.

    Callers (the ``fleet`` runner backend, the CLI) treat this as a
    routing signal: fall back to the scalar pool/serial paths.
    """


# Battery operating modes (matching repro.battery.unit.BatteryMode order).
_OFFLINE, _CHARGING, _STANDBY, _DISCHARGING = 0, 1, 2, 3
# Relay bus attachment (both relays open / charge closed / discharge closed).
_BUS_OFFLINE, _BUS_CHARGE, _BUS_LOAD = 0, 1, 2
#: Bus a mode maps to (repro.power.modes.bus_for_mode).
_BUS_FOR_MODE = (_BUS_OFFLINE, _BUS_CHARGE, _BUS_LOAD, _BUS_LOAD)
# Server lifecycle (matching repro.cluster.server.ServerState).
_OFF, _BOOTING, _ON, _SAVING = 0, 1, 2, 3

#: Transducer noise block length (repro.power.sensors.Transducer).
_NOISE_BLOCK = 256

_SUPPORTED_CONTROLLERS = ("insure", "baseline")
_SUPPORTED_WORKLOADS = ("video", "seismic")


@dataclass(frozen=True)
class SiteSpec:
    """One site of a fleet batch.

    ``trace_power_w`` / ``trace_dt_s`` are the solar day trace exactly as
    the scalar :class:`~repro.solar.field.TracePlayer` would replay it.
    Sites sharing (controller, workload, battery_count, server_count,
    dt_s, steps) are stepped in lockstep; anything else raises
    :class:`FleetUnsupported`.
    """

    controller: str
    workload: str
    seed: int
    initial_soc: float
    trace_power_w: tuple
    trace_dt_s: float
    battery_count: int = 3
    server_count: int = 4
    dt_s: float = 5.0
    duration_s: float | None = None
    #: Policy scenario overlay (a name from
    #: :mod:`repro.experiments.scenarios`); None runs the bare controller.
    scenario: str | None = None

    def resolved_duration_s(self) -> float:
        if self.duration_s is not None:
            return self.duration_s
        return len(self.trace_power_w) * self.trace_dt_s

    def steps(self) -> int:
        # Engine.run: steps = max(1, round(duration / dt))
        return max(1, round(self.resolved_duration_s() / self.dt_s))


def _check_supported(spec: SiteSpec) -> None:
    if spec.controller not in _SUPPORTED_CONTROLLERS:
        raise FleetUnsupported(f"controller {spec.controller!r} not batchable")
    if spec.workload not in _SUPPORTED_WORKLOADS:
        raise FleetUnsupported(f"workload {spec.workload!r} not batchable")
    if spec.trace_dt_s != spec.dt_s:
        raise FleetUnsupported("trace_dt_s must equal dt_s for the fleet kernel")
    if spec.dt_s < 0.5:
        raise FleetUnsupported("dt below the PLC scan period is not batchable")
    if spec.battery_count < 1 or spec.server_count < 1:
        raise FleetUnsupported("degenerate bank or rack")
    if spec.scenario is not None:
        _check_scenario_supported(spec.scenario)


#: Control methods the batch kernel can apply as masked array ops.
_FLEET_CONTROLS = frozenset({"duty_cap", "vm_retarget", "charge_current_cap"})


def _check_scenario_supported(scenario: str) -> None:
    """A scenario batches iff its signals are pure functions of time and
    its controls have an array port; anything else (plant-coupled signals
    like SoC/solar-forecast, checkpoint shedding) falls back to scalar."""
    from repro.experiments.scenarios import get_scenario
    from repro.policy.registry import make_signal
    from repro.policy.signals import DiurnalSignal

    try:
        spec = get_scenario(scenario)
    except ValueError as exc:
        raise FleetUnsupported(str(exc)) from None
    for pdef in spec.policies:
        if pdef.control not in _FLEET_CONTROLS:
            raise FleetUnsupported(
                f"policy control {pdef.control!r} not batchable"
            )
        if not isinstance(make_signal(pdef.signal), DiurnalSignal):
            raise FleetUnsupported(
                f"policy signal {pdef.signal!r} reads plant state; "
                "not batchable"
            )


def simulate_fleet(specs: Sequence[SiteSpec]) -> list[dict]:
    """Run every site and return per-site run summaries (dicts).

    Sites are grouped into homogeneous lockstep batches; results come back
    in input order.  Raises :class:`FleetUnsupported` if any site cannot
    be batched and ImportError when numpy is unavailable.
    """
    from repro.sim.fleet import require_numpy

    require_numpy()
    for spec in specs:
        _check_supported(spec)
    groups: dict[tuple, list[int]] = {}
    for index, spec in enumerate(specs):
        key = (
            spec.controller,
            spec.workload,
            spec.battery_count,
            spec.server_count,
            spec.dt_s,
            spec.steps(),
            spec.scenario,
        )
        groups.setdefault(key, []).append(index)
    out: list[dict | None] = [None] * len(specs)
    for indices in groups.values():
        batch = _FleetBatch([specs[i] for i in indices])
        for where, summary in zip(indices, batch.run(), strict=True):
            out[where] = summary
    return out  # type: ignore[return-value]


class _FleetBatch:
    """Lockstep SoA simulation of homogeneous sites.

    All mutable state lives in numpy arrays keyed on the site axis; the
    methods below are one-to-one ports of the scalar components they name
    in their docstrings.
    """

    def __init__(self, specs: Sequence[SiteSpec]) -> None:
        first = specs[0]
        self.specs = list(specs)
        self.controller = first.controller
        self.workload_kind = first.workload
        self.n = len(specs)
        self.b = first.battery_count
        self.s = first.server_count
        self.dt = first.dt_s
        self.steps = first.steps()
        self._init_constants()
        self._init_trace()
        self._init_battery()
        self._init_noise()
        self._init_servers()
        self._init_controller()
        self._init_workload()
        self._init_metrics()
        self._init_policies()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _init_constants(self) -> None:
        # Derived constants computed with the scalar code's expressions so
        # batched arithmetic starts from bit-identical values.
        dt = self.dt
        self.dt_h = dt / 3600.0
        # KiBaM (repro.battery.kibam, defaults c=0.62, k=4/h, 35 Ah)
        self.kib_c = 0.62
        self.kib_cap = 35.0
        self.kib_k = 4.0
        self.k_eff = self.kib_k * self.kib_c * (1.0 - self.kib_c) * self.kib_cap
        self.y1_cap = self.kib_c * self.kib_cap
        self.y2_cap = (1.0 - self.kib_c) * self.kib_cap
        # Voltage model (repro.battery.voltage)
        self.emf_empty = 23.0
        self.emf_full = 25.6
        self.r_internal = 0.03
        self.v_charge_max = 28.8
        self.v_cutoff = 23.3
        # Acceptance (repro.battery.acceptance)
        self.acc_bulk = 0.25 * self.kib_cap
        self.acc_floor = 0.01 * self.kib_cap
        self.acc_taper_start = 0.85
        self.acc_taper_exp = 4.0
        self.acc_gassing_soc = 0.88
        self.acc_gassing_frac = 0.3
        self.acc_parasitic = 0.6
        # Wear (repro.battery.wear)
        self.wear_lifetime = 17500.0
        self.wear_design_days = 1460.0
        self.wear_stress_rate = 0.3
        self.wear_rate_slope = 2.0
        self.wear_deep = 0.45
        self.wear_deep_slope = 1.5
        # Self discharge leak (repro.battery.unit.idle)
        self.leak_ah = 0.001 * self.kib_cap * dt / 86400.0
        self.leak_amps = self.leak_ah * 3600.0 / dt
        # Charger (repro.battery.charger)
        self.chg_eff = 0.94
        self.chg_overhead = 15.0
        self.float_amps = 0.01 * self.kib_cap
        # DC/DC converter (repro.power.converters.DCDCConverter)
        self.conv_rated = 2000.0
        self.conv_peak_eff = 0.955
        self.conv_fixed_loss = 12.0
        # PDU
        self.pdu_overhead = 2.0
        # Server profile (xeon-dl380)
        self.srv_idle = 280.0
        self.srv_peak = 450.0
        self.srv_boot_s = 660.0
        self.srv_save_s = 240.0
        self.srv_slots = 2
        self.cpu_share = 0.2
        # per_vm_w (repro.core.controller_base.Controller.__init__)
        u = self.cpu_share * self.srv_slots
        if u > 1.0:
            u = 1.0
        self.per_vm_w = (
            self.srv_idle + (self.srv_peak - self.srv_idle) * u
        ) / self.srv_slots
        # Shedding (repro.core.system.PlantCoupler)
        self.shed_tol_w = 30.0
        self.shed_tol_frac = 0.03
        self.nominal_v = 24.0

    def _init_trace(self) -> None:
        trace = np.zeros((self.n, self.steps), dtype=np.float64)
        for i, spec in enumerate(self.specs):
            power = np.asarray(spec.trace_power_w, dtype=np.float64)
            count = min(power.shape[0], self.steps)
            trace[i, :count] = power[:count]
        self.trace = trace

    def _init_battery(self) -> None:
        n, b = self.n, self.b
        soc0 = np.array([s.initial_soc for s in self.specs], dtype=np.float64)
        # BatteryUnit.__init__: y1 = soc*c*cap, y2 = soc*(1-c)*cap
        self.y1 = np.repeat((soc0 * self.kib_c * self.kib_cap)[:, None], b, axis=1)
        self.y2 = np.repeat(
            (soc0 * (1.0 - self.kib_c) * self.kib_cap)[:, None], b, axis=1
        )
        self.last_i = np.zeros((n, b), dtype=np.float64)
        self.mode = np.full((n, b), _STANDBY, dtype=np.int8)
        self.bus = np.full((n, b), _BUS_OFFLINE, dtype=np.int8)
        self.wear_dis = np.zeros((n, b), dtype=np.float64)
        self.wear_wt = np.zeros((n, b), dtype=np.float64)
        # Sensed state (repro.core.sensing.BatterySense)
        self.sense_v = np.zeros((n, b), dtype=np.float64)
        self.sense_i = np.zeros((n, b), dtype=np.float64)
        self.est = np.repeat(soc0[:, None], b, axis=1)
        self.sense_dis = np.zeros((n, b), dtype=np.float64)
        self.rest_s = np.zeros((n, b), dtype=np.float64)

    def _init_noise(self) -> None:
        # One generator per (site, battery, channel), seeded exactly like
        # the scalar sensing chain: RandomStreams(seed).stream(name).
        self._gen_v = []
        self._gen_i = []
        for spec in self.specs:
            streams = RandomStreams(spec.seed)
            row_v, row_i = [], []
            for unit in range(self.b):
                row_v.append(streams.stream(f"sense.battery-{unit + 1}.v"))
                row_i.append(streams.stream(f"sense.battery-{unit + 1}.i"))
            self._gen_v.append(row_v)
            self._gen_i.append(row_i)
        # Refill amortization: small batches take several 256-sample blocks
        # per refill (PCG64 draws are stream-sequential, so one call for
        # k*256 samples yields the same bits as k consecutive 256-sample
        # calls).  Bounded so large batches keep the buffer cache-sized.
        mult = max(1, min(8, (1 << 20) // (_NOISE_BLOCK * max(1, self.n))))
        self.noise_block = _NOISE_BLOCK * mult
        self._blk_v = np.empty(
            (self.noise_block, self.n, self.b), dtype=np.float64
        )
        self._blk_i = np.empty(
            (self.noise_block, self.n, self.b), dtype=np.float64
        )

    def _refill_noise(self) -> None:
        # The scalar transducer refills a 256-sample block when exhausted;
        # one read per tick keeps blocks aligned to tick 0, 256, 512, ...
        block = self.noise_block
        for i in range(self.n):
            for unit in range(self.b):
                self._blk_v[:, i, unit] = self._gen_v[i][unit].standard_normal(
                    block
                )
                self._blk_i[:, i, unit] = self._gen_i[i][unit].standard_normal(
                    block
                )

    def _init_servers(self) -> None:
        n, s = self.n, self.s
        self.sstate = np.full((n, s), _OFF, dtype=np.int8)
        self.stimer = np.zeros((n, s), dtype=np.float64)
        self.placed = np.zeros((n, s), dtype=np.int64)
        self.crashes = np.zeros(n, dtype=np.int64)
        self.on_off = np.zeros(n, dtype=np.int64)
        self.duty_deci = np.full(n, 10, dtype=np.int64)  # duty = deci / 10
        self.vm_target = np.zeros(n, dtype=np.int64)   # controller's view
        self.alloc_target = np.zeros(n, dtype=np.int64)  # allocator's view
        self.vm_ops = np.zeros(n, dtype=np.int64)
        self.switch_ops = np.zeros(n, dtype=np.int64)
        self.last_compute = np.zeros(n, dtype=np.float64)

    def _init_controller(self) -> None:
        n = self.n
        self.ema = np.zeros(n, dtype=np.float64)
        self.ema_slow = np.zeros(n, dtype=np.float64)
        inf = np.full(n, np.inf, dtype=np.float64)
        if self.controller == "insure":
            self.since_up = inf.copy()
            self.since_down = inf.copy()
            self.since_batch = inf.copy()
            self.since_crash = inf.copy()
            self.seen_crashes = np.zeros(n, dtype=np.int64)
            self.protect = np.zeros((n, self.b), dtype=bool)
            self.elastic_bonus = np.zeros(n, dtype=np.float64)
            self._tpm_elapsed = float("inf")
            self._spm_elapsed = float("inf")
        else:
            self.since_up = inf.copy()
            self.buffer_online = np.zeros(n, dtype=bool)
            self.trip_pending = np.zeros(n, dtype=bool)
            self._ctl_elapsed = float("inf")

    def _init_workload(self) -> None:
        # Arrivals are site-independent: drive the real scalar workload's
        # _generate over the whole horizon once and record the schedule.
        from repro.workloads.seismic import SeismicAnalysis
        from repro.workloads.video import VideoSurveillance

        if self.workload_kind == "video":
            wl = VideoSurveillance()
            self.ckpt_interval = wl.checkpoint_interval_s
            self.gb_rate = wl.gb_per_compute_second
            self.preferred_vms = wl.preferred_vms
            self.actuation = wl.actuation
            self.job_size = wl.chunk_gb
            # VideoSurveillance._job_delay: lag beyond the chunk duration
            self.delay_offset = wl.chunk_seconds
        else:
            wl = SeismicAnalysis()
            self.ckpt_interval = wl.checkpoint_interval_s
            self.gb_rate = wl.gb_per_compute_second
            self.preferred_vms = wl.preferred_vms
            self.actuation = wl.actuation
            self.job_size = wl.job_size_gb
            # Workload._job_delay: lag beyond ideal service time
            self.delay_offset = wl.job_size_gb / (
                wl.gb_per_compute_second * max(wl.preferred_vms, 1)
            )
        # Censored delay (Workload.mean_delay_minutes) always uses the
        # base ideal-service offset, for video too.
        self.censor_offset = self.job_size / (
            self.gb_rate * max(self.preferred_vms, 1)
        )
        arr_t: list[float] = [job.arrival_t for job in wl.queue.pending]
        arr_dl: list[float] = [
            (job.deadline_t if job.deadline_t is not None else np.nan)
            for job in wl.queue.pending
        ]
        self.n_initial = len(arr_t)
        n_by_tick = np.zeros(self.steps, dtype=np.int64)
        seen = len(arr_t)
        for k in range(self.steps):
            wl._generate(k * self.dt, self.dt)
            while seen < len(wl.queue.pending):
                job = wl.queue.pending[seen]
                arr_t.append(job.arrival_t)
                arr_dl.append(
                    job.deadline_t if job.deadline_t is not None else np.nan
                )
                seen += 1
            n_by_tick[k] = seen
        self.arr_t = np.asarray(arr_t, dtype=np.float64)
        self.arr_dl = np.asarray(arr_dl, dtype=np.float64)
        self.n_by_tick = n_by_tick
        self.has_deadlines = bool(len(arr_dl)) and not np.isnan(self.arr_dl).all()

        n = self.n
        self.head_idx = np.zeros(n, dtype=np.int64)
        self.head_done = np.zeros(n, dtype=np.float64)
        self.head_ckpt = np.zeros(n, dtype=np.float64)
        self.processed = np.zeros(n, dtype=np.float64)
        self.delay_sum = np.zeros(n, dtype=np.float64)
        self.delay_count = np.zeros(n, dtype=np.int64)
        self.dl_total = np.zeros(n, dtype=np.int64)
        self.dl_miss = np.zeros(n, dtype=np.int64)
        self.crash_count = np.zeros(n, dtype=np.int64)
        self._since_ckpt = 0.0

    def _init_policies(self) -> None:
        """Policy scenario overlay (port of repro.policy.policy.Policy).

        ``charge_cap`` always exists and defaults to 1.0 — the charger
        multiplies the surplus by it, an IEEE identity, so scenario-free
        batches stay bit-identical to the pre-policy kernel.  Each policy
        column holds the *scalar* per-site signal and governor objects and
        evaluates them at firing ticks: the limits carry the same libm
        bits as the scalar path, so discrete decisions (zone edges, step
        thresholds, duty quantisation) can never diverge between kernels.
        """
        self.charge_cap = np.ones(self.n, dtype=np.float64)
        self.policy_columns: list[dict] = []
        scenario = self.specs[0].scenario
        if scenario is None:
            return
        from repro.experiments.scenarios import build_policies, get_scenario

        sspec = get_scenario(scenario)
        per_site = [build_policies(scenario, spec.seed) for spec in self.specs]
        for j, pdef in enumerate(sspec.policies):
            self.policy_columns.append({
                "control": pdef.control,
                "interval_s": pdef.interval_s,
                # Same first-tick firing as Policy._elapsed = inf.
                "elapsed": float("inf"),
                "policies": [site[j] for site in per_site],
            })

    def _policy_step(self, k: int) -> None:
        """Step each policy column on its own evaluation cadence.

        Runs where the scalar managers step their overlays: after the
        InSURE TPM/SPM pass, before the baseline's decide gate.  The
        per-site evaluation loop only runs at firing ticks (hundreds of
        seconds apart), so the batch stays vectorized where it matters.
        """
        for column in self.policy_columns:
            column["elapsed"] += self.dt
            if column["elapsed"] < column["interval_s"]:
                continue
            column["elapsed"] = 0.0
            t = k * self.dt
            limits = np.array(
                [pol.governor.limit(pol.reading(t))
                 for pol in column["policies"]],
                dtype=np.float64,
            )
            clamped = np.minimum(np.maximum(limits, 0.0), 1.0)
            control = column["control"]
            if control == "duty_cap":
                # quantize_duty + "only ever lowers" (DutyCapControl),
                # floored at the one-quantum hardware minimum.
                caps = np.maximum(
                    np.floor(clamped * 10.0 + 1e-9).astype(np.int64), 1
                )
                self.duty_deci = np.minimum(self.duty_deci, caps)
            elif control == "vm_retarget":
                # VmRetargetControl: cap the preferred-VM fraction.
                caps = np.minimum(
                    self.preferred_vms,
                    np.floor(
                        clamped * self.preferred_vms + 1e-9
                    ).astype(np.int64),
                )
                mask = self.vm_target > caps
                self.vm_target = np.where(mask, caps, self.vm_target)
                self._set_target(mask, caps)
            else:  # charge_current_cap
                # ChargeCurrentCapControl: same end state as set-if-changed.
                self.charge_cap = clamped

    def _init_metrics(self) -> None:
        n = self.n
        self.uptime_s = np.zeros(n, dtype=np.float64)
        self.stored_int = np.zeros(n, dtype=np.float64)
        self.load_wh = np.zeros(n, dtype=np.float64)
        self.eff_wh = np.zeros(n, dtype=np.float64)
        self.solar_wh = np.zeros(n, dtype=np.float64)
        self.used_wh = np.zeros(n, dtype=np.float64)
        self.curt_wh = np.zeros(n, dtype=np.float64)
        self.min_v = np.full(n, np.inf, dtype=np.float64)
        self.vsamples: list[np.ndarray] = []
        self._since_vsample = float("inf")
        self._elapsed = 0.0
        # Per-tick scratch written by the plant step for the metrics step.
        self._metrics_demand = np.zeros(n, dtype=np.float64)
        self._rep_solar_to_load = np.zeros(n, dtype=np.float64)
        self._rep_charge_power = np.zeros(n, dtype=np.float64)
        self._rep_curtailed = np.zeros(n, dtype=np.float64)

    # ------------------------------------------------------------------
    # Battery physics (ports of repro.battery.*)
    # ------------------------------------------------------------------
    def _emf(self, y1: np.ndarray) -> np.ndarray:
        head = y1 / (self.kib_c * self.kib_cap)
        head = np.where(head < 0.0, 0.0, head)
        head = np.where(head > 1.0, 1.0, head)
        shaped = head**0.75
        return self.emf_empty + (self.emf_full - self.emf_empty) * shaped

    def _terminal_voltage(self, y1: np.ndarray, amps: np.ndarray) -> np.ndarray:
        v = self._emf(y1) - amps * self.r_internal
        return np.where(amps < 0.0, np.minimum(v, self.v_charge_max), v)

    def _kibam_apply(self, mask: np.ndarray, amps) -> np.ndarray:
        """KiBaM Euler step on masked cells; returns Ah moved (signed).

        ``amps`` may be an (n, b) array or a python float (broadcast);
        either way each cell sees the exact scalar expression tree.
        """
        y1 = self.y1
        y2 = self.y2
        diffusion = (
            self.k_eff
            * (
                y2 / ((1.0 - self.kib_c) * self.kib_cap)
                - y1 / (self.kib_c * self.kib_cap)
            )
            * self.dt_h
        )
        requested = amps * self.dt_h
        y1n = y1 - requested + diffusion
        y2n = y2 - diffusion
        under = y1n < 0.0
        over = ~under & (y1n > self.y1_cap)
        moved = np.where(under, requested + y1n, requested)
        moved = np.where(over, requested + (y1n - self.y1_cap), moved)
        y1n = np.where(under, 0.0, y1n)
        y1n = np.where(over, self.y1_cap, y1n)
        y2n = np.minimum(np.maximum(y2n, 0.0), self.y2_cap)
        self.y1 = np.where(mask, y1n, y1)
        self.y2 = np.where(mask, y2n, y2)
        return moved

    def _kibam_apply_col(self, col: int, mask: np.ndarray, amps) -> np.ndarray:
        """KiBaM Euler step on one bank column ((n,) ops, in-place write)."""
        y1 = self.y1[:, col]
        y2 = self.y2[:, col]
        diffusion = (
            self.k_eff
            * (
                y2 / ((1.0 - self.kib_c) * self.kib_cap)
                - y1 / (self.kib_c * self.kib_cap)
            )
            * self.dt_h
        )
        requested = amps * self.dt_h
        y1n = y1 - requested + diffusion
        y2n = y2 - diffusion
        under = y1n < 0.0
        over = ~under & (y1n > self.y1_cap)
        moved = np.where(under, requested + y1n, requested)
        moved = np.where(over, requested + (y1n - self.y1_cap), moved)
        y1n = np.where(under, 0.0, y1n)
        y1n = np.where(over, self.y1_cap, y1n)
        y2n = np.minimum(np.maximum(y2n, 0.0), self.y2_cap)
        self.y1[:, col] = np.where(mask, y1n, y1)
        self.y2[:, col] = np.where(mask, y2n, y2)
        return moved

    def _idle(self, mask: np.ndarray) -> None:
        """BatteryUnit.idle: recovery diffusion plus self-discharge leak."""
        if not mask.any():
            return
        self._kibam_apply(mask, self.leak_amps)
        self.last_i = np.where(mask, 0.0, self.last_i)

    def _idle_col(self, col: int, mask: np.ndarray) -> None:
        """BatteryUnit.idle on one bank column (masked sites)."""
        if not mask.any():
            return
        self._kibam_apply_col(col, mask, self.leak_amps)
        self.last_i[:, col] = np.where(mask, 0.0, self.last_i[:, col])

    def _max_discharge_current(self) -> np.ndarray:
        """BatteryUnit.max_discharge_current for every cell."""
        y1, y2 = self.y1, self.y2
        available_head = y1 / (self.kib_c * self.kib_cap)
        bound_head = y2 / ((1.0 - self.kib_c) * self.kib_cap)
        kinetic = np.maximum(
            0.0,
            (y1 + self.k_eff * (bound_head - available_head) * self.dt_h)
            / self.dt_h,
        )
        headroom = self._emf(y1) - self.v_cutoff
        cutoff = np.maximum(0.0, headroom / self.r_internal)
        return np.maximum(0.0, np.minimum(kinetic, cutoff))

    def _acceptance_max_current(self, soc: np.ndarray) -> np.ndarray:
        soc_c = np.minimum(np.maximum(soc, 0.0), 1.0)
        frac = (soc_c - self.acc_taper_start) / (1.0 - self.acc_taper_start)
        tapered = np.maximum(
            self.acc_bulk * np.exp(-self.acc_taper_exp * frac), self.acc_floor
        )
        return np.where(soc_c <= self.acc_taper_start, self.acc_bulk, tapered)

    def _acceptance_effective(
        self, applied: np.ndarray, soc: np.ndarray
    ) -> np.ndarray:
        accepted = np.minimum(applied, self._acceptance_max_current(soc))
        accepted = np.maximum(0.0, accepted - self.acc_parasitic)
        gass = soc > self.acc_gassing_soc
        frac = np.minimum(
            (soc - self.acc_gassing_soc) / (1.0 - self.acc_gassing_soc), 1.0
        )
        derated = accepted * (1.0 - self.acc_gassing_frac * frac)
        accepted = np.where(gass, derated, accepted)
        return np.where(applied <= 0.0, 0.0, accepted)

    def _apply_discharge(
        self, mask: np.ndarray, amps: np.ndarray, mdc: np.ndarray
    ) -> np.ndarray:
        """BatteryUnit.apply_discharge over the whole bank; returns amps.

        Each cell is elementwise-independent in the scalar loop, so one
        bankwide KiBaM/wear pass reproduces the per-unit iteration.
        """
        allowed = np.minimum(amps, mdc)
        active = mask & (allowed > 0.0)
        idle = mask & ~active
        delivered = np.zeros((self.n, self.b), dtype=np.float64)
        if active.any():
            soc_before = (self.y1 + self.y2) / self.kib_cap
            moved = self._kibam_apply(active, allowed)
            got = moved * 3600.0 / self.dt
            # WearModel.record(amps > 0)
            ah = np.abs(got) * self.dt / 3600.0
            c_rate = got / self.kib_cap
            stress = np.ones((self.n, self.b), dtype=np.float64)
            stress = np.where(
                c_rate > self.wear_stress_rate,
                stress + self.wear_rate_slope * (c_rate - self.wear_stress_rate),
                stress,
            )
            stress = np.where(
                soc_before < self.wear_deep,
                stress + self.wear_deep_slope * (self.wear_deep - soc_before),
                stress,
            )
            self.wear_dis = np.where(active, self.wear_dis + ah, self.wear_dis)
            self.wear_wt = np.where(
                active, self.wear_wt + ah * stress, self.wear_wt
            )
            self.last_i = np.where(active, got, self.last_i)
            delivered = np.where(active, got, delivered)
        if idle.any():
            self._idle(idle)
        return delivered

    def _apply_charge_col(
        self, mask: np.ndarray, col: int, applied: np.ndarray
    ) -> None:
        """BatteryUnit.apply_charge for one bank column (masked sites)."""
        soc = (self.y1[:, col] + self.y2[:, col]) / self.kib_cap
        effective = self._acceptance_effective(applied, soc)
        landing = mask & (effective > 0.0)
        refused = mask & ~landing
        if landing.any():
            moved = self._kibam_apply_col(col, landing, -effective)
            stored = -moved * 3600.0 / self.dt
            # Wear records only charge_ah here, which the summary ignores.
            self.last_i[:, col] = np.where(
                landing, -stored, self.last_i[:, col]
            )
        if refused.any():
            self._idle_col(col, refused)
            self.last_i[:, col] = np.where(
                refused,
                -np.minimum(applied, self.acc_parasitic),
                self.last_i[:, col],
            )

    # ------------------------------------------------------------------
    # Rack / servers (ports of repro.cluster.*)
    # ------------------------------------------------------------------
    def _server_power(self) -> np.ndarray:
        """Server.power_w for every (site, server)."""
        duty = (self.duty_deci / 10.0)[:, None]
        share = self.cpu_share * self.placed
        util = np.minimum(1.0, share * duty)
        p_on = self.srv_idle + (self.srv_peak - self.srv_idle) * util
        power = np.zeros((self.n, self.s), dtype=np.float64)
        power = np.where(self.sstate == _ON, p_on, power)
        power = np.where(self.sstate == _BOOTING, self.srv_idle, power)
        p_saving = self.srv_idle + (self.srv_peak - self.srv_idle) * 0.15
        power = np.where(self.sstate == _SAVING, p_saving, power)
        return power

    def _demand_w(self) -> np.ndarray:
        """ServerRack.demand_w: per-server power plus PDU port overhead."""
        power = self._server_power()
        self._last_power = power
        active = (power > 0.0).sum(axis=1)
        return power.sum(axis=1) + self.pdu_overhead * active

    def _running_count(self) -> np.ndarray:
        return (self.placed * (self.sstate == _ON)).sum(axis=1)

    def _active_servers(self) -> np.ndarray:
        return (self.sstate != _OFF).any(axis=1)

    def _rack_step(self) -> None:
        """ServerRack.step: advance lifecycle timers, accumulate compute."""
        booting = self.sstate == _BOOTING
        saving = self.sstate == _SAVING
        self.stimer = np.where(
            booting | saving, self.stimer - self.dt, self.stimer
        )
        boot_done = booting & (self.stimer <= 0.0)
        save_done = saving & (self.stimer <= 0.0)
        # BOOTING -> ON starts every placed VM; SAVING -> OFF counts a cycle.
        self.sstate = np.where(boot_done, _ON, self.sstate)
        self.sstate = np.where(save_done, _OFF, self.sstate)
        self.on_off += save_done.sum(axis=1)
        # Compute seconds produced this tick (after stepping, like scalar).
        duty = self.duty_deci / 10.0
        on = self.sstate == _ON
        contrib = self.placed * duty[:, None] * 1.0 * self.dt
        self.last_compute = np.where(on, contrib, 0.0).sum(axis=1)

    def _set_duty(self, mask: np.ndarray, deci: np.ndarray | int) -> None:
        """ServerRack.set_duty: all servers share the site duty here."""
        self.duty_deci = np.where(mask, deci, self.duty_deci)

    # ------------------------------------------------------------------
    # VM allocator (port of repro.cluster.allocator.NodeAllocator)
    # ------------------------------------------------------------------
    def _reconcile(self, mask: np.ndarray, target: np.ndarray) -> None:
        if not mask.any():
            return
        needed = np.where(target > 0, (target + self.srv_slots - 1) // self.srv_slots, 0)
        powered = (self.sstate == _ON) | (self.sstate == _BOOTING)
        cum_p = np.cumsum(powered, axis=1) - powered
        n_pow = powered.sum(axis=1, keepdims=True)
        cum_u = np.cumsum(~powered, axis=1) - ~powered
        rank = np.where(powered, cum_p, n_pow + cum_u)
        keep = rank < needed[:, None]
        drop = mask[:, None] & ~keep
        # Drop pass: strip VMs (one op each), then graceful power-off.
        self.vm_ops += np.where(drop, self.placed, 0).sum(axis=1)
        power_off = drop & ((self.sstate == _ON) | (self.sstate == _BOOTING))
        self.placed = np.where(drop, 0, self.placed)
        self.sstate = np.where(power_off, _SAVING, self.sstate)
        self.stimer = np.where(power_off, self.srv_save_s, self.stimer)
        # Keep pass in keep-list order (powered first, then rack order).
        order = np.argsort(rank, axis=1, kind="stable")
        rows = np.arange(self.n)
        remaining = np.where(mask, target, 0).copy()
        for pos in range(self.s):
            col = order[:, pos]
            act = mask & (pos < needed)
            st = self.sstate[rows, col]
            boot = act & (st == _OFF)
            self.sstate[rows[boot], col[boot]] = _BOOTING
            self.stimer[rows[boot], col[boot]] = self.srv_boot_s
            fit = act & (st != _SAVING)
            want = np.minimum(self.srv_slots, remaining)
            old = self.placed[rows, col]
            delta = np.abs(want - old)
            self.vm_ops += np.where(fit, delta, 0)
            new_placed = np.where(fit, want, old)
            self.placed[rows, col] = new_placed
            remaining = np.where(fit, remaining - want, remaining)

    def _set_target(self, mask: np.ndarray, target: np.ndarray) -> None:
        """NodeAllocator.set_target: one op + reconcile when it changes."""
        changed = mask & (target != self.alloc_target)
        if not changed.any():
            return
        self.vm_ops += changed
        self.alloc_target = np.where(changed, target, self.alloc_target)
        self._reconcile(changed, np.where(changed, target, 0))

    # ------------------------------------------------------------------
    # Relay transitions
    # ------------------------------------------------------------------
    def _transition(self, cells: np.ndarray, mode_code: int) -> None:
        """Controller.transition: mode change + relay attach bookkeeping."""
        bus_code = _BUS_FOR_MODE[mode_code]
        change = cells & (self.mode != mode_code)
        if not change.any():
            return
        ops = change & (self.bus != bus_code)
        self.switch_ops += ops.sum(axis=1)
        self.mode = np.where(change, mode_code, self.mode)
        self.bus = np.where(change, bus_code, self.bus)

    # ------------------------------------------------------------------
    # Sensing chain (ports of repro.power.{sensors,plc,modbus} + sensing)
    # ------------------------------------------------------------------
    def _sense(self, k: int) -> None:
        if k % self.noise_block == 0:
            self._refill_noise()
        slot = k % self.noise_block
        tv = self._terminal_voltage(self.y1, self.last_i)
        # Battery state is untouched until the bus pass, so this tick-start
        # voltage is also what the bus and charger would recompute.
        self._tick_tv = tv
        # Voltage transducer: noise, clip [0, 50], 12-bit quantisation.
        value = tv + 0.03 * self._blk_v[slot]
        value = np.where(value < 0.0, 0.0, value)
        value = np.where(value > 50.0, 50.0, value)
        code = np.rint((value - 0.0) / 50.0 * 4095)
        q_v = 0.0 + code * 50.0 / 4095
        # Current transducer: clip [-25, 25].
        value = self.last_i + 0.05 * self._blk_i[slot]
        value = np.where(value < -25.0, -25.0, value)
        value = np.where(value > 25.0, 25.0, value)
        code = np.rint((value - -25.0) / 50.0 * 4095)
        q_i = -25.0 + code * 50.0 / 4095
        # PLC register encode (x100 fixed point) and Modbus decode.
        self.sense_v = np.rint(q_v * 100.0) / 100.0
        self.sense_i = np.rint(q_i * 100.0) / 100.0
        # BatteryTelemetry._update_estimates
        current = self.sense_i
        delta_ah = current * self.dt / 3600.0
        est = self.est - delta_ah / self.kib_cap
        est = np.where(est < 0.0, 0.0, est)
        est = np.where(est > 1.0, 1.0, est)
        self.est = est
        discharging = current > 0.25
        self.sense_dis = np.where(
            discharging, self.sense_dis + delta_ah, self.sense_dis
        )
        resting = (current > -0.25) & (current < 0.25)
        self.rest_s = np.where(resting, self.rest_s + self.dt, 0.0)
        anchor = resting & (self.rest_s >= 300.0)
        if anchor.any():
            frac = (self.sense_v - self.emf_empty) / (
                self.emf_full - self.emf_empty
            )
            frac = np.minimum(np.maximum(frac, 0.0), 1.0)
            ocv = frac ** (1.0 / 0.75)
            self.est = np.where(anchor, 0.9 * self.est + 0.1 * ocv, self.est)

    def _update_ema(self, solar: np.ndarray) -> None:
        alpha = min(1.0, self.dt / 120.0)
        self.ema = self.ema + alpha * (solar - self.ema)
        alpha_slow = min(1.0, self.dt / (120.0 * 3.0))
        self.ema_slow = self.ema_slow + alpha_slow * (solar - self.ema_slow)

    # ------------------------------------------------------------------
    # Power bus (port of repro.power.bus.PowerBus.resolve)
    # ------------------------------------------------------------------
    def _converter_input(self, demand: np.ndarray) -> np.ndarray:
        """DCDCConverter.input_for, vectorized (demand is 0 or >= idle_w)."""
        load = np.minimum(demand / self.conv_rated, 1.2)
        ohmic = 0.02 * load * load * self.conv_rated
        losses = self.conv_fixed_loss + ohmic
        base = demand / np.where(demand > 0.0, demand + losses, 1.0)
        eff = np.minimum(base, self.conv_peak_eff)
        out = demand / np.where(demand > 0.0, eff, 1.0)
        return np.where(demand > 0.0, out, 0.0)

    def _bus_resolve(self, solar: np.ndarray, demand: np.ndarray) -> np.ndarray:
        """One tick of power flow; returns unserved_w per site.

        Fills the metrics scratch arrays with the BusReport fields the
        collector consumes.
        """
        n, b = self.n, self.b
        demand_bus = self._converter_input(demand)
        solar_to_load = np.minimum(solar, demand_bus)
        deficit = demand_bus - solar_to_load
        surplus = solar - solar_to_load

        touched = np.zeros((n, b), dtype=bool)
        on_load = self.bus == _BUS_LOAD
        battery_to_load = np.zeros(n, dtype=np.float64)
        dis_sites = (deficit > 0.0) & on_load.any(axis=1)
        if dis_sites.any():
            members = on_load & dis_sites[:, None]
            mdc = self._max_discharge_current()
            volts = self._tick_tv
            watts = mdc * volts
            total = np.where(members, watts, 0.0).sum(axis=1)
            feasible = dis_sites & (total > 0.0)
            dead = dis_sites & ~feasible
            if dead.any():
                self._idle(on_load & dead[:, None])
            if feasible.any():
                target = np.minimum(deficit, total)
                safe_total = np.where(feasible, total, 1.0)
                m = members & feasible[:, None]
                share_w = target[:, None] * (watts / safe_total[:, None])
                skip = m & ((share_w <= 0.0) | (volts <= 0.0))
                if skip.any():
                    self._idle(skip)
                take = m & ~skip
                safe_v = np.where(volts > 0.0, volts, 1.0)
                request = np.minimum(share_w / safe_v, mdc)
                got = self._apply_discharge(take, request, mdc)
                battery_to_load = np.where(take, got * volts, 0.0).sum(axis=1)
            touched |= members
        unserved = np.maximum(0.0, deficit - battery_to_load)

        # Charge path (SolarCharger.step across the charge bus).
        on_charge = self.bus == _BUS_CHARGE
        charge_sites = on_charge.any(axis=1)
        charge_power = np.zeros(n, dtype=np.float64)
        if charge_sites.any():
            charge_power = self._charger_step(on_charge, charge_sites, surplus)
            touched |= on_charge & charge_sites[:, None]
        curtailed = np.maximum(0.0, surplus - charge_power)

        # Float / idle pass over untouched units, bank order.  The column
        # loop is load-bearing: curtailed headroom drains sequentially, so
        # battery 2 only floats on what batteries 0-1 left over.
        standby = self.mode == _STANDBY
        for col in range(b):
            pending = ~touched[:, col]
            floatable = pending & standby[:, col] & (curtailed > 1.0)
            if floatable.any():
                # SolarCharger.float_step: idle first, then trickle charge.
                self._idle_col(col, floatable)
                self._kibam_apply_col(col, floatable, -self.float_amps * 0.5)
                tv_col = self._terminal_voltage(
                    self.y1[:, col], self.last_i[:, col]
                )
                used = self.float_amps * tv_col / self.chg_eff
                take = np.minimum(used, curtailed)
                curtailed = np.where(floatable, curtailed - take, curtailed)
                charge_power = np.where(
                    floatable, charge_power + take, charge_power
                )
            rest = pending & ~floatable
            if rest.any():
                self._idle_col(col, rest)

        self._metrics_demand = demand
        self._last_demand_bus = demand_bus
        self._rep_solar_to_load = solar_to_load
        self._rep_charge_power = charge_power
        self._rep_curtailed = curtailed
        return np.where(demand_bus > 0.0, unserved, 0.0)

    def _charger_step(
        self,
        on_charge: np.ndarray,
        charge_sites: np.ndarray,
        surplus: np.ndarray,
    ) -> np.ndarray:
        """SolarCharger.step: overhead gating + 4-round water-filling."""
        n, b = self.n, self.b
        remaining = np.where(
            charge_sites, (surplus * self.charge_cap) * self.chg_eff, 0.0
        )
        n_charging = on_charge.sum(axis=1)
        payable = np.minimum(
            n_charging, (remaining // self.chg_overhead).astype(np.int64)
        )
        rank = np.cumsum(on_charge, axis=1) - on_charge
        connected = on_charge & (rank < payable[:, None]) & charge_sites[:, None]
        dropped = on_charge & charge_sites[:, None] & ~connected
        if dropped.any():
            self._idle(dropped)
        any_conn = connected.any(axis=1)
        if not any_conn.any():
            return np.zeros(n, dtype=np.float64)
        n_conn = connected.sum(axis=1)
        overhead = self.chg_overhead * n_conn
        remaining = np.where(any_conn, remaining - overhead, remaining)
        used = np.where(any_conn, overhead, 0.0)

        # Charge-bus cells are disjoint from the load-bus cells the
        # discharge pass touched, so the tick-start voltage still holds.
        tv = self._tick_tv
        voltage = np.maximum(tv, self.emf_empty)
        soc = (self.y1 + self.y2) / self.kib_cap
        ceiling = self._acceptance_max_current(soc) * voltage
        granted = np.zeros((n, b), dtype=np.float64)
        active = connected.copy()
        for _ in range(4):
            n_act = active.sum(axis=1)
            alive = any_conn & (remaining > 1e-9) & (n_act > 0)
            if not alive.any():
                break
            share = np.where(alive, remaining / np.maximum(n_act, 1), 0.0)
            for col in range(b):
                m = alive & active[:, col]
                headroom = np.maximum(0.0, ceiling[:, col] - granted[:, col])
                grant = np.where(m, np.minimum(share, headroom), 0.0)
                granted[:, col] = granted[:, col] + grant
                remaining = remaining - grant
                stay = grant >= share - 1e-9
                active[:, col] = np.where(m, stay, active[:, col])

        for col in range(b):
            conn = connected[:, col]
            applied = granted[:, col] / voltage[:, col]
            landing = conn & (applied > 0.0)
            refused = conn & ~landing
            if refused.any():
                self._idle_col(col, refused)
            if landing.any():
                self._apply_charge_col(landing, col, applied)
                used = used + np.where(landing, granted[:, col], 0.0)

        return np.where(any_conn, used / self.chg_eff, 0.0)

    # ------------------------------------------------------------------
    # Plant coupling + workload (ports of system.PlantCoupler, workloads)
    # ------------------------------------------------------------------
    def _plant_step(self, k: int, solar: np.ndarray) -> None:
        demand = self._demand_w()
        unserved = self._bus_resolve(solar, demand)
        demand_bus = self._last_demand_bus
        threshold = np.maximum(
            self.shed_tol_w, self.shed_tol_frac * demand_bus
        )
        shed = unserved > threshold
        compute = self.last_compute
        if shed.any():
            self._emergency_shed(shed)
            compute = np.where(shed, 0.0, compute)
            # Metrics fall back to a fresh demand read post-shed (all OFF).
            self._metrics_demand = np.where(shed, 0.0, self._metrics_demand)
        self._workload_step(k, compute)

    def _emergency_shed(self, shed: np.ndarray) -> None:
        """ServerRack.emergency_shed + Workload.on_crash."""
        cells = shed[:, None] & (self.sstate != _OFF)
        count = cells.sum(axis=1)
        self.crashes += count
        self.on_off += count
        self.sstate = np.where(cells, _OFF, self.sstate)
        self.stimer = np.where(cells, 0.0, self.stimer)
        # VMs crash in place: they stay placed, none keep running.
        lost = self.head_done - self.head_ckpt
        self.processed = np.where(
            shed, np.maximum(0.0, self.processed - lost), self.processed
        )
        self.head_done = np.where(shed, self.head_ckpt, self.head_done)
        self.crash_count += shed

    def _workload_step(self, k: int, compute: np.ndarray) -> None:
        """Workload.step: drain budget through the head job (<=1 finish)."""
        t_next = k * self.dt + self.dt
        n_arr = self.n_by_tick[k]
        budget = compute * self.gb_rate
        has_head = self.head_idx < n_arr
        work = has_head & (budget > 1e-12)
        rem_head = np.maximum(0.0, self.job_size - self.head_done)
        used_a = np.where(work, np.minimum(budget, rem_head), 0.0)
        head_done = self.head_done + used_a
        finished = work & (
            np.maximum(0.0, self.job_size - head_done) <= 1e-12
        )
        self.head_done = np.where(work, head_done, self.head_done)
        if finished.any():
            arr = self.arr_t[np.minimum(self.head_idx, len(self.arr_t) - 1)]
            if self.workload_kind == "video":
                delay = np.maximum(0.0, t_next - arr - self.delay_offset)
            else:
                delay = np.maximum(0.0, (t_next - arr) - self.delay_offset)
            self.delay_sum = np.where(
                finished, self.delay_sum + delay, self.delay_sum
            )
            self.delay_count += finished
            if self.has_deadlines:
                deadline = self.arr_dl[
                    np.minimum(self.head_idx, len(self.arr_dl) - 1)
                ]
                counted = finished & ~np.isnan(deadline)
                self.dl_total += counted
                self.dl_miss += counted & (t_next > deadline)
            self.head_idx = np.where(finished, self.head_idx + 1, self.head_idx)
            self.head_done = np.where(finished, 0.0, self.head_done)
            self.head_ckpt = np.where(finished, 0.0, self.head_ckpt)
        # Leftover budget spills into the next job (cannot finish it).
        leftover = np.where(finished, budget - used_a, 0.0)
        spill = finished & (leftover > 1e-12) & (self.head_idx < n_arr)
        used_b = np.where(spill, np.minimum(leftover, self.job_size), 0.0)
        self.head_done = np.where(spill, used_b, self.head_done)
        done = used_a + used_b
        self.processed = self.processed + done
        # Periodic durable checkpoints (site-independent cadence).
        self._since_ckpt += self.dt
        if self._since_ckpt >= self.ckpt_interval:
            self._since_ckpt = 0.0
            self.head_ckpt = self.head_done.copy()

    def _checkpoint_all(self, mask: np.ndarray) -> None:
        self.head_ckpt = np.where(mask, self.head_done, self.head_ckpt)

    def _backlog_positive(self, k: int) -> np.ndarray:
        """Whether Workload.backlog_gb > 0 (any pending job remains)."""
        return self.head_idx < self.n_by_tick[k]

    def _backlog_at_control(self, k: int) -> np.ndarray:
        """Backlog as the controller sees it at tick k.

        Controllers run before the plant step, so tick k's arrivals have
        not been generated yet — only those through tick k-1 exist.
        """
        count = self.n_initial if k == 0 else int(self.n_by_tick[k - 1])
        return self.head_idx < count

    # ------------------------------------------------------------------
    # Metrics (port of repro.telemetry.metrics.MetricsCollector)
    # ------------------------------------------------------------------
    def _metrics_step(self, solar: np.ndarray) -> None:
        dt, dt_h = self.dt, self.dt_h
        self._elapsed += dt
        serving = self._running_count() > 0
        self.uptime_s = np.where(serving, self.uptime_s + dt, self.uptime_s)
        online = (self.mode == _STANDBY) | (self.mode == _DISCHARGING)
        stored = (self.y1 + self.y2) * self.nominal_v
        online_wh = np.where(online, stored, 0.0).sum(axis=1)
        self.stored_int = self.stored_int + online_wh * dt
        self.load_wh = self.load_wh + self._metrics_demand * dt_h
        # Server state only changes between the plant's demand read and
        # here via emergency shed, and shed sites have no running VMs —
        # stale power values there are masked out by `running`.
        power = self._last_power
        running = self.placed * (self.sstate == _ON) > 0
        effective = np.where(running, power, 0.0).sum(axis=1)
        self.eff_wh = self.eff_wh + effective * dt_h
        self.solar_wh = self.solar_wh + solar * dt_h
        self.used_wh = self.used_wh + (
            self._rep_solar_to_load + self._rep_charge_power
        ) * dt_h
        self.curt_wh = self.curt_wh + self._rep_curtailed * dt_h
        tv = self._terminal_voltage(self.y1, self.last_i)
        self.min_v = np.minimum(self.min_v, tv.min(axis=1))
        self._since_vsample += dt
        if self._since_vsample >= 60.0:
            self._since_vsample = 0.0
            self.vsamples.append(tv.sum(axis=1) / self.b)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> list[dict]:
        from repro.sim.fleet import controllers

        controllers.start(self)
        step_tick = self.step_tick
        for k in range(self.steps):
            step_tick(k)
        return self.summaries()

    def step_tick(self, k: int) -> None:
        from repro.sim.fleet import controllers

        solar = self.trace[:, k]
        # Component order mirrors the engine: source (solar column),
        # controller, rack, plant coupler, metrics.
        self._sense(k)
        self._update_ema(solar)
        if self.controller == "insure":
            controllers.insure_step(self, k)
            self._policy_step(k)
        else:
            self._policy_step(k)
            controllers.baseline_step(self, k)
        self._rack_step()
        self._plant_step(k, solar)
        self._metrics_step(solar)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summaries(self) -> list[dict]:
        elapsed = self._elapsed
        n = self.n
        uptime_fraction = self.uptime_s / elapsed
        throughput = self.processed / (elapsed / 3600.0)
        mean_delay = self._mean_delay_minutes(elapsed)
        energy_avail = self.stored_int / elapsed
        # WearModel.projected_life_days, averaged over the bank.
        shelf = self.wear_design_days * 1.5
        rate = self.wear_wt / (elapsed / 86400.0)
        with np.errstate(divide="ignore"):
            days = np.where(
                self.wear_wt > 0.0,
                np.minimum(shelf, self.wear_lifetime / np.where(rate > 0, rate, 1.0)),
                shelf,
            )
        life = days.mean(axis=1)
        discharge_ah = np.zeros(n, dtype=np.float64)
        for col in range(self.b):
            discharge_ah = discharge_ah + self.wear_dis[:, col]
        perf_per_ah = np.where(
            discharge_ah > 0.0,
            self.processed / np.where(discharge_ah > 0.0, discharge_ah, 1.0),
            0.0,
        )
        tv = self._terminal_voltage(self.y1, self.last_i)
        end_v = np.zeros(n, dtype=np.float64)
        for col in range(self.b):
            end_v = end_v + tv[:, col]
        end_v = end_v / self.b
        if len(self.vsamples) > 1:
            samples = np.stack(self.vsamples)
            mean = samples.mean(axis=0)
            sigma = np.sqrt(((samples - mean) ** 2).mean(axis=0))
        else:
            sigma = np.zeros(n, dtype=np.float64)
        imbalance = self.wear_dis.max(axis=1) - self.wear_dis.min(axis=1)
        miss_rate = np.where(
            self.dl_total > 0,
            self.dl_miss / np.where(self.dl_total > 0, self.dl_total, 1),
            0.0,
        )
        out = []
        for i in range(n):
            out.append(
                {
                    "elapsed_s": float(elapsed),
                    "uptime_fraction": float(uptime_fraction[i]),
                    "throughput_gb_per_hour": float(throughput[i]),
                    "mean_delay_minutes": float(mean_delay[i]),
                    "processed_gb": float(self.processed[i]),
                    "energy_availability_wh": float(energy_avail[i]),
                    "projected_life_days": float(life[i]),
                    "perf_per_ah_gb": float(perf_per_ah[i]),
                    "load_energy_kwh": float(self.load_wh[i] / 1000.0),
                    "effective_energy_kwh": float(self.eff_wh[i] / 1000.0),
                    "solar_energy_kwh": float(self.solar_wh[i] / 1000.0),
                    "solar_used_kwh": float(self.used_wh[i] / 1000.0),
                    "curtailed_kwh": float(self.curt_wh[i] / 1000.0),
                    "min_battery_voltage": float(self.min_v[i]),
                    "end_battery_voltage": float(end_v[i]),
                    "battery_voltage_sigma": float(sigma[i]),
                    "total_discharge_ah": float(discharge_ah[i]),
                    "discharge_imbalance_ah": float(imbalance[i]),
                    "power_ctrl_times": int(self.switch_ops[i]),
                    "on_off_cycles": int(self.on_off[i]),
                    "vm_ctrl_times": int(self.vm_ops[i]),
                    "crash_count": int(self.crash_count[i]),
                    "dropped_gb": 0.0,
                    "deadline_miss_rate": float(miss_rate[i]),
                }
            )
        return out

    def _mean_delay_minutes(self, t_now: float) -> np.ndarray:
        """Workload.mean_delay_minutes with censored pending jobs."""
        total = self.delay_sum.copy()
        count = self.delay_count.astype(np.float64)
        j = len(self.arr_t)
        if j:
            accrued = t_now - self.arr_t - self.censor_offset
            positive = accrued > 0.0
            # Arrivals are non-decreasing, so positives form a prefix.
            cutoff = int(positive.sum())
            prefix = np.concatenate(
                ([0.0], np.cumsum(np.where(positive, accrued, 0.0)))
            )
            n_final = min(int(self.n_by_tick[-1]), j)
            hi = np.minimum(n_final, cutoff)
            lo = np.minimum(self.head_idx, hi)
            total = total + (prefix[hi] - prefix[lo])
            count = count + (hi - lo)
        safe = np.where(count > 0, count, 1.0)
        return np.where(count > 0, total / safe / 60.0, 0.0)
