"""Vectorized ports of the InSURE and baseline power managers.

Each function here is a mask-based translation of one scalar control
routine (`repro.core.energy_manager.InsureController`,
`repro.core.baseline.BaselineController` and the shared
`repro.core.controller_base.PowerManager` helpers).  The control cadence
(30 s TPM / 300 s SPM / 30 s baseline period) is global — it depends only
on dt — so it lives in plain Python counters on the batch; everything a
site can diverge on (targets, holdoffs, trip latches, battery modes) is a
`(n_sites,)` or `(n_sites, n_batteries)` array updated under boolean
masks.

Ordering contract: statements execute in the exact order of the scalar
controller so that every sensed read (rack demand, SoC estimates, solar
EMA) observes the same intermediate state the scalar controller would.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - gated by repro.sim.fleet
    np = None

from repro.sim.fleet.kernel import (
    _BOOTING,
    _BUS_CHARGE,
    _BUS_LOAD,
    _BUS_OFFLINE,
    _CHARGING,
    _DISCHARGING,
    _OFFLINE,
    _ON,
    _SAVING,
    _STANDBY,
)

# --- InsureParams / TemporalParams / SpatialParams defaults ------------
TPM_INTERVAL_S = 30.0
SPM_INTERVAL_S = 300.0
USABLE_MARGIN = 0.05
SOC_FLOOR = 0.25            # TemporalParams.soc_floor
CAP_C_RATE = 0.30
RELAX_FRACTION = 0.6
VM_STEP = 2
DUTY_MIN_DECI = 5           # duty 0.5 in tenths
MIN_RESTART_VMS = 2
MIN_ONLINE_UNITS = 1
SOLAR_MARGIN = 0.9
UPSCALE_HOLDOFF_S = 600.0
DOWNSCALE_HOLDOFF_S = 180.0
BATCH_RECONFIG_HOLDOFF_S = 900.0
CRASH_BACKOFF_S = 420.0
LIFETIME_AH = 17500.0
DESIGN_LIFE_DAYS = 4.0 * 365.0
CHARGE_TO_SOC = 0.90
PEAK_CHARGE_POWER_W = 270.0
MIN_CHARGE_SURPLUS_W = 40.0
ELASTIC_STEP = 0.25

# --- BaselineParams defaults -------------------------------------------
BL_CONTROL_INTERVAL_S = 30.0
BL_PROTECT_MARGIN_V = 0.15
BL_SOC_FLOOR = 0.08
BL_CHARGE_TO_SOC = 0.90
BL_BANK_POWER_PER_UNIT_W = 420.0
BL_UPSCALE_HOLDOFF_S = 120.0
BL_START_MIN_SOC = 0.25


def start(batch) -> None:
    """Controller.start(): initial battery modes + direct relay attach.

    start() drives ``set_mode`` + ``switchnet.attach`` without the
    same-mode guard of ``transition``, so a switch operation is counted
    exactly when the relay (bus) state changes from the open/open reset
    state.
    """
    if batch.controller == "insure":
        high = batch.est >= CHARGE_TO_SOC
        new_mode = np.where(high, _STANDBY, _OFFLINE).astype(np.int8)
        new_bus = np.where(high, _BUS_LOAD, _BUS_OFFLINE).astype(np.int8)
    else:
        online = batch.est.min(axis=1) >= BL_START_MIN_SOC
        batch.buffer_online = online.copy()
        cols = online[:, None] & np.ones((1, batch.b), dtype=bool)
        new_mode = np.where(cols, _STANDBY, _CHARGING).astype(np.int8)
        new_bus = np.where(cols, _BUS_LOAD, _BUS_CHARGE).astype(np.int8)
    batch.switch_ops += (new_bus != batch.bus).sum(axis=1)
    batch.mode = new_mode
    batch.bus = new_bus


# ======================================================================
# InSURE
# ======================================================================
def insure_step(batch, k: int) -> None:
    dt = batch.dt
    t = k * dt
    batch._tpm_elapsed += dt
    if batch._tpm_elapsed >= TPM_INTERVAL_S:
        batch._tpm_elapsed = 0.0
        _insure_temporal(batch, t)
    batch._spm_elapsed += dt
    if batch._spm_elapsed >= SPM_INTERVAL_S:
        batch._spm_elapsed = 0.0
        _insure_spatial(batch, t, k)


def _online_mask(batch) -> np.ndarray:
    return (batch.mode == _STANDBY) | (batch.mode == _DISCHARGING)


def _usable_count(batch, floor: float) -> np.ndarray:
    usable = _online_mask(batch) & (batch.est > floor)
    return usable.sum(axis=1)


def _sizing_target(batch) -> np.ndarray:
    """InsureController._sizing_target on the slow EMA + safe battery W."""
    per_unit_w = CAP_C_RATE * batch.kib_cap * batch.nominal_v
    safe_w = _usable_count(batch, SOC_FLOOR + USABLE_MARGIN) * per_unit_w
    supportable = batch.ema_slow * SOLAR_MARGIN + safe_w
    vms = (supportable // batch.per_vm_w).astype(np.int64)
    return np.maximum(0, np.minimum(batch.preferred_vms, vms))


def _checkpoint_and_stop(batch, mask: np.ndarray) -> None:
    """PowerManager.checkpoint_and_stop for the masked sites."""
    batch._checkpoint_all(mask)
    batch._set_target(mask, np.zeros(batch.n, dtype=np.int64))
    # rack.graceful_stop_all: power_off any server reconcile left running.
    cells = mask[:, None] & ((batch.sstate == _ON) | (batch.sstate == _BOOTING))
    batch.sstate = np.where(cells, _SAVING, batch.sstate)
    batch.stimer = np.where(cells, batch.srv_save_s, batch.stimer)


def _insure_temporal(batch, t: float) -> None:
    n = batch.n
    batch.since_up += TPM_INTERVAL_S
    batch.since_down += TPM_INTERVAL_S
    batch.since_batch += TPM_INTERVAL_S
    batch.since_crash += TPM_INTERVAL_S

    # Crash backoff: an uncontrolled power loss zeroes the target.
    crashed = batch.crashes > batch.seen_crashes
    if crashed.any():
        batch.seen_crashes = np.where(crashed, batch.crashes, batch.seen_crashes)
        batch.since_crash = np.where(crashed, 0.0, batch.since_crash)
        batch.vm_target = np.where(crashed, 0, batch.vm_target)
        batch._set_target(crashed, np.zeros(n, dtype=np.int64))

    _ensure_online_reserve(batch)

    online = _online_mask(batch)
    n_online = online.sum(axis=1)
    demand = batch._demand_w()
    battery_needed = demand > batch.ema * 1.02

    # TemporalPolicy.evaluate over sensed aggregates.
    total_dis = np.where(
        online, np.maximum(0.0, batch.sense_i), 0.0
    ).sum(axis=1)
    min_soc = np.where(online, batch.est, np.inf).min(axis=1)
    min_soc = np.where(n_online > 0, min_soc, 0.0)
    cap = CAP_C_RATE * batch.kib_cap * n_online
    act_ckpt = (n_online > 0) & battery_needed & (min_soc <= SOC_FLOOR)
    act_cap = ~act_ckpt & (n_online > 0) & (total_dis > cap)
    act_relax = (
        ~act_ckpt
        & ~act_cap
        & ((total_dis < cap * RELAX_FRACTION) | ~battery_needed)
    )

    do_ckpt = act_ckpt & ~batch.protect.any(axis=1)
    if do_ckpt.any():
        _checkpoint_and_stop(batch, do_ckpt)
        batch.vm_target = np.where(do_ckpt, 0, batch.vm_target)
        # Cabinets stay on the load bus until the save completes.
        batch.protect |= do_ckpt[:, None] & online
    _match_load(batch, ~act_ckpt, act_cap, act_relax)
    _drain_protect(batch)

    # Mode bookkeeping (transitions 3/6/7) on the *current* online set.
    fresh_online = _online_mask(batch)
    batch._transition(
        fresh_online & (batch.mode == _STANDBY) & battery_needed[:, None],
        _DISCHARGING,
    )
    batch._transition(
        fresh_online & (batch.mode == _DISCHARGING) & ~battery_needed[:, None],
        _STANDBY,
    )
    _maybe_restart(batch)
    mismatch = batch._running_count() != batch.alloc_target
    if mismatch.any():
        batch._reconcile(mismatch, batch.alloc_target)


def _ensure_online_reserve(batch) -> None:
    """Keep min_online_units usable cabinets on the load bus."""
    floor = SOC_FLOOR + USABLE_MARGIN
    n_usable = _usable_count(batch, floor)
    demand = batch._demand_w()
    want = np.maximum(
        MIN_ONLINE_UNITS,
        np.minimum(batch.b, (demand // 500.0).astype(np.int64) + 1),
    )
    need = n_usable < want
    if not need.any():
        return
    candidates = (
        ((batch.mode == _OFFLINE) | (batch.mode == _CHARGING))
        & (batch.est > floor + USABLE_MARGIN)
    )
    # Highest SoC first, stable (scalar sort(reverse=True) is stable too).
    key = np.where(candidates, -batch.est, np.inf)
    order = np.argsort(key, axis=1, kind="stable")
    rank = np.empty_like(order)
    np.put_along_axis(
        rank, order, np.broadcast_to(np.arange(batch.b), order.shape), axis=1
    )
    deficit = want - n_usable
    take = need[:, None] & candidates & (rank < deficit[:, None])
    was_charging = take & (batch.mode == _CHARGING)
    was_offline = take & (batch.mode == _OFFLINE)
    batch._transition(was_charging, _STANDBY)
    batch._transition(was_offline, _CHARGING)
    batch._transition(was_offline, _STANDBY)


def _match_load(batch, mask: np.ndarray, act_cap: np.ndarray,
                act_relax: np.ndarray) -> None:
    """Power-aware load matching via duty cycle or VM scaling."""
    cap_target = _sizing_target(batch)

    if batch.actuation == "duty":
        # Duty lives in exact tenths; ±1 deci replicates round(d±0.1, 3).
        new_deci = batch.duty_deci.copy()
        new_deci = np.where(
            act_cap, np.maximum(DUTY_MIN_DECI, batch.duty_deci - 1), new_deci
        )
        new_deci = np.where(
            act_relax, np.minimum(10, batch.duty_deci + 1), new_deci
        )
        changed = mask & (new_deci != batch.duty_deci)
        batch.duty_deci = np.where(changed, new_deci, batch.duty_deci)
        batch_up = (
            mask
            & act_relax
            & (batch.duty_deci >= 10)
            & (cap_target >= batch.vm_target + VM_STEP)
            & (batch.since_batch >= BATCH_RECONFIG_HOLDOFF_S)
        )
        if batch_up.any():
            batch.since_batch = np.where(batch_up, 0.0, batch.since_batch)
            batch.vm_target = np.where(batch_up, cap_target, batch.vm_target)
            batch._set_target(batch_up, cap_target)
        batch_down = (
            mask
            & act_cap
            & (batch.duty_deci <= DUTY_MIN_DECI)
            & (batch.vm_target > VM_STEP)
            & (batch.since_batch >= BATCH_RECONFIG_HOLDOFF_S)
        )
        if batch_down.any():
            batch.since_batch = np.where(batch_down, 0.0, batch.since_batch)
            shrunk = batch.vm_target - VM_STEP
            batch.vm_target = np.where(batch_down, shrunk, batch.vm_target)
            batch._set_target(batch_down, shrunk)
    else:
        new_target = batch.vm_target.copy()
        new_target = np.where(
            act_cap, np.maximum(0, batch.vm_target - VM_STEP), new_target
        )
        new_target = np.where(
            act_relax,
            np.minimum(batch.preferred_vms, batch.vm_target + VM_STEP),
            new_target,
        )
        new_target = np.minimum(new_target, np.maximum(cap_target, 0))
        up = mask & (new_target > batch.vm_target)
        up_blocked = up & (
            (batch.since_up < UPSCALE_HOLDOFF_S)
            | (batch.since_crash < CRASH_BACKOFF_S)
        )
        batch.since_up = np.where(up & ~up_blocked, 0.0, batch.since_up)
        down = mask & (new_target < batch.vm_target) & ~act_cap
        down_blocked = down & (batch.since_down < DOWNSCALE_HOLDOFF_S)
        batch.since_down = np.where(
            down & ~down_blocked, 0.0, batch.since_down
        )
        apply = (
            mask & ~up_blocked & ~down_blocked
            & (new_target != batch.vm_target)
        )
        if apply.any():
            batch.vm_target = np.where(apply, new_target, batch.vm_target)
            batch._set_target(apply, new_target)


def _drain_protect(batch) -> None:
    """Deferred protective switch-outs once the servers are off."""
    pending = batch.protect.any(axis=1)
    if not pending.any():
        return
    ready = pending & ~batch._active_servers()
    if not ready.any():
        return
    cells = (
        ready[:, None]
        & batch.protect
        & ((batch.mode == _STANDBY) | (batch.mode == _DISCHARGING))
    )
    batch._transition(cells, _OFFLINE)
    batch.protect &= ~ready[:, None]


def _maybe_restart(batch) -> None:
    """Restart the cluster after a protective stop, once safe."""
    idle = (batch.vm_target <= 0) & ~batch._active_servers()
    ready = idle & (batch.since_crash >= CRASH_BACKOFF_S)
    ready &= _usable_count(batch, SOC_FLOOR + USABLE_MARGIN) >= MIN_ONLINE_UNITS
    if not ready.any():
        return
    target = _sizing_target(batch)
    go = ready & (target >= MIN_RESTART_VMS)
    if go.any():
        batch.vm_target = np.where(go, target, batch.vm_target)
        batch.duty_deci = np.where(go, 10, batch.duty_deci)
        batch._set_target(go, target)


def _insure_spatial(batch, t: float, k: int) -> None:
    """SPM: offline screening (Fig. 9) + charge batch sizing (Fig. 10)."""
    offline = batch.mode == _OFFLINE
    charging = batch.mode == _CHARGING
    demand = batch._demand_w()
    surplus = np.maximum(0.0, batch.ema - demand)
    usable_any = (
        _online_mask(batch) & (batch.est > SOC_FLOOR)
    ).any(axis=1)
    starving = batch._backlog_at_control(k) & ~usable_any

    daily_budget = LIFETIME_AH / DESIGN_LIFE_DAYS
    prorated = LIFETIME_AH * (t / 86400.0) / DESIGN_LIFE_DAYS
    threshold = prorated + batch.elastic_bonus
    eligible = offline & (batch.sense_dis < threshold[:, None])
    overused = offline & ~eligible
    # Elastic relaxation: starved sites with only over-used cabinets.
    relax = ~eligible.any(axis=1) & overused.any(axis=1) & starving
    if relax.any():
        batch.elastic_bonus = np.where(
            relax,
            batch.elastic_bonus + ELASTIC_STEP * daily_budget,
            batch.elastic_bonus,
        )
        threshold = np.where(relax, prorated + batch.elastic_bonus, threshold)
        eligible = offline & (batch.sense_dis < threshold[:, None])

    with np.errstate(invalid="ignore"):
        n_batch = np.where(
            surplus < MIN_CHARGE_SURPLUS_W,
            0,
            np.maximum(
                1,
                np.floor(surplus / PEAK_CHARGE_POWER_W).astype(np.int64),
            ),
        )
    slots = np.maximum(0, n_batch - charging.sum(axis=1))
    # Priority (lowest usage, then lowest SoC), stable like list.sort.
    key_soc = np.where(eligible, batch.est, np.inf)
    key_dis = np.where(eligible, batch.sense_dis, np.inf)
    order = np.lexsort((key_soc, key_dis), axis=1)
    rank = np.empty_like(order)
    np.put_along_axis(
        rank, order, np.broadcast_to(np.arange(batch.b), order.shape), axis=1
    )
    picked = eligible & (rank < slots[:, None])
    batch._transition(picked, _CHARGING)
    batch._transition(charging & (batch.est >= CHARGE_TO_SOC), _STANDBY)

    # Sunset release: nothing to charge from — free usable cabinets.
    sunset = surplus < MIN_CHARGE_SURPLUS_W
    if sunset.any():
        floor = SOC_FLOOR + 2 * USABLE_MARGIN
        batch._transition(
            sunset[:, None] & (batch.mode == _CHARGING) & (batch.est > floor),
            _STANDBY,
        )


# ======================================================================
# Baseline
# ======================================================================
def baseline_step(batch, k: int) -> None:
    dt = batch.dt
    batch._ctl_elapsed += dt
    if batch._ctl_elapsed < BL_CONTROL_INTERVAL_S:
        return
    batch._ctl_elapsed = 0.0
    batch.since_up += BL_CONTROL_INTERVAL_S
    online_sites = batch.buffer_online.copy()
    _baseline_online(batch, online_sites)
    _baseline_charging(batch, ~online_sites)
    mismatch = batch._running_count() != batch.alloc_target
    if mismatch.any():
        batch._reconcile(mismatch, batch.alloc_target)


def _baseline_retarget(batch, mask: np.ndarray, target: np.ndarray) -> None:
    """BaselineController._retarget: damped upscaling only."""
    up = mask & (target > batch.vm_target)
    up_blocked = up & (batch.since_up < BL_UPSCALE_HOLDOFF_S)
    batch.since_up = np.where(up & ~up_blocked, 0.0, batch.since_up)
    apply = mask & ~up_blocked & (target != batch.vm_target)
    if apply.any():
        batch.vm_target = np.where(apply, target, batch.vm_target)
        batch._set_target(apply, target)


def _baseline_online(batch, mask: np.ndarray) -> None:
    if not mask.any():
        return
    cutoff = batch.v_cutoff + BL_PROTECT_MARGIN_V
    unit_trip = (batch.sense_v <= cutoff) & (batch.sense_i > 0.5)
    tripping = unit_trip.any(axis=1) | (batch.est.min(axis=1) <= BL_SOC_FLOOR)
    trip = mask & (tripping | batch.trip_pending)
    first = trip & ~batch.trip_pending
    if first.any():
        _checkpoint_and_stop(batch, first)
        batch.vm_target = np.where(first, 0, batch.vm_target)
        batch.trip_pending |= first
    # The pull waits until the save completes; then the whole (unified)
    # bank goes offline then onto the charge bus — two relay ops per unit.
    pull = trip & ~batch._active_servers()
    if pull.any():
        cells = pull[:, None] & np.ones((1, batch.b), dtype=bool)
        batch._transition(cells, _OFFLINE)
        batch._transition(cells, _CHARGING)
        batch.buffer_online &= ~pull
        batch.trip_pending &= ~pull

    serve = mask & ~trip
    if not serve.any():
        return
    bank_w = BL_BANK_POWER_PER_UNIT_W * batch.b
    supportable = batch.ema + bank_w
    vms = (supportable // batch.per_vm_w).astype(np.int64)
    target = np.maximum(0, np.minimum(batch.preferred_vms, vms))
    _baseline_retarget(batch, serve, target)

    battery_needed = batch._demand_w() > batch.ema * 1.02
    batch._transition(
        serve[:, None] & (batch.mode == _STANDBY) & battery_needed[:, None],
        _DISCHARGING,
    )
    batch._transition(
        serve[:, None] & (batch.mode == _DISCHARGING) & ~battery_needed[:, None],
        _STANDBY,
    )


def _baseline_charging(batch, mask: np.ndarray) -> None:
    if not mask.any():
        return
    _baseline_retarget(batch, mask, np.zeros(batch.n, dtype=np.int64))
    charged = mask & (batch.est >= BL_CHARGE_TO_SOC).all(axis=1)
    if charged.any():
        cells = charged[:, None] & np.ones((1, batch.b), dtype=bool)
        batch._transition(cells, _STANDBY)
        batch.buffer_online |= charged
