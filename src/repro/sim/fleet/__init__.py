"""Vectorized fleet kernel: batch-simulate many in-situ sites per op.

The scalar engine steps one site at a time at ~21k ticks/s; provisioning
sweeps and Monte Carlo studies need thousands of sites.  This package
holds a structure-of-arrays kernel that steps N independent systems per
numpy op — batched trace irradiance, KiBaM two-well Euler updates,
charger/bus balance, server power and SoC/wear/LVD state — with per-site
RNG streams seeded identically to the scalar path and divergent control
branches handled via boolean masks.

The scalar chunked kernel stays the bit-exact reference: the
:class:`FleetValidator` gates the vectorized path against golden-matrix
run summaries within the invariant tolerance, and the ``fleet`` backend
in :func:`repro.experiments.runner.run_cells` falls back to pool/serial
execution when numpy is missing or a cell uses unsupported features.

numpy is declared as the optional extra ``repro[fleet]``; every entry
point degrades gracefully when it is absent.
"""

from __future__ import annotations

NUMPY_HINT = (
    "the fleet kernel requires numpy — install the optional extra with "
    "`pip install 'repro[fleet]'`, or run with --backend pool|serial"
)


def numpy_available() -> bool:
    """Whether the vectorized backend can run in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy() -> None:
    """Raise a descriptive ImportError when numpy is missing."""
    if not numpy_available():
        raise ImportError(NUMPY_HINT)


from repro.sim.fleet.kernel import (  # noqa: E402
    FleetUnsupported,
    SiteSpec,
    simulate_fleet,
)
from repro.sim.fleet.validator import FleetValidator  # noqa: E402

__all__ = [
    "FleetUnsupported",
    "FleetValidator",
    "NUMPY_HINT",
    "SiteSpec",
    "numpy_available",
    "require_numpy",
    "simulate_fleet",
]
