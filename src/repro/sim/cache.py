"""Content-addressed run cache.

Day-long simulations are deterministic functions of their configuration:
(trace parameters, controller, dt, seed, …) plus the code itself.  This
module memoises their summarised outputs on disk so repeated benchmark and
test invocations of identical configurations are near-instant, while any
change to the configuration *or to the repro source tree* produces a
different key and transparently invalidates stale entries.

Keying scheme
-------------
``cache_key(kind, **parts)`` hashes a canonical JSON encoding of the
parts together with :func:`code_fingerprint` — a SHA-256 over the contents
of every ``repro`` source file, computed once per process.  Entries are
stored as JSON files named by the key, written atomically (temp file +
rename) so concurrent worker processes can share one cache directory.

Configuration
-------------
The cache directory comes from ``REPRO_CACHE_DIR``:

* unset  — ``~/.cache/repro-insure`` (created on demand);
* a path — use that directory;
* ``off`` (or ``0``/``none``/``disabled``) — disable caching entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from collections.abc import Callable
from typing import Any

ENV_VAR = "REPRO_CACHE_DIR"
_DISABLED_VALUES = {"off", "0", "none", "disabled"}

_code_fingerprint: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over the repro package sources (cached per process).

    Any edit to any module under ``repro`` changes the fingerprint, so the
    cache can never serve results computed by different code.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def cache_key(kind: str, **parts: Any) -> str:
    """Stable key for one run configuration.

    ``parts`` must be JSON-encodable; the encoding is canonical (sorted
    keys, no whitespace) so semantically equal configurations collide and
    different ones practically never do.
    """
    payload = json.dumps(
        {"kind": kind, "parts": parts, "code": code_fingerprint()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class RunCache:
    """A directory of JSON result payloads addressed by content key.

    Parameters
    ----------
    directory:
        Cache root; ``None`` resolves from ``REPRO_CACHE_DIR`` (see module
        docstring).  A resolved value of ``None`` means caching is off and
        every operation is a no-op / miss.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        if directory is None:
            self.directory = default_cache_dir()
        else:
            self.directory = Path(directory)

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Any | None:
        """Return the stored payload for ``key``, or None on a miss."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key`` (atomic; safe across processes)."""
        if not self.enabled:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem degrades to "no cache", never
            # to a failed experiment.
            return

    def fetch_or_compute(
        self, key: str, compute: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(payload, hit)``; computes and stores on a miss."""
        cached = self.get(key)
        if cached is not None:
            return cached, True
        payload = compute()
        self.put(key, payload)
        return payload, False

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        if not self.enabled or not self.directory.is_dir():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def entry_count(self) -> int:
        if not self.enabled or not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def default_cache_dir() -> Path | None:
    """Resolve the cache directory from the environment (None = disabled)."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if raw.lower() in _DISABLED_VALUES and raw:
        return None
    if raw:
        return Path(raw)
    return Path.home() / ".cache" / "repro-insure"


def default_cache() -> RunCache:
    """A cache honouring the current environment (cheap to construct)."""
    return RunCache()


# ----------------------------------------------------------------------
# RunSummary serialisation
# ----------------------------------------------------------------------
def summary_to_payload(summary: Any) -> dict[str, Any]:
    """Encode a :class:`~repro.telemetry.metrics.RunSummary` as JSON data.

    All fields are ints/floats; JSON round-trips them exactly (floats are
    serialised via ``repr`` which is lossless for IEEE doubles).
    """
    return dataclasses.asdict(summary)


def summary_from_payload(payload: dict[str, Any]) -> Any:
    from repro.telemetry.metrics import RunSummary

    return RunSummary(**payload)
