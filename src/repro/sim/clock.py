"""Fixed-step simulation clock.

All models in the reproduction advance in lock-step.  The clock tracks
absolute simulated seconds since the start of the run plus a configurable
time-of-day origin so solar geometry and the paper's operating schedule
(first PM on at 8:30 AM, all off after 6:30 PM) can be expressed naturally.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


class Clock:
    """Monotonic fixed-step clock.

    Parameters
    ----------
    dt:
        Step size in seconds.  Must be positive.
    start_hour:
        Time-of-day at ``t == 0`` expressed in hours (e.g. ``7.0`` for
        7:00 AM).  The paper's day-long traces start around 7 AM.
    """

    def __init__(self, dt: float = 1.0, start_hour: float = 7.0) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if not 0.0 <= start_hour < 24.0:
            raise ValueError(f"start_hour must be in [0, 24), got {start_hour}")
        self.dt = float(dt)
        self.start_hour = float(start_hour)
        self.t = 0.0
        self.step_index = 0

    def advance(self) -> None:
        """Move the clock forward by one step."""
        self.step_index += 1
        # Recompute from the step index to avoid floating-point drift over
        # long runs (a day at dt=1 is 86 400 accumulations).
        self.t = self.step_index * self.dt

    @property
    def hours(self) -> float:
        """Simulated hours elapsed since the start of the run."""
        return self.t / SECONDS_PER_HOUR

    @property
    def hour_of_day(self) -> float:
        """Wall-clock hour of day in [0, 24)."""
        return (self.start_hour + self.hours) % 24.0

    @property
    def day_index(self) -> int:
        """Number of whole days elapsed since the run started."""
        return int((self.start_hour * SECONDS_PER_HOUR + self.t) // SECONDS_PER_DAY)

    def is_daytime(self, sunrise: float = 6.5, sunset: float = 19.5) -> bool:
        """Whether the current hour of day falls within daylight hours."""
        return sunrise <= self.hour_of_day < sunset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Clock(t={self.t:.1f}s, step={self.step_index}, "
            f"hour_of_day={self.hour_of_day:.2f})"
        )
