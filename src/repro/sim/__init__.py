"""Discrete-time simulation kernel used by every InSURE subsystem.

The kernel is intentionally small: a fixed-step :class:`~repro.sim.clock.Clock`,
a :class:`~repro.sim.component.Component` protocol, an
:class:`~repro.sim.engine.Engine` that steps registered components in a
deterministic order, a seeded random-stream factory, and structured trace /
event recording.  Everything in the reproduction (battery kinetics, solar
generation, PLC control, server cluster) is built as components stepped by a
single engine so experiments are reproducible end to end.
"""

from repro.sim.clock import Clock, SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.sim.component import Component
from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, EventLog
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder

__all__ = [
    "Clock",
    "Component",
    "Engine",
    "Event",
    "EventLog",
    "RandomStreams",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SimulationError",
    "TraceRecorder",
]
