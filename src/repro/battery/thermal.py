"""Ambient temperature effects on lead-acid cabinets.

The prototype's cost model budgets HVAC (Figure 22) because in-situ
containers see real weather.  This module provides the two dominant
lead-acid temperature couplings as an opt-in refinement:

* **Capacity derating** — available capacity falls roughly 0.8 %/°C
  below the 25 °C rating (electrolyte viscosity / reaction kinetics).
* **Wear acceleration** — corrosion follows an Arrhenius law: service
  life roughly halves for every 10 °C above 25 °C.

plus a simple diurnal ambient profile for a field container.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

REFERENCE_C = 25.0


@dataclass(frozen=True)
class ThermalParams:
    """Temperature-coupling constants."""

    #: Fractional capacity change per °C below reference.
    capacity_slope_per_c: float = 0.008
    #: Life halves for every this many °C above reference.
    arrhenius_doubling_c: float = 10.0
    #: Coldest capacity factor honoured (deep-frozen electrolyte floor).
    min_capacity_factor: float = 0.5

    def validate(self) -> None:
        if self.capacity_slope_per_c <= 0:
            raise ValueError("capacity_slope_per_c must be positive")
        if self.arrhenius_doubling_c <= 0:
            raise ValueError("arrhenius_doubling_c must be positive")
        if not 0.0 < self.min_capacity_factor <= 1.0:
            raise ValueError("min_capacity_factor must be in (0, 1]")


def capacity_factor(ambient_c: float, params: ThermalParams | None = None) -> float:
    """Usable-capacity multiplier at ``ambient_c``.

    Below 25 °C capacity shrinks linearly; above, it is held at 1.0 (the
    small high-temperature capacity gain is not worth modelling next to
    the wear it costs).
    """
    p = params or ThermalParams()
    p.validate()
    if ambient_c >= REFERENCE_C:
        return 1.0
    factor = 1.0 - p.capacity_slope_per_c * (REFERENCE_C - ambient_c)
    return max(p.min_capacity_factor, factor)


def wear_factor(ambient_c: float, params: ThermalParams | None = None) -> float:
    """Wear-rate multiplier at ``ambient_c`` (Arrhenius above reference)."""
    p = params or ThermalParams()
    p.validate()
    if ambient_c <= REFERENCE_C:
        return 1.0
    return math.pow(2.0, (ambient_c - REFERENCE_C) / p.arrhenius_doubling_c)


@dataclass(frozen=True)
class AmbientProfile:
    """Sinusoidal diurnal temperature for a field container.

    Attributes
    ----------
    mean_c:
        Daily mean temperature.
    swing_c:
        Half peak-to-trough amplitude.
    hottest_hour:
        Hour of day of the temperature maximum (~15:00 typically).
    """

    mean_c: float = 28.0
    swing_c: float = 7.0
    hottest_hour: float = 15.0

    def __post_init__(self) -> None:
        if self.swing_c < 0:
            raise ValueError("swing_c must be non-negative")
        if not 0.0 <= self.hottest_hour < 24.0:
            raise ValueError("hottest_hour must be in [0, 24)")

    def at(self, hour_of_day: float) -> float:
        """Ambient temperature at the given hour of day."""
        if not 0.0 <= hour_of_day < 24.0:
            raise ValueError("hour_of_day must be in [0, 24)")
        phase = 2.0 * math.pi * (hour_of_day - self.hottest_hour) / 24.0
        return self.mean_c + self.swing_c * math.cos(phase)

    def daily_wear_factor(self, params: ThermalParams | None = None,
                          samples: int = 48) -> float:
        """Mean wear multiplier over a full day of this profile.

        Because the Arrhenius law is convex, a swinging temperature wears
        harder than its mean — the quantitative case for the HVAC line in
        Figure 22's budget.
        """
        if samples < 2:
            raise ValueError("samples must be >= 2")
        total = 0.0
        for i in range(samples):
            hour = 24.0 * i / samples
            total += wear_factor(self.at(hour), params)
        return total / samples
