"""One switchable battery cabinet.

A :class:`BatteryUnit` couples the KiBaM charge state, the terminal-voltage
model, the charge-acceptance model and the wear counter, and carries the
operating mode of Figure 7 of the paper (Offline / Charging / Standby /
Discharging).  Mode *transitions* are owned by the controllers in
:mod:`repro.core`; the unit only enforces physical consistency (e.g. a
cabinet cannot charge and discharge in the same step).
"""

from __future__ import annotations

import enum

from repro.battery.acceptance import ChargeAcceptance
from repro.battery.kibam import KiBaM
from repro.battery.params import BatteryParams
from repro.battery.voltage import VoltageModel
from repro.battery.wear import WearModel

_SECONDS_PER_DAY = 86400.0


class BatteryMode(enum.Enum):
    """Operating modes of the InSURE energy buffer (paper Figure 7)."""

    OFFLINE = "offline"
    CHARGING = "charging"
    STANDBY = "standby"
    DISCHARGING = "discharging"


class BatteryUnit:
    """A single relay-switchable battery cabinet.

    Parameters
    ----------
    name:
        Identifier used in traces and event logs (``"battery-1"`` ...).
    params:
        Electrochemical and wear constants.
    soc:
        Initial state of charge.
    """

    def __init__(self, name: str, params: BatteryParams | None = None, soc: float = 1.0) -> None:
        self.name = name
        self.params = (params or BatteryParams()).validate()
        self.kibam = KiBaM(self.params.capacity_ah, self.params.kibam, soc=soc)
        self.voltage_model = VoltageModel(self.params.voltage)
        self.acceptance = ChargeAcceptance(self.params.capacity_ah, self.params.acceptance)
        self.wear = WearModel(self.params.capacity_ah, self.params.wear)
        self.mode = BatteryMode.STANDBY
        #: Signed current applied in the most recent step (+ = discharge).
        self.last_current = 0.0
        #: Cumulative loss bookkeeping read by the obs energy ledger.
        #: Ah leaked to self-discharge while resting.
        self.self_discharge_ah = 0.0
        #: Ah applied at the terminals that never reached the wells
        #: (acceptance taper, gassing, parasitic draw).
        self.gassing_ah = 0.0
        #: Memo for :attr:`terminal_voltage` — the bus, the sensing chain
        #: and the metrics collector all read it against the same state
        #: within one tick.  Keyed by (y1, last_current), its only inputs.
        self._tv_y1 = float("nan")
        self._tv_current = float("nan")
        self._tv_value = 0.0
        #: Memo for :meth:`max_discharge_current` — the bus computes it for
        #: its split plan and :meth:`apply_discharge` re-checks it within
        #: the same tick.  Pure in the well levels and the step length.
        self._mdc_key: tuple[float, float, float] | None = None
        self._mdc_value = 0.0

    # ------------------------------------------------------------------
    # Observables
    # ------------------------------------------------------------------
    @property
    def soc(self) -> float:
        return self.kibam.soc

    @property
    def terminal_voltage(self) -> float:
        """Terminal voltage at the most recently applied current."""
        y1 = self.kibam.y1
        current = self.last_current
        if y1 != self._tv_y1 or current != self._tv_current:
            self._tv_y1 = y1
            self._tv_current = current
            self._tv_value = self.voltage_model.terminal(
                self.kibam.available_head, current
            )
        return self._tv_value

    @property
    def open_circuit_voltage(self) -> float:
        return self.voltage_model.emf(self.kibam.available_head)

    @property
    def stored_energy_wh(self) -> float:
        """Energy content approximated at nominal voltage."""
        return self.kibam.charge_ah * self.params.nominal_voltage

    def is_online(self) -> bool:
        """Whether the cabinet is connected to the load bus."""
        return self.mode in (BatteryMode.STANDBY, BatteryMode.DISCHARGING)

    # ------------------------------------------------------------------
    # Capability queries (used by the power bus and controllers)
    # ------------------------------------------------------------------
    def max_discharge_current(self, dt_seconds: float) -> float:
        """Largest discharge current honouring both kinetics and the LVD."""
        key = (self.kibam.y1, self.kibam.y2, dt_seconds)
        if key != self._mdc_key:
            kinetic = self.kibam.max_discharge_current(dt_seconds)
            cutoff = self.voltage_model.max_discharge_for_cutoff(self.kibam.available_head)
            self._mdc_key = key
            self._mdc_value = max(0.0, min(kinetic, cutoff))
        return self._mdc_value

    def max_charge_current(self) -> float:
        """Acceptance ceiling at the current state of charge."""
        return self.acceptance.max_current(self.soc)

    # ------------------------------------------------------------------
    # Physics steps (applied by the power bus each tick)
    # ------------------------------------------------------------------
    def apply_discharge(self, amps: float, dt_seconds: float) -> float:
        """Discharge at up to ``amps`` for one step; returns amps delivered."""
        if amps < 0:
            raise ValueError("discharge current must be non-negative")
        allowed = min(amps, self.max_discharge_current(dt_seconds))
        if allowed <= 0.0:
            self.idle(dt_seconds)
            return 0.0
        soc_before = self.soc
        moved_ah = self.kibam.apply_current(allowed, dt_seconds)
        delivered = moved_ah * 3600.0 / dt_seconds
        self.wear.record(delivered, soc_before, dt_seconds)
        self.last_current = delivered
        return delivered

    def apply_charge(self, amps: float, dt_seconds: float) -> float:
        """Charge with ``amps`` applied at the terminals for one step.

        Acceptance, parasitic and gassing losses are deducted before the
        charge reaches the wells.  Returns the current that actually landed.
        """
        if amps < 0:
            raise ValueError("charge current must be non-negative")
        effective = self.acceptance.effective_current(amps, self.soc)
        if effective <= 0.0:
            self.idle(dt_seconds)
            self.last_current = -min(amps, self.params.acceptance.parasitic_amps)
            self.gassing_ah += amps * dt_seconds / 3600.0
            return 0.0
        moved_ah = self.kibam.apply_current(-effective, dt_seconds)
        stored = -moved_ah * 3600.0 / dt_seconds  # positive amps actually stored
        self.wear.record(-stored, self.soc, dt_seconds)
        self.last_current = -stored
        self.gassing_ah += (amps - stored) * dt_seconds / 3600.0
        return stored

    def idle(self, dt_seconds: float) -> None:
        """Rest for one step: recovery diffusion plus self-discharge."""
        leak_ah = (
            self.params.self_discharge_per_day
            * self.params.capacity_ah
            * dt_seconds
            / _SECONDS_PER_DAY
        )
        leak_amps = leak_ah * 3600.0 / dt_seconds
        self.kibam.apply_current(leak_amps, dt_seconds)
        self.last_current = 0.0
        self.self_discharge_ah += leak_ah

    # ------------------------------------------------------------------
    # Mode handling
    # ------------------------------------------------------------------
    def set_mode(self, mode: BatteryMode) -> bool:
        """Set the operating mode; returns True if it changed."""
        if mode is self.mode:
            return False
        self.mode = mode
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatteryUnit({self.name!r}, soc={self.soc:.3f}, "
            f"mode={self.mode.value}, v={self.terminal_voltage:.2f})"
        )
