"""Terminal voltage model for a lead-acid cabinet.

The open-circuit EMF tracks the *available-well head* of the KiBaM state
rather than total SoC: under heavy discharge the available well runs ahead
of the bound well, so the terminal voltage sags beyond the ohmic drop and
then recovers at rest — reproducing the switch-out / capacity-recovery
traces in Figures 4(b) and 5 of the paper.
"""

from __future__ import annotations

from repro.battery.params import VoltageParams


class VoltageModel:
    """Maps electrochemical state and current to terminal voltage."""

    def __init__(self, params: VoltageParams) -> None:
        params.validate()
        self.params = params

    def emf(self, available_head: float) -> float:
        """Open-circuit EMF as a function of the available-well head."""
        head = available_head
        if head < 0.0:
            head = 0.0
        elif head > 1.0:
            head = 1.0
        p = self.params
        # Mildly convex profile: lead-acid voltage falls slowly over the
        # mid range and quickly near empty.
        shaped = head ** 0.75
        empty = p.emf_empty
        return empty + (p.emf_full - empty) * shaped

    def terminal(self, available_head: float, amps: float) -> float:
        """Terminal voltage at signed current (positive = discharge).

        Charging raises the terminal above EMF; the value is clamped to the
        absorption setpoint ``v_charge_max`` that a CC/CV charger enforces.
        """
        v = self.emf(available_head) - amps * self.params.r_internal_ohm
        if amps < 0.0:
            v = min(v, self.params.v_charge_max)
        return v

    def below_cutoff(self, available_head: float, amps: float) -> bool:
        """Whether the loaded terminal voltage violates the LVD threshold."""
        return self.terminal(available_head, amps) < self.params.v_cutoff

    def max_discharge_for_cutoff(self, available_head: float) -> float:
        """Largest discharge current keeping the terminal at/above cutoff."""
        headroom = self.emf(available_head) - self.params.v_cutoff
        return max(0.0, headroom / self.params.r_internal_ohm)
