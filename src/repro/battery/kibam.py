"""Kinetic Battery Model (KiBaM) state integration.

KiBaM (Manwell & McGowan) splits the stored charge into an *available* well
that feeds the terminals directly and a *bound* well that replenishes the
available well through a diffusion term proportional to the head difference
between the wells:

    dy1/dt = -i(t) + k' * (h2 - h1)
    dy2/dt =        - k' * (h2 - h1)

with ``h1 = y1/c``, ``h2 = y2/(1-c)`` and ``k' = k * c * (1-c)``.

Two battery behaviours the paper leans on fall out of this model for free:

* **Rate-capacity effect** — a high discharge current drains the available
  well faster than the bound well can refill it, so the apparent capacity
  collapses and terminal voltage sags (Figure 4b, "super-fast capacity drop
  at high current").
* **Recovery effect** — when the load drops, bound charge diffuses back and
  the apparent capacity recovers (Figure 4b, "capacity recovery").

Charge and time units are ampere-hours and hours internally; the public
interface takes seconds to match the simulation clock.
"""

from __future__ import annotations

import math

from repro.battery.params import KiBaMParams

_SECONDS_PER_HOUR = 3600.0


class KiBaM:
    """Two-well kinetic charge state for one battery cabinet.

    Parameters
    ----------
    capacity_ah:
        Total capacity of the cabinet.
    params:
        KiBaM constants (well split ``c`` and rate ``k``).
    soc:
        Initial state of charge in [0, 1]; both wells start at equal head.
    """

    def __init__(
        self,
        capacity_ah: float,
        params: KiBaMParams,
        soc: float = 1.0,
        integrator: str = "euler",
    ) -> None:
        if capacity_ah <= 0:
            raise ValueError("capacity_ah must be positive")
        if not 0.0 <= soc <= 1.0:
            raise ValueError(f"initial soc must be in [0,1], got {soc}")
        if integrator not in ("euler", "exact"):
            raise ValueError(f"integrator must be 'euler' or 'exact', got {integrator!r}")
        params.validate()
        self.capacity_ah = float(capacity_ah)
        self.params = params
        self.integrator = integrator
        self.y1 = soc * params.c * capacity_ah
        self.y2 = soc * (1.0 - params.c) * capacity_ah

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def charge_ah(self) -> float:
        """Total stored charge (both wells)."""
        return self.y1 + self.y2

    @property
    def soc(self) -> float:
        """Total state of charge in [0, 1]."""
        return self.charge_ah / self.capacity_ah

    @property
    def available_head(self) -> float:
        """Normalised head of the available well, h1 in [0, 1].

        This is what the terminal "sees": EMF tracks the available head, so
        high-rate discharge depresses it below the total SoC.
        """
        return self.y1 / (self.params.c * self.capacity_ah)

    @property
    def bound_head(self) -> float:
        """Normalised head of the bound well, h2 in [0, 1]."""
        return self.y2 / ((1.0 - self.params.c) * self.capacity_ah)

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def apply_current(self, amps: float, dt_seconds: float) -> float:
        """Integrate one step at signed current ``amps``.

        Positive ``amps`` discharges, negative charges (charge enters the
        available well first, then diffuses into the bound well, so a burst
        of charging is also rate-limited — mirroring real acceptance).

        Returns the ampere-hours actually moved (positive for discharge),
        which can be less than requested if a well saturates or empties.
        """
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        if self.integrator == "exact":
            return self.apply_current_exact(amps, dt_seconds)
        dt_h = dt_seconds / _SECONDS_PER_HOUR
        p = self.params
        capacity = self.capacity_ah
        c = p.c
        y1 = self.y1
        y2 = self.y2
        # Classic KiBaM flow: k' * (h2 - h1) with heads in charge units, i.e.
        # k * c * (1-c) * capacity * (normalised head difference), in Ah/h.
        k_eff = p.k_per_hour * c * (1.0 - c) * capacity

        diffusion = k_eff * (y2 / ((1.0 - c) * capacity) - y1 / (c * capacity)) * dt_h
        requested = amps * dt_h  # Ah removed from the available well.

        y1_new = y1 - requested + diffusion
        y2_new = y2 - diffusion
        return self._clamp_wells(y1_new, y2_new, requested)

    def apply_current_exact(self, amps: float, dt_seconds: float) -> float:
        """Integrate one step with the closed-form (exponential) solution.

        The two-well ODE is linear with constant coefficients, so for a
        constant current ``i`` it has an exact solution: total charge drains
        at exactly ``i`` while the head difference ``D = h2 - h1`` relaxes
        exponentially toward its steady state ``i / (k c C)`` at rate ``k``:

            y(t)  = y0 - i t
            D(t)  = D_inf + (D0 - D_inf) e^{-k t},  D_inf = i / (k c C)
            y1(t) = c y(t) - c (1-c) C D(t)

        Unlike forward Euler this is accurate for *any* step size, so
        battery state can advance over large internal substeps with no
        accuracy loss.  Well clamping at empty/full uses the same rules as
        the Euler step, so the ampere-hours reported as moved stay exactly
        consistent with the change in total stored charge.
        """
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        dt_h = dt_seconds / _SECONDS_PER_HOUR
        p = self.params
        capacity = self.capacity_ah
        c = p.c
        k = p.k_per_hour
        y1 = self.y1
        y2 = self.y2

        total0 = y1 + y2
        d0 = y2 / ((1.0 - c) * capacity) - y1 / (c * capacity)
        d_inf = amps / (k * c * capacity)
        d_t = d_inf + (d0 - d_inf) * math.exp(-k * dt_h)
        requested = amps * dt_h
        total_t = total0 - requested

        y1_new = c * total_t - c * (1.0 - c) * capacity * d_t
        y2_new = total_t - y1_new
        return self._clamp_wells(y1_new, y2_new, requested)

    def _clamp_wells(self, y1_new: float, y2_new: float, requested: float) -> float:
        """Clamp both wells to their physical range; report what moved."""
        p = self.params
        y1_cap = p.c * self.capacity_ah
        moved = requested
        if y1_new < 0.0:
            moved = requested + y1_new  # shortfall on discharge
            y1_new = 0.0
        elif y1_new > y1_cap:
            moved = requested + (y1_new - y1_cap)  # overflow on charge
            y1_new = y1_cap

        y2_cap = (1.0 - p.c) * self.capacity_ah
        self.y1 = y1_new
        self.y2 = min(max(y2_new, 0.0), y2_cap)
        return moved

    def rest(self, dt_seconds: float) -> None:
        """Let the wells equalise with no external current (recovery)."""
        self.apply_current(0.0, dt_seconds)

    def set_soc(self, soc: float) -> None:
        """Reset both wells to an equalised state of charge."""
        if not 0.0 <= soc <= 1.0:
            raise ValueError(f"soc must be in [0,1], got {soc}")
        self.y1 = soc * self.params.c * self.capacity_ah
        self.y2 = soc * (1.0 - self.params.c) * self.capacity_ah

    def max_discharge_current(self, dt_seconds: float) -> float:
        """Largest sustainable discharge current for one step of ``dt``."""
        dt_h = dt_seconds / _SECONDS_PER_HOUR
        p = self.params
        k_eff = p.k_per_hour * p.c * (1.0 - p.c) * self.capacity_ah
        diffusion = k_eff * (self.bound_head - self.available_head) * dt_h
        return max(0.0, (self.y1 + diffusion) / dt_h)
