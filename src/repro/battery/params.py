"""Battery parameter sets.

Defaults model one InSURE battery cabinet: two UPG UB1280 12 V / 35 Ah VRLA
batteries in series (24 V nominal), matching the voltage ranges logged in
Table 6 of the paper (initial 25.4 V, maximum 28.8 V, minima around 23.3 V).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KiBaMParams:
    """Kinetic Battery Model constants.

    Attributes
    ----------
    c:
        Fraction of total capacity held in the available well.  Lead-acid
        values are typically 0.55-0.65.
    k_per_hour:
        Diffusion rate constant between the bound and available wells, in
        1/hour.  Governs how quickly capacity "recovers" at low load.
    """

    c: float = 0.62
    k_per_hour: float = 4.0

    def validate(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ValueError(f"KiBaM c must be in (0,1), got {self.c}")
        if self.k_per_hour <= 0:
            raise ValueError(f"KiBaM k must be positive, got {self.k_per_hour}")


@dataclass(frozen=True)
class VoltageParams:
    """Open-circuit EMF and ohmic parameters for a 24 V cabinet."""

    emf_empty: float = 23.0
    emf_full: float = 25.6
    r_internal_ohm: float = 0.030
    #: Constant-voltage charging setpoint (absorption voltage).
    v_charge_max: float = 28.8
    #: Low-voltage disconnect threshold used for system protection.
    v_cutoff: float = 23.3

    def validate(self) -> None:
        if self.emf_full <= self.emf_empty:
            raise ValueError("emf_full must exceed emf_empty")
        if self.r_internal_ohm <= 0:
            raise ValueError("internal resistance must be positive")
        if self.v_charge_max <= self.emf_full:
            raise ValueError("v_charge_max must exceed emf_full")
        if not self.emf_empty <= self.v_cutoff < self.emf_full:
            raise ValueError("v_cutoff must lie within the EMF range")


@dataclass(frozen=True)
class AcceptanceParams:
    """Charge-acceptance and charging-loss constants.

    Attributes
    ----------
    bulk_c_rate:
        Maximum charge current in the bulk (constant-current) phase as a
        fraction of capacity per hour (0.25 C is typical for VRLA).
    taper_start_soc:
        State of charge at which the absorption taper begins.
    taper_exponent:
        Steepness of the exponential taper towards full charge.
    float_c_rate:
        Residual float-charge current at 100 % SoC.
    gassing_soc:
        SoC above which side reactions (gassing) start consuming current.
    gassing_fraction:
        Fraction of charge current lost to gassing at 100 % SoC.
    parasitic_amps:
        Per-cabinet constant side-reaction / conversion overhead drawn
        whenever the cabinet is being charged.  This is the term that makes
        concentrating a scarce solar budget on fewer batteries faster
        (Figure 4a): charging N cabinets at once pays the overhead N times.
    """

    bulk_c_rate: float = 0.25
    taper_start_soc: float = 0.85
    taper_exponent: float = 4.0
    float_c_rate: float = 0.01
    gassing_soc: float = 0.88
    gassing_fraction: float = 0.30
    parasitic_amps: float = 0.6

    def validate(self) -> None:
        if self.bulk_c_rate <= 0:
            raise ValueError("bulk_c_rate must be positive")
        if not 0.0 < self.taper_start_soc < 1.0:
            raise ValueError("taper_start_soc must be in (0,1)")
        if self.float_c_rate < 0 or self.float_c_rate > self.bulk_c_rate:
            raise ValueError("float_c_rate must be in [0, bulk_c_rate]")
        if not 0.0 < self.gassing_soc < 1.0:
            raise ValueError("gassing_soc must be in (0,1)")
        if not 0.0 <= self.gassing_fraction <= 1.0:
            raise ValueError("gassing_fraction must be in [0,1]")
        if self.parasitic_amps < 0:
            raise ValueError("parasitic_amps must be non-negative")


@dataclass(frozen=True)
class WearParams:
    """Ampere-hour throughput wear constants.

    The lifetime throughput default corresponds to roughly 500 full cycles
    of a 35 Ah cabinet (discharge Ah only), the paper's 4-5 year service
    expectation under daily cycling.
    """

    lifetime_ah: float = 17500.0
    design_life_days: float = 4.0 * 365.0
    #: Extra wear multiplier slope for discharge C-rates above ``stress_c_rate``.
    stress_c_rate: float = 0.30
    stress_rate_slope: float = 2.0
    #: Extra wear multiplier slope for discharging below ``deep_soc``.
    deep_soc: float = 0.45
    deep_slope: float = 1.5

    def validate(self) -> None:
        if self.lifetime_ah <= 0:
            raise ValueError("lifetime_ah must be positive")
        if self.design_life_days <= 0:
            raise ValueError("design_life_days must be positive")
        if self.stress_c_rate <= 0 or self.deep_soc <= 0:
            raise ValueError("stress thresholds must be positive")


@dataclass(frozen=True)
class BatteryParams:
    """Complete parameter set for one battery cabinet."""

    capacity_ah: float = 35.0
    nominal_voltage: float = 24.0
    #: Self-discharge rate (fraction of capacity per day) while idle.
    self_discharge_per_day: float = 0.001
    kibam: KiBaMParams = field(default_factory=KiBaMParams)
    voltage: VoltageParams = field(default_factory=VoltageParams)
    acceptance: AcceptanceParams = field(default_factory=AcceptanceParams)
    wear: WearParams = field(default_factory=WearParams)

    def validate(self) -> "BatteryParams":
        if self.capacity_ah <= 0:
            raise ValueError("capacity_ah must be positive")
        if self.nominal_voltage <= 0:
            raise ValueError("nominal_voltage must be positive")
        if self.self_discharge_per_day < 0:
            raise ValueError("self_discharge_per_day must be non-negative")
        self.kibam.validate()
        self.voltage.validate()
        self.acceptance.validate()
        self.wear.validate()
        return self

    @property
    def energy_wh(self) -> float:
        """Nominal stored energy of a full cabinet in watt-hours."""
        return self.capacity_ah * self.nominal_voltage
