"""Battery bank: the collection of switchable cabinets forming the e-Buffer.

The bank offers aggregate observables (stored energy, voltage statistics —
Table 6's "Battery Volt. sigma" column) and group queries by operating mode.
It does not make control decisions; those belong to the spatial/temporal
managers in :mod:`repro.core`.
"""

from __future__ import annotations

import dataclasses
import statistics
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryMode, BatteryUnit


class BatteryBank:
    """An ordered collection of battery cabinets."""

    def __init__(self, units: Iterable[BatteryUnit]) -> None:
        self.units = list(units)
        if not self.units:
            raise ValueError("a bank needs at least one unit")
        names = [u.name for u in self.units]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate unit names: {names}")

    @classmethod
    def build(
        cls,
        count: int = 3,
        params: BatteryParams | None = None,
        soc: float = 1.0,
        prefix: str = "battery",
        capacity_spread: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> "BatteryBank":
        """Construct ``count`` cabinets (default: the prototype's 3).

        ``capacity_spread`` injects manufacturing variance: each cabinet's
        capacity is scaled by a factor drawn uniformly from
        ``1 +/- capacity_spread`` (real lead-acid lots spread a few
        percent; a worn mixed bank can spread much more).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if capacity_spread < 0 or capacity_spread >= 1:
            raise ValueError("capacity_spread must be in [0, 1)")
        base = (params or BatteryParams()).validate()
        units = []
        for i in range(count):
            unit_params = base
            if capacity_spread > 0:
                if rng is None:
                    raise ValueError("capacity_spread needs an rng")
                factor = 1.0 + rng.uniform(-capacity_spread, capacity_spread)
                unit_params = dataclasses.replace(
                    base, capacity_ah=base.capacity_ah * factor
                )
            units.append(BatteryUnit(f"{prefix}-{i + 1}", unit_params, soc=soc))
        return cls(units)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.units)

    def __iter__(self) -> Iterator[BatteryUnit]:
        return iter(self.units)

    def __getitem__(self, index: int) -> BatteryUnit:
        return self.units[index]

    def by_name(self, name: str) -> BatteryUnit:
        for unit in self.units:
            if unit.name == name:
                return unit
        raise KeyError(f"no unit named {name!r}")

    # ------------------------------------------------------------------
    # Group queries
    # ------------------------------------------------------------------
    def in_mode(self, *modes: BatteryMode) -> list[BatteryUnit]:
        return [u for u in self.units if u.mode in modes]

    def online(self) -> list[BatteryUnit]:
        """Units connected to the load bus (standby or discharging)."""
        return [u for u in self.units if u.is_online()]

    def where(self, predicate: Callable[[BatteryUnit], bool]) -> list[BatteryUnit]:
        return [u for u in self.units if predicate(u)]

    def set_all_modes(self, mode: BatteryMode) -> int:
        """Force every unit into ``mode`` (unified-buffer baseline behaviour).

        Returns the number of units whose mode actually changed, i.e. the
        number of relay actuations this implies.
        """
        return sum(1 for u in self.units if u.set_mode(mode))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def stored_energy_wh(self) -> float:
        return sum(u.stored_energy_wh for u in self.units)

    @property
    def capacity_wh(self) -> float:
        return sum(u.params.energy_wh for u in self.units)

    @property
    def mean_soc(self) -> float:
        return sum(u.soc for u in self.units) / len(self.units)

    @property
    def mean_voltage(self) -> float:
        return sum(u.terminal_voltage for u in self.units) / len(self.units)

    @property
    def min_voltage(self) -> float:
        return min(u.terminal_voltage for u in self.units)

    def voltage_stdev(self) -> float:
        """Population σ of unit terminal voltages (0 for a single unit)."""
        if len(self.units) == 1:
            return 0.0
        return statistics.pstdev(u.terminal_voltage for u in self.units)

    def max_discharge_power(self, dt_seconds: float) -> float:
        """Total power (W) the online units can deliver this step."""
        return sum(
            u.max_discharge_current(dt_seconds) * u.terminal_voltage for u in self.online()
        )

    def total_discharge_ah(self) -> float:
        return sum(u.wear.discharge_ah for u in self.units)

    def discharge_imbalance(self) -> float:
        """Spread of per-unit discharge throughput (max - min, Ah).

        The spatial manager's balancing objective drives this towards zero.
        """
        values = [u.wear.discharge_ah for u in self.units]
        return max(values) - min(values)
