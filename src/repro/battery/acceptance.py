"""Charge acceptance and charging-loss model.

Lead-acid charge acceptance is high when the battery is empty and collapses
as it approaches full charge (the paper cites [54]); on top of that, a
roughly constant side-reaction current is consumed whenever a cabinet is
being charged, and gassing diverts a growing fraction of the current near
the top of charge.  Together these make *concentrating* a limited solar
budget on fewer cabinets strictly faster than batch charging — the
mechanism behind Figure 4(a) and the adaptive batch sizing of Figure 10.
"""

from __future__ import annotations

import math

from repro.battery.params import AcceptanceParams


class ChargeAcceptance:
    """SoC-dependent charge acceptance for one cabinet.

    Parameters
    ----------
    capacity_ah:
        Cabinet capacity, used to convert C-rates into amperes.
    params:
        Acceptance constants.
    """

    def __init__(self, capacity_ah: float, params: AcceptanceParams) -> None:
        if capacity_ah <= 0:
            raise ValueError("capacity_ah must be positive")
        params.validate()
        self.capacity_ah = float(capacity_ah)
        self.params = params

    def max_current(self, soc: float) -> float:
        """Maximum current (A) the battery accepts at state of charge ``soc``.

        Constant-current plateau below ``taper_start_soc``, exponential
        taper above it, floored at the float current.
        """
        soc = min(max(soc, 0.0), 1.0)
        p = self.params
        bulk = p.bulk_c_rate * self.capacity_ah
        floor = p.float_c_rate * self.capacity_ah
        if soc <= p.taper_start_soc:
            return bulk
        span = 1.0 - p.taper_start_soc
        frac = (soc - p.taper_start_soc) / span
        tapered = bulk * math.exp(-p.taper_exponent * frac)
        return max(tapered, floor)

    def effective_current(self, applied_amps: float, soc: float) -> float:
        """Current that actually lands in the wells for ``applied_amps``.

        Losses are (1) a constant parasitic side-reaction draw and (2) a
        gassing fraction that grows linearly above ``gassing_soc``.  The
        result is clamped to the acceptance ceiling and never negative.
        """
        if applied_amps <= 0.0:
            return 0.0
        p = self.params
        accepted = min(applied_amps, self.max_current(soc))
        accepted = max(0.0, accepted - p.parasitic_amps)
        if soc > p.gassing_soc:
            frac = (soc - p.gassing_soc) / (1.0 - p.gassing_soc)
            accepted *= 1.0 - p.gassing_fraction * min(frac, 1.0)
        return accepted

    def charging_efficiency(self, applied_amps: float, soc: float) -> float:
        """Coulombic efficiency of charging at the given operating point."""
        if applied_amps <= 0.0:
            return 0.0
        return self.effective_current(applied_amps, soc) / applied_amps
