"""Ampere-hour throughput wear model.

The paper's lifetime argument (via its reference [56]) is that the total
electric charge a lead-acid battery can pass before wearing out is roughly
constant across charge/discharge regimes, so balancing Ah throughput across
units extends the *bank's* life.  We extend the plain Ah counter with a
stress weighting: discharging at a high C-rate or at deep depth of
discharge consumes disproportionate life, which is why the temporal power
manager's discharge capping buys the 21-24 % service-life gains of
Figure 19.
"""

from __future__ import annotations

from repro.battery.params import WearParams

_SECONDS_PER_HOUR = 3600.0


class WearModel:
    """Tracks raw and stress-weighted discharge throughput for one unit."""

    def __init__(self, capacity_ah: float, params: WearParams) -> None:
        if capacity_ah <= 0:
            raise ValueError("capacity_ah must be positive")
        params.validate()
        self.capacity_ah = float(capacity_ah)
        self.params = params
        #: Raw discharge throughput (Ah) — the SPM's AhT[i] usage statistic.
        self.discharge_ah = 0.0
        #: Raw charge throughput (Ah).
        self.charge_ah = 0.0
        #: Stress-weighted throughput (Ah-equivalent) for life projection.
        self.weighted_ah = 0.0

    def stress_factor(self, amps: float, soc: float) -> float:
        """Wear multiplier for discharging at ``amps`` from ``soc``."""
        if amps <= 0.0:
            return 1.0
        p = self.params
        c_rate = amps / self.capacity_ah
        factor = 1.0
        if c_rate > p.stress_c_rate:
            factor += p.stress_rate_slope * (c_rate - p.stress_c_rate)
        if soc < p.deep_soc:
            factor += p.deep_slope * (p.deep_soc - soc)
        return factor

    def record(self, amps: float, soc: float, dt_seconds: float) -> None:
        """Account one integration step at signed current ``amps``."""
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        ah = abs(amps) * dt_seconds / _SECONDS_PER_HOUR
        if amps > 0.0:
            self.discharge_ah += ah
            self.weighted_ah += ah * self.stress_factor(amps, soc)
        elif amps < 0.0:
            self.charge_ah += ah

    # ------------------------------------------------------------------
    # Life projection
    # ------------------------------------------------------------------
    @property
    def life_fraction_used(self) -> float:
        """Fraction of lifetime throughput consumed (stress-weighted)."""
        return min(1.0, self.weighted_ah / self.params.lifetime_ah)

    def projected_life_days(self, elapsed_seconds: float) -> float:
        """Projected service life (days) if the observed usage continued.

        Capped at shelf life implied by ``design_life_days`` times a small
        margin, since an unused battery still ages chemically.
        """
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        shelf_cap = self.params.design_life_days * 1.5
        if self.weighted_ah <= 0.0:
            return shelf_cap
        elapsed_days = elapsed_seconds / 86400.0
        rate_per_day = self.weighted_ah / elapsed_days
        return min(shelf_cap, self.params.lifetime_ah / rate_per_day)

    def discharge_budget(self, elapsed_seconds: float, unused_carryover: float = 0.0) -> float:
        """Eq. 1 of the paper: cumulative discharge allowance at time ``T``.

        delta_D = D_U + D_L * T / T_L — the unused budget from the previous
        control period plus the lifetime throughput prorated over the
        desired lifetime.
        """
        p = self.params
        elapsed_days = elapsed_seconds / 86400.0
        return unused_carryover + p.lifetime_ah * elapsed_days / p.design_life_days
