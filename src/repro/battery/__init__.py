"""Lead-acid battery substrate.

The InSURE prototype used six UPG UB1280 12 V / 35 Ah valve-regulated
lead-acid batteries arranged as three 24 V cabinets, each independently
switchable through a relay pair.  This package models one cabinet as a
:class:`~repro.battery.unit.BatteryUnit` built from four coupled models:

* :mod:`repro.battery.kibam` — the Kinetic Battery Model (two-well), which
  natively reproduces the *rate-capacity effect* (fast capacity drop at high
  discharge current) and the *recovery effect* (capacity returning during low
  demand) that Figure 4(b) of the paper measures.
* :mod:`repro.battery.voltage` — open-circuit EMF as a function of the
  available-well head plus ohmic terminal behaviour, giving the voltage
  traces of Figures 5, 14 and 16.
* :mod:`repro.battery.acceptance` — state-of-charge dependent charge
  acceptance with gassing/side-reaction losses, the mechanism behind the
  sequential-vs-batch charging result of Figure 4(a).
* :mod:`repro.battery.wear` — stress-weighted ampere-hour throughput wear
  (the paper's observation, via [56], that total electric charge through a
  lead-acid battery is roughly constant over its life), which drives the
  discharge threshold of Eq. 1 and the service-life results of Figure 19.

:class:`~repro.battery.bank.BatteryBank` aggregates units and
:class:`~repro.battery.charger.SolarCharger` implements the CC/CV charging
allocation used by the spatial power manager.
"""

from repro.battery.acceptance import ChargeAcceptance
from repro.battery.bank import BatteryBank
from repro.battery.charger import SolarCharger
from repro.battery.kibam import KiBaM
from repro.battery.params import BatteryParams
from repro.battery.unit import BatteryMode, BatteryUnit
from repro.battery.voltage import VoltageModel
from repro.battery.wear import WearModel

__all__ = [
    "BatteryBank",
    "BatteryMode",
    "BatteryParams",
    "BatteryUnit",
    "ChargeAcceptance",
    "KiBaM",
    "SolarCharger",
    "VoltageModel",
    "WearModel",
]
