"""CC/CV solar charging allocation.

The charger takes the solar power left over after the server load and
splits it across the cabinets the spatial manager selected for charging.
Allocation is waterfall-style: each selected cabinet receives current up to
its acceptance ceiling while budget remains, in selection order, so that
"concentrate the budget on fewer batteries" (paper §2.2, Figure 10) is the
natural behaviour when the budget is scarce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.unit import BatteryUnit


@dataclass(frozen=True, slots=True)
class ChargeResult:
    """Outcome of one charging step across the bank."""

    power_used_w: float
    power_offered_w: float
    accepted_ah: float
    #: Power delivered at the battery terminals — ``power_used_w`` minus
    #: conversion loss and per-string overhead.
    terminal_power_w: float = 0.0

    @property
    def utilisation(self) -> float:
        """Fraction of the offered budget that reached the charger."""
        if self.power_offered_w <= 0.0:
            return 0.0
        return self.power_used_w / self.power_offered_w


class SolarCharger:
    """Allocates a power budget to charging cabinets.

    Parameters
    ----------
    efficiency:
        Conversion efficiency of the charge controller (PV bus to battery
        terminals).  Typical MPPT charge controllers run at 0.92-0.97.
    per_string_overhead_w:
        Fixed power consumed per *connected* charging string (relay coil,
        per-string converter quiescent draw, wiring).  Together with the
        battery-side parasitic current this makes batch charging pay the
        overhead once per cabinet, so concentrating a scarce budget on
        fewer cabinets charges faster (Figure 4a).
    """

    def __init__(self, efficiency: float = 0.94, per_string_overhead_w: float = 15.0) -> None:
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0,1], got {efficiency}")
        if per_string_overhead_w < 0:
            raise ValueError("per_string_overhead_w must be non-negative")
        self.efficiency = efficiency
        self.per_string_overhead_w = per_string_overhead_w
        #: Fraction of the offered solar surplus the charger may draw —
        #: the knob :class:`repro.policy.controls.ChargeCurrentCapControl`
        #: turns.  1.0 (the default) multiplies the budget by exactly
        #: 1.0, an IEEE-754 identity, so uncapped runs stay bit-exact.
        #: Withheld surplus is curtailed, keeping the ledger closed.
        self.cap_fraction = 1.0

    def peak_charging_power(self, unit: BatteryUnit) -> float:
        """P_PC of Figure 10: terminal power drawn by one cabinet charging
        at its bulk acceptance ceiling."""
        amps = unit.acceptance.params.bulk_c_rate * unit.params.capacity_ah
        return amps * unit.params.voltage.v_charge_max / self.efficiency

    def step(
        self,
        targets: list[BatteryUnit],
        power_budget_w: float,
        dt_seconds: float,
    ) -> ChargeResult:
        """Charge ``targets`` from ``power_budget_w`` for one step.

        Connected cabinets share a common charge bus, so the budget is
        split evenly across them, with water-filling: if a cabinet's
        acceptance ceiling caps its draw below its even share, the leftover
        is redistributed to the others (as the bus voltage would do
        naturally).  Every connected string pays a fixed overhead for the
        whole step — the term that penalises batch charging on a scarce
        budget and motivates the SPM's adaptive batch sizing (Figure 10).
        Returns the power drawn from the PV bus and the Ah stored.
        """
        if power_budget_w < 0:
            raise ValueError("power budget must be non-negative")
        if not targets:
            return ChargeResult(0.0, power_budget_w, 0.0)

        remaining = (power_budget_w * self.cap_fraction) * self.efficiency
        used = 0.0
        accepted_ah = 0.0

        # Each connected string pays its overhead before any charge flows;
        # strings the budget cannot even power stay idle this step.
        if self.per_string_overhead_w > 0:
            payable = min(len(targets), int(remaining // self.per_string_overhead_w))
        else:
            payable = len(targets)
        connected = targets[:payable]
        for unit in targets[payable:]:
            unit.idle(dt_seconds)
        if not connected:
            return ChargeResult(0.0, power_budget_w, 0.0)
        overhead = self.per_string_overhead_w * len(connected)
        remaining -= overhead
        used += overhead

        # Water-filling: grant each cabinet min(even share, acceptance
        # ceiling); redistribute leftovers until the budget is exhausted.
        # Voltage and ceiling are invariant across rounds (no charge lands
        # until allocation finishes), so compute them once per cabinet.
        # Entries are [unit, voltage, ceiling_w, granted_w].
        plan = []
        for unit in connected:
            voltage = max(unit.terminal_voltage, unit.params.voltage.emf_empty)
            ceiling_w = unit.max_charge_current() * voltage
            plan.append([unit, voltage, ceiling_w, 0.0])
        active = list(plan)
        for _ in range(4):
            if remaining <= 1e-9 or not active:
                break
            share = remaining / len(active)
            next_active = []
            for entry in active:
                headroom = max(0.0, entry[2] - entry[3])
                grant = min(share, headroom)
                entry[3] += grant
                remaining -= grant
                if grant >= share - 1e-9:
                    next_active.append(entry)
            active = next_active

        terminal = 0.0
        for unit, voltage, _ceiling, watts in plan:
            applied = watts / voltage
            if applied <= 0.0:
                unit.idle(dt_seconds)
                continue
            stored = unit.apply_charge(applied, dt_seconds)
            used += watts
            terminal += watts
            accepted_ah += stored * dt_seconds / 3600.0

        return ChargeResult(
            power_used_w=used / self.efficiency,
            power_offered_w=power_budget_w,
            accepted_ah=accepted_ah,
            terminal_power_w=terminal,
        )

    def float_step(self, units: list[BatteryUnit], dt_seconds: float) -> float:
        """Trickle-charge standby units; returns the power consumed (W)."""
        total = 0.0
        for unit in units:
            amps = unit.params.acceptance.float_c_rate * unit.params.capacity_ah
            # Float charging merely offsets self-discharge; model it as an
            # idle step plus the bus power it costs.
            unit.idle(dt_seconds)
            unit.kibam.apply_current(-amps * 0.5, dt_seconds)
            total += amps * unit.terminal_voltage / self.efficiency
        return total
