"""Profiling harness: instrumented full-system runs.

``repro profile run`` (and :func:`profile_run` underneath) builds one
full-system cell with observability attached, runs it, and reports:

* a per-component wall-time breakdown (span self-times, hottest first),
* the hottest sampled ticks with their per-span breakdowns,
* the controller decision-event totals,
* optionally a ``cProfile`` dump (``.pstats``, loadable by ``snakeviz``
  or ``flameprof``) capturing the whole run at function granularity.

The harness itself never touches simulation state; a profiled run's
traces stay bit-identical to the unprofiled same-seed run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.system import build_system
from repro.obs.hub import Observability
from repro.obs.spans import DEFAULT_STRIDE
from repro.solar.traces import make_day_trace
from repro.telemetry.metrics import RunSummary
from repro.workloads import SeismicAnalysis, VideoSurveillance


def _make_workload(kind: str):
    if kind == "video":
        return VideoSurveillance()
    if kind == "seismic":
        return SeismicAnalysis()
    raise ValueError(f"unknown workload kind {kind!r}")


@dataclass
class ProfileResult:
    """Everything one instrumented run produced."""

    summary: RunSummary
    obs: Observability
    wall_s: float
    ticks: int
    cprofile_path: Path | None = None

    @property
    def breakdown(self) -> list[dict[str, Any]]:
        return self.obs.tracer.report_rows()

    @property
    def hottest(self) -> list[dict[str, Any]]:
        return self.obs.tracer.hottest()

    @property
    def decision_counts(self) -> dict[str, int]:
        return self.obs.decisions.counts()


def profile_run(
    controller: str = "insure",
    workload: str = "seismic",
    weather: str = "sunny",
    mean_w: float = 800.0,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    duration_s: float | None = None,
    stride: int = DEFAULT_STRIDE,
    cprofile_path=None,
) -> ProfileResult:
    """Run one instrumented full-system cell and collect its profile."""
    trace = make_day_trace(weather, dt_seconds=dt, seed=seed, target_mean_w=mean_w)
    obs = Observability(trace_stride=stride)
    system = build_system(
        trace,
        _make_workload(workload),
        controller=controller,
        seed=seed,
        initial_soc=initial_soc,
        dt=dt,
        observability=obs,
    )
    profiler = None
    if cprofile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
    t0 = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    summary = system.run(duration_s)
    if profiler is not None:
        profiler.disable()
    wall_s = time.perf_counter() - t0
    dumped = None
    if profiler is not None:
        dumped = Path(cprofile_path)
        dumped.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(dumped)
    return ProfileResult(
        summary=summary,
        obs=obs,
        wall_s=wall_s,
        ticks=system.engine.clock.step_index,
        cprofile_path=dumped,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_breakdown(result: ProfileResult) -> str:
    """The per-component time-breakdown table."""
    tracer = result.obs.tracer
    lines = [
        f"per-component time breakdown "
        f"({tracer.sampled_ticks} of {result.ticks} ticks sampled, "
        f"stride {tracer.stride})",
        f"{'span':28s} {'calls':>7s} {'self ms':>9s} {'total ms':>9s} "
        f"{'mean us':>9s} {'max us':>9s} {'share':>7s}",
    ]
    for row in result.breakdown:
        lines.append(
            f"{row['span']:28s} {row['calls']:7d} {row['self_s'] * 1e3:9.2f} "
            f"{row['total_s'] * 1e3:9.2f} {row['mean_us']:9.1f} "
            f"{row['max_us']:9.1f} {row['share'] * 100:6.1f}%"
        )
    return "\n".join(lines)


def render_hottest(result: ProfileResult, top_spans: int = 3) -> str:
    """The hottest-tick report."""
    ticks = result.hottest
    if not ticks:
        return "hottest ticks: none sampled"
    lines = ["hottest sampled ticks"]
    for entry in ticks:
        top = list(entry["breakdown"].items())[:top_spans]
        detail = ", ".join(f"{name} {self_s * 1e6:.0f}us" for name, self_s in top)
        lines.append(
            f"  tick {entry['tick']:>7d}  t={entry['t']:9.1f}s  "
            f"{entry['wall_us']:8.1f}us  ({detail})"
        )
    return "\n".join(lines)


def render_decisions(result: ProfileResult) -> str:
    counts = result.decision_counts
    if not counts:
        return "decision events: none"
    lines = [f"decision events ({sum(counts.values())} total)"]
    for kind, count in counts.items():
        lines.append(f"  {kind:24s} {count:6d}")
    return "\n".join(lines)


def write_outputs(result: ProfileResult, out_dir) -> dict[str, Path]:
    """Export the run's observability artifacts plus the rendered report."""
    paths = result.obs.export(out_dir)
    report = Path(out_dir) / "breakdown.txt"
    report.write_text(
        render_breakdown(result)
        + "\n\n"
        + render_hottest(result)
        + "\n\n"
        + render_decisions(result)
        + "\n",
        encoding="utf-8",
    )
    paths["breakdown"] = report
    return paths
