"""Streaming alert engine over live plant state.

An :class:`AlertEngine` is an engine *observer* (registered via
:meth:`repro.sim.engine.Engine.observe`, like the invariant checker): once
every ``stride`` ticks it evaluates a set of :class:`AlertRule` objects
against the running system and emits structured :class:`Alert` records for
the conditions an operator would page on — SoC draining too fast, wear
concentrating on one cabinet, discharge current brushing the temporal cap,
terminal voltage approaching the low-voltage disconnect, checkpoint-stop
storms, and solar energy curtailed for a sustained stretch.

Every alert is also recorded into the decision-event pipeline as kind
``alert.<rule>`` so :func:`repro.telemetry.analyzer.join_decisions` can
join alerts against the recorded trace channels, and counted in an
``alerts_total{rule=...}`` registry counter.

Rules are edge-triggered with hysteresis: each fires when its condition
is entered and re-arms only after the condition clears (or, for episodic
rules, when the episode ends), so a bad hour produces a handful of alerts,
not thousands.

The engine only *reads* plant state; attaching it never perturbs the
same-seed trajectory (enforced against the pinned golden digests).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    t: float
    rule: str
    severity: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "t": self.t,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            **self.data,
        }
        return json.dumps(payload, sort_keys=True)


class AlertRule:
    """Base class: one streaming condition with its hysteresis state."""

    name = "base"
    severity = "warning"

    def evaluate(self, t: float, system) -> tuple[str, dict[str, Any]] | None:
        """Return ``(message, data)`` when firing this evaluation, else None."""
        raise NotImplementedError


class SocDroopRule(AlertRule):
    """Mean SoC falling faster than a sustainable rate over a window."""

    name = "soc_droop"

    def __init__(self, max_drop_per_hour: float = 0.15, window_s: float = 1800.0) -> None:
        self.max_drop_per_hour = max_drop_per_hour
        self.window_s = window_s
        self._samples: deque[tuple[float, float]] = deque()
        self._armed = True

    def evaluate(self, t, system):
        soc = system.bank.mean_soc
        samples = self._samples
        samples.append((t, soc))
        while samples and samples[0][0] < t - self.window_s:
            samples.popleft()
        t0, soc0 = samples[0]
        if t - t0 < self.window_s * 0.5:
            return None  # not enough history for a stable rate yet
        rate = (soc0 - soc) * 3600.0 / (t - t0)
        if rate > self.max_drop_per_hour:
            if self._armed:
                self._armed = False
                return (
                    f"mean SoC dropping {rate:.3f}/h over the last "
                    f"{(t - t0) / 60:.0f} min (limit {self.max_drop_per_hour}/h)",
                    {"rate_per_hour": rate, "mean_soc": soc},
                )
        elif rate < 0.5 * self.max_drop_per_hour:
            self._armed = True
        return None


class WearImbalanceRule(AlertRule):
    """Discharge throughput concentrating on a subset of cabinets."""

    name = "wear_imbalance"

    def __init__(self, max_imbalance_ah: float = 5.0) -> None:
        self.max_imbalance_ah = max_imbalance_ah
        self._armed = True

    def evaluate(self, t, system):
        worst = {u.name: u.wear.discharge_ah for u in system.bank}
        spread = max(worst.values()) - min(worst.values())
        if spread > self.max_imbalance_ah:
            if self._armed:
                self._armed = False
                return (
                    f"per-battery discharge spread {spread:.1f} Ah exceeds "
                    f"{self.max_imbalance_ah:.1f} Ah",
                    {"spread_ah": spread, "discharge_ah": worst},
                )
        elif spread < 0.8 * self.max_imbalance_ah:
            self._armed = True
        return None


class DischargeCapNearMissRule(AlertRule):
    """Total discharge current brushing the controller's temporal cap."""

    name = "discharge_cap_near_miss"

    def __init__(self, fraction: float = 0.9, rearm_fraction: float = 0.75) -> None:
        self.fraction = fraction
        self.rearm_fraction = rearm_fraction
        self._armed = True

    def evaluate(self, t, system):
        cap = getattr(system.controller, "discharge_cap_amps", None)
        if not cap:
            return None  # controller without a discharge-current cap
        total = 0.0
        for unit in system.bank:
            if unit.last_current > 0.0:
                total += unit.last_current
        if total >= self.fraction * cap:
            if self._armed:
                self._armed = False
                return (
                    f"discharge current {total:.1f} A at "
                    f"{100.0 * total / cap:.0f}% of the {cap:.1f} A cap",
                    {"total_amps": total, "cap_amps": cap},
                )
        elif total < self.rearm_fraction * cap:
            self._armed = True
        return None


class LvdProximityRule(AlertRule):
    """A discharging cabinet's terminal voltage nearing the LVD cutoff."""

    name = "lvd_proximity"
    severity = "critical"

    def __init__(self, margin_v: float = 0.25, min_discharge_a: float = 0.5) -> None:
        self.margin_v = margin_v
        self.min_discharge_a = min_discharge_a
        self._armed: dict[str, bool] = {}

    def evaluate(self, t, system):
        for unit in system.bank:
            cutoff = unit.params.voltage.v_cutoff
            near = (
                unit.last_current > self.min_discharge_a
                and unit.terminal_voltage <= cutoff + self.margin_v
            )
            if near:
                if self._armed.get(unit.name, True):
                    self._armed[unit.name] = False
                    return (
                        f"{unit.name} at {unit.terminal_voltage:.2f} V, within "
                        f"{self.margin_v:.2f} V of the {cutoff:.2f} V LVD",
                        {"unit": unit.name, "voltage": unit.terminal_voltage, "cutoff": cutoff},
                    )
            else:
                self._armed[unit.name] = True
        return None


class CheckpointStormRule(AlertRule):
    """Repeated checkpoint-stops inside a short window."""

    name = "checkpoint_storm"
    severity = "critical"

    def __init__(self, count: int = 2, window_s: float = 3600.0) -> None:
        self.count = count
        self.window_s = window_s
        self._seen_stops = 0
        self._stop_times: deque[float] = deque()

    def evaluate(self, t, system):
        stops = getattr(system.controller, "checkpoint_stops", 0)
        if stops > self._seen_stops:
            self._stop_times.extend([t] * (stops - self._seen_stops))
            self._seen_stops = stops
        times = self._stop_times
        while times and times[0] < t - self.window_s:
            times.popleft()
        if len(times) >= self.count:
            fired = len(times)
            times.clear()  # one alert per storm
            return (
                f"{fired} checkpoint-stops within {self.window_s / 60:.0f} min",
                {"stops_in_window": fired, "window_s": self.window_s},
            )
        return None


class SustainedCurtailmentRule(AlertRule):
    """Solar power curtailed continuously for a sustained stretch."""

    name = "sustained_curtailment"

    def __init__(self, floor_w: float = 100.0, duration_s: float = 1800.0) -> None:
        self.floor_w = floor_w
        self.duration_s = duration_s
        self._since: float | None = None
        self._fired = False

    def evaluate(self, t, system):
        report = system.plant.last_report
        curtailed = report.curtailed_w if report is not None else 0.0
        if curtailed > self.floor_w:
            if self._since is None:
                self._since = t
            elif not self._fired and t - self._since >= self.duration_s:
                self._fired = True
                return (
                    f"curtailing >{self.floor_w:.0f} W for "
                    f"{(t - self._since) / 60:.0f} min straight "
                    f"({curtailed:.0f} W now)",
                    {"curtailed_w": curtailed, "sustained_s": t - self._since},
                )
        else:
            self._since = None
            self._fired = False
        return None


def default_rules() -> list[AlertRule]:
    """The stock rule set (defaults documented in docs/observability.md)."""
    return [
        SocDroopRule(),
        WearImbalanceRule(),
        DischargeCapNearMissRule(),
        LvdProximityRule(),
        CheckpointStormRule(),
        SustainedCurtailmentRule(),
    ]


class AlertEngine:
    """Engine observer evaluating alert rules on a tick stride.

    Parameters
    ----------
    rules:
        Rule instances to evaluate (default: :func:`default_rules`).
    stride:
        Evaluate once every ``stride`` ticks — the default samples every
        simulated minute at the standard ``dt=5`` step.
    decisions:
        Optional :class:`~repro.obs.decisions.DecisionLog`; fired alerts
        are recorded there as ``alert.<rule>`` decision events.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; fired
        alerts increment ``alerts_total{rule=...}``.
    """

    def __init__(self, rules=None, stride: int = 12, decisions=None, registry=None) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.rules = list(rules) if rules is not None else default_rules()
        self.stride = int(stride)
        self.alerts: list[Alert] = []
        self._decisions = decisions
        self._registry = registry
        self._system = None

    def attach(self, system, observe: bool = True) -> "AlertEngine":
        """Bind to ``system`` (and register as an engine observer)."""
        self._system = system
        if observe:
            system.engine.observe(self, name="alerts")
        return self

    # ------------------------------------------------------------------
    # Observer protocol
    # ------------------------------------------------------------------
    def __call__(self, clock) -> None:
        if clock.step_index % self.stride:
            return
        system = self._system
        t = clock.t
        for rule in self.rules:
            fired = rule.evaluate(t, system)
            if fired is not None:
                message, data = fired
                self._emit(t, rule, message, data)

    def _emit(self, t: float, rule: AlertRule, message: str, data: dict[str, Any]) -> None:
        self.alerts.append(
            Alert(t=t, rule=rule.name, severity=rule.severity, message=message, data=data)
        )
        if self._decisions is not None:
            self._decisions.record(
                t, f"alert.{rule.name}", "alerts", severity=rule.severity, message=message
            )
        if self._registry is not None:
            self._registry.counter("alerts_total", "alerts fired per rule", rule=rule.name).inc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.alerts)

    def counts(self) -> dict[str, int]:
        """Alert totals per rule, rule-sorted."""
        totals: dict[str, int] = {}
        for alert in self.alerts:
            totals[alert.rule] = totals.get(alert.rule, 0) + 1
        return dict(sorted(totals.items()))

    def to_jsonl(self) -> str:
        return "".join(alert.to_json() + "\n" for alert in self.alerts)

    def write_jsonl(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path
