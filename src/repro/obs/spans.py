"""Span-based wall-time tracing of the tick loop.

The simulation engine's hot loop (engine step → sense → decide → actuate →
integrate) is opaque in a post-hoc trace: the arrays say *what* happened,
not *where the ticks went*.  A :class:`SpanTracer` attributes wall time to
named, nestable spans — one per component at the engine level, finer-
grained ``controller.sense`` / ``controller.decide.*`` spans inside the
power managers — with self-time accounting (a parent's time excludes its
children's).

Cost model: tracing is **sampled by tick stride**.  The engine asks
:meth:`SpanTracer.begin_tick` once per tick; on the 1-in-``stride`` ticks
that sample, spans record real timings, on all other ticks ``span()``
returns a shared no-op handle.  With the default stride the measured
overhead on the BENCH cell stays below the 5 % gate in
``benchmarks/test_perf_engine.py``.  Tracing never mutates simulation
state, so same-seed traces are bit-identical with tracing on or off.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

#: Default 1-in-N tick sampling stride.
DEFAULT_STRIDE = 16

#: Hottest ticks retained for the profile report.
DEFAULT_HOT_TICKS = 5


class _NullSpan:
    """Shared no-op context manager handed out when not sampling."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in with zero bookkeeping; every span is a no-op."""

    __slots__ = ()

    sampling = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def begin_tick(self, index: int, t: float) -> bool:
        return False

    def end_tick(self) -> None:  # pragma: no cover - never sampled
        pass


NULL_TRACER = NullTracer()


@dataclass
class SpanStats:
    """Aggregated wall time for one span name across sampled ticks."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _Span:
    """Live span handle; created only on sampled ticks."""

    __slots__ = ("_tracer", "_name", "_start", "_child_s")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._child_s = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self)
        self._start = self._tracer._timer()
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        elapsed = tracer._timer() - self._start
        stack = tracer._stack
        stack.pop()
        if stack:
            stack[-1]._child_s += elapsed
        tracer._record(self._name, elapsed, elapsed - self._child_s)
        return False


class SpanTracer:
    """Nestable span timing with per-tick sampling and hottest-tick capture.

    Parameters
    ----------
    stride:
        Sample one tick in every ``stride`` (1 = every tick).
    hot_ticks:
        Number of slowest sampled ticks to retain, each with its
        per-span self-time breakdown.
    timer:
        Clock used for measurements (injectable for deterministic tests).
    """

    def __init__(
        self,
        stride: int = DEFAULT_STRIDE,
        hot_ticks: int = DEFAULT_HOT_TICKS,
        timer: Callable[[], float] = time.perf_counter,
    ) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if hot_ticks < 0:
            raise ValueError(f"hot_ticks must be >= 0, got {hot_ticks}")
        self.stride = int(stride)
        self.hot_ticks = int(hot_ticks)
        self._timer = timer
        self.sampling = False
        self.ticks_seen = 0
        self.sampled_ticks = 0
        self.tick_seconds = 0.0
        self.max_tick_seconds = 0.0
        self.stats: dict[str, SpanStats] = {}
        self._stack: list[_Span] = []
        #: Min-heap of (elapsed, tick_index, sim_t, {span: self_s}).
        self._hot: list[tuple[float, int, float, dict[str, float]]] = []
        self._tick_index = 0
        self._tick_t = 0.0
        self._tick_self: dict[str, float] = {}
        self._tick_start = 0.0

    # ------------------------------------------------------------------
    # Tick protocol (driven by the engine)
    # ------------------------------------------------------------------
    def begin_tick(self, index: int, t: float) -> bool:
        """Start a tick; returns True when this tick is sampled."""
        self.ticks_seen += 1
        if index % self.stride:
            return False
        self.sampling = True
        self._tick_index = index
        self._tick_t = t
        self._tick_self = {}
        self._tick_start = self._timer()
        return True

    def end_tick(self) -> None:
        """Close a sampled tick: total it and fold into the hot-tick heap."""
        elapsed = self._timer() - self._tick_start
        self.sampling = False
        self.sampled_ticks += 1
        self.tick_seconds += elapsed
        if elapsed > self.max_tick_seconds:
            self.max_tick_seconds = elapsed
        if self.hot_ticks:
            entry = (elapsed, self._tick_index, self._tick_t, self._tick_self)
            if len(self._hot) < self.hot_ticks:
                heapq.heappush(self._hot, entry)
            elif elapsed > self._hot[0][0]:
                heapq.heapreplace(self._hot, entry)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str):
        """A context manager timing ``name``; no-op when not sampling."""
        if not self.sampling:
            return _NULL_SPAN
        return _Span(self, name)

    def _record(self, name: str, elapsed: float, self_s: float) -> None:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = SpanStats(name)
        stats.count += 1
        stats.total_s += elapsed
        stats.self_s += self_s
        if elapsed > stats.max_s:
            stats.max_s = elapsed
        self._tick_self[name] = self._tick_self.get(name, 0.0) + self_s

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def mean_tick_seconds(self) -> float:
        return self.tick_seconds / self.sampled_ticks if self.sampled_ticks else 0.0

    def report_rows(self) -> list[dict[str, Any]]:
        """Per-span aggregate rows, hottest (by self time) first."""
        total_self = sum(s.self_s for s in self.stats.values()) or 1.0
        rows = []
        for stats in sorted(self.stats.values(), key=lambda s: s.self_s, reverse=True):
            rows.append(
                {
                    "span": stats.name,
                    "calls": stats.count,
                    "total_s": stats.total_s,
                    "self_s": stats.self_s,
                    "mean_us": stats.mean_s * 1e6,
                    "max_us": stats.max_s * 1e6,
                    "share": stats.self_s / total_self,
                }
            )
        return rows

    def hottest(self) -> list[dict[str, Any]]:
        """The slowest sampled ticks, slowest first, with breakdowns."""
        ordered = sorted(self._hot, key=lambda e: e[0], reverse=True)
        return [
            {
                "tick": index,
                "t": t,
                "wall_us": elapsed * 1e6,
                "breakdown": dict(sorted(spans.items(), key=lambda kv: kv[1], reverse=True)),
            }
            for elapsed, index, t, spans in ordered
        ]

    def to_folded(self) -> str:
        """Folded-stack lines (``flamegraph.pl`` / speedscope compatible).

        Span nesting is flattened to ``tick;<span>`` with self-time
        weights in microseconds, which is what flamegraph renderers sum.
        """
        lines = [
            f"tick;{stats.name} {max(1, round(stats.self_s * 1e6))}"
            for stats in sorted(self.stats.values(), key=lambda s: s.name)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def bind_registry(self, registry, prefix: str = "engine") -> None:
        """Expose tracer aggregates through a :class:`MetricsRegistry`."""
        registry.gauge(f"{prefix}.sampled_ticks").set_function(lambda: self.sampled_ticks)
        registry.gauge(f"{prefix}.ticks_seen").set_function(lambda: self.ticks_seen)
        registry.gauge(f"{prefix}.mean_tick_seconds").set_function(lambda: self.mean_tick_seconds)
        registry.gauge(f"{prefix}.max_tick_seconds").set_function(lambda: self.max_tick_seconds)
