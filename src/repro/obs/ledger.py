"""Joule-level energy-flow ledger.

The :class:`EnergyLedger` turns a run into an accounting graph: every watt
the system moves is attributed to a named flow edge — PV harvest, MPPT
loss, direct solar service, charger conversion loss, battery well in/out,
gassing, self-discharge, curtailment, DC/DC loss, server load, effective
work, checkpoint overhead, shed load — each a cumulative Wh total since
the ledger attached.

The ledger holds **no per-tick state of its own**.  The physics components
(:class:`~repro.power.bus.PowerBus`, :class:`~repro.battery.unit.BatteryUnit`,
:class:`~repro.solar.field.SolarField`) and the
:class:`~repro.telemetry.metrics.MetricsCollector` maintain cheap cumulative
accumulators as part of their normal step, in *both* the chunked fast
kernel and the traced kernel; the ledger merely snapshots their values at
attach time and reads the deltas on demand.  Nothing feeds back into the
simulation, so same-seed traces are bit-identical with the ledger on or
off (enforced against the pinned golden digests).

Closure: the two per-tick bus identities

* ``solar = solar_to_load + charge + curtailed``
* ``demand_bus = solar_to_load + battery_to_load + unserved``

are integrated in Wh and must each stay within the invariant checker's
accumulated energy tolerance (:data:`~repro.validate.invariants.ACC_TOL_FLOOR_WH`
plus :data:`~repro.validate.invariants.ACC_TOL_WH_PER_H` per simulated
hour).  The battery-side account (terminal in − out − losses − Δstored) is
reported as a *residual* edge but not gated: stored energy is approximated
at nominal voltage, so voltage sag legitimately shows up there.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

from repro.validate.invariants import ACC_TOL_FLOOR_WH, ACC_TOL_WH_PER_H

if TYPE_CHECKING:  # annotations only; a runtime import would be cyclic
    from repro.core.system import InSituSystem
    from repro.obs.registry import MetricsRegistry
    from repro.power.bus import PowerBus

#: Flow-edge names in rendering order (docs/observability.md catalogues
#: each edge's source, sink and measurement point).
EDGE_NAMES = (
    "pv.harvest",
    "pv.mppt_loss",
    "bus.solar_to_load",
    "bus.to_charger",
    "bus.curtailed",
    "bus.unserved",
    "bus.dcdc_loss",
    "charger.to_batteries",
    "charger.loss",
    "battery.to_load",
    "battery.gassing",
    "battery.self_discharge",
    "battery.delta_stored",
    "battery.residual",
    "servers.load",
    "servers.effective",
    "servers.checkpoint_overhead",
    "servers.idle_overhead",
)

#: Edges whose value is a signed balance, not a physical flow — excluded
#: from non-negativity expectations and fleet-total rollups.
SIGNED_EDGES = frozenset(
    {
        "battery.delta_stored",
        "battery.residual",
        "servers.idle_overhead",
    }
)


@dataclass(frozen=True)
class LedgerClosure:
    """Verdict of the ledger's energy-conservation account."""

    ok: bool
    #: Integrated residual of the solar-side bus identity (Wh).
    residual_solar_wh: float
    #: Integrated residual of the load-side bus identity (Wh).
    residual_load_wh: float
    #: Battery-side account residual (Wh, reported but not gated).
    battery_residual_wh: float
    #: Tolerance both gated residuals were held to (Wh).
    tolerance_wh: float
    #: Simulated hours covered by the account.
    hours: float

    def __str__(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        return (
            f"ledger closure {status} over {self.hours:.2f} h: "
            f"solar {self.residual_solar_wh:+.3g} Wh, "
            f"load {self.residual_load_wh:+.3g} Wh "
            f"(tolerance {self.tolerance_wh:.3g} Wh; battery residual "
            f"{self.battery_residual_wh:+.3g} Wh, ungated)"
        )


class EnergyLedger:
    """Cumulative energy-flow accounting over an assembled system.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when given,
        every edge is exposed as a collection-time ``ledger.edge_wh``
        gauge (zero per-tick cost) alongside the closure residuals.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry
        self._system: InSituSystem | None = None
        self._bus: PowerBus | None = None
        self._base: dict[str, float] = {}
        self._attach_t = 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system: InSituSystem) -> "EnergyLedger":
        """Snapshot the component accumulators of ``system``; returns self."""
        self._system = system
        self._bus = system.plant.bus
        self._attach_t = system.engine.clock.t
        self._base = self._raw_totals()
        if self._registry is not None:
            self._register_gauges()
        return self

    @property
    def attached(self) -> bool:
        return self._system is not None

    def _register_gauges(self) -> None:
        gauge = self._registry.gauge
        for name in EDGE_NAMES:
            gauge("ledger.edge_wh", "cumulative energy per flow edge", edge=name).set_function(
                lambda n=name: self.edges()[n]
            )
        gauge("ledger.residual_solar_wh", "integrated solar-side bus residual").set_function(
            lambda: self.closure().residual_solar_wh
        )
        gauge("ledger.residual_load_wh", "integrated load-side bus residual").set_function(
            lambda: self.closure().residual_load_wh
        )
        gauge("ledger.closure_ok", "1 when the closure account holds").set_function(
            lambda: float(self.closure().ok)
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _raw_totals(self) -> dict[str, float]:
        """Raw cumulative counters underlying the edges."""
        system = self._system
        bus = self._bus
        bank = system.bank
        collector = system.metrics
        nominal_v = [unit.params.nominal_voltage for unit in bank]
        return {
            "solar": bus.e_solar_wh,
            "solar_to_load": bus.e_solar_to_load_wh,
            "battery_to_load": bus.e_battery_to_load_wh,
            "unserved": bus.e_unserved_wh,
            "charge_bus": bus.e_charge_bus_wh,
            "charge_terminal": bus.e_charge_terminal_wh,
            "curtailed": bus.e_curtailed_wh,
            "demand_bus": bus.e_demand_bus_wh,
            "server_wall": bus.e_server_wall_wh,
            "mppt_loss": getattr(system.source, "e_mppt_loss_wh", 0.0),
            "gassing": sum(u.gassing_ah * v for u, v in zip(bank, nominal_v, strict=True)),
            "self_discharge": sum(u.self_discharge_ah * v for u, v in zip(bank, nominal_v, strict=True)),
            "stored": bank.stored_energy_wh,
            "load": collector.load_energy_wh,
            "effective": collector.effective_energy_wh,
            "checkpoint": collector.checkpoint_energy_wh,
        }

    def _deltas(self) -> dict[str, float]:
        base = self._base
        return {key: value - base[key] for key, value in self._raw_totals().items()}

    def edges(self) -> dict[str, float]:
        """Cumulative Wh per flow edge since attach, in catalogue order."""
        if self._system is None:
            raise RuntimeError("ledger is not attached to a system")
        d = self._deltas()
        charger_loss = d["charge_bus"] - d["charge_terminal"]
        delta_stored = d["stored"]
        battery_residual = (
            d["charge_terminal"]
            - d["battery_to_load"]
            - d["gassing"]
            - d["self_discharge"]
            - delta_stored
        )
        return {
            "pv.harvest": d["solar"],
            "pv.mppt_loss": d["mppt_loss"],
            "bus.solar_to_load": d["solar_to_load"],
            "bus.to_charger": d["charge_bus"],
            "bus.curtailed": d["curtailed"],
            "bus.unserved": d["unserved"],
            "bus.dcdc_loss": d["demand_bus"] - d["server_wall"],
            "charger.to_batteries": d["charge_terminal"],
            "charger.loss": charger_loss,
            "battery.to_load": d["battery_to_load"],
            "battery.gassing": d["gassing"],
            "battery.self_discharge": d["self_discharge"],
            "battery.delta_stored": delta_stored,
            "battery.residual": battery_residual,
            "servers.load": d["server_wall"],
            "servers.effective": d["effective"],
            "servers.checkpoint_overhead": d["checkpoint"],
            "servers.idle_overhead": (d["server_wall"] - d["effective"] - d["checkpoint"]),
        }

    def closure(self) -> LedgerClosure:
        """Check the integrated bus identities against the invariant
        checker's accumulated energy tolerance."""
        if self._system is None:
            raise RuntimeError("ledger is not attached to a system")
        d = self._deltas()
        residual_solar = d["solar"] - (d["solar_to_load"] + d["charge_bus"] + d["curtailed"])
        residual_load = d["demand_bus"] - (
            d["solar_to_load"] + d["battery_to_load"] + d["unserved"]
        )
        battery_residual = (
            d["charge_terminal"]
            - d["battery_to_load"]
            - d["gassing"]
            - d["self_discharge"]
            - d["stored"]
        )
        hours = max(0.0, (self._system.engine.clock.t - self._attach_t) / 3600.0)
        tolerance = max(ACC_TOL_FLOOR_WH, ACC_TOL_WH_PER_H * hours)
        ok = abs(residual_solar) <= tolerance and abs(residual_load) <= tolerance
        return LedgerClosure(
            ok=ok,
            residual_solar_wh=residual_solar,
            residual_load_wh=residual_load,
            battery_residual_wh=battery_residual,
            tolerance_wh=tolerance,
            hours=hours,
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {"edges": self.edges(), "closure": asdict(self.closure())}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
