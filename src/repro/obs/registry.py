"""Zero-dependency metrics registry.

Counters, gauges and histograms that simulation components register into.
The design follows the usual pull-model conventions (Prometheus client
libraries) but stays import-light and allocation-light so the registry can
live inside the tick loop's blast radius without perturbing it:

* **Counters** are monotonically increasing totals (relay operations,
  decision events, cells executed).
* **Gauges** hold a point-in-time value.  A gauge may instead be bound to
  a zero-argument callable (:meth:`Gauge.set_function`), in which case the
  live value is read *at collection time* — instrumented components pay
  nothing per tick for such metrics.
* **Histograms** bucket observations into fixed upper bounds and expose
  count/sum plus quantile estimates interpolated from the cumulative
  bucket counts (tick wall-times, per-cell runtimes).

Snapshots export as JSONL (one metric sample per line, greppable and
joinable against the decision-event log) and as the Prometheus text
exposition format.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping
from typing import Any

#: Default histogram buckets for wall-clock durations in seconds; spans
#: tick times from microseconds to a full second of stall.
DEFAULT_TIME_BUCKETS_S = (
    1e-05,
    2.5e-05,
    5e-05,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name valid in the Prometheus exposition format."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote and line feed (in that order, so the backslashes we add are not
    re-escaped)."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_escape_help(text: str) -> str:
    """HELP text escaping: backslash and line feed only (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_prom_escape_label(labels[key])}"' for key in sorted(labels))
    return "{" + inner + "}"


def _prom_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


class Metric:
    """Base class carrying identity: name, help text and fixed labels."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.labels: dict[str, str] = dict(labels or {})

    def sample(self) -> dict[str, Any]:
        """One JSON-compatible sample of the current state."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, labels={self.labels!r})"


class Counter(Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def sample(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "value": self.value,
        }


class Gauge(Metric):
    """Point-in-time value, settable or bound to a collection-time callable."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Bind the gauge to ``fn``; the value is read at collection time."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def sample(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "value": self.value,
        }


class Histogram(Metric):
    """Fixed-bucket histogram with interpolated quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS_S,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be unique")
        self.bounds: tuple[float, ...] = tuple(bounds)
        #: Per-bucket observation counts; the implicit +Inf bucket is last.
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile by interpolating the buckets.

        The estimate is exact at bucket boundaries and linear within a
        bucket; observations beyond the last finite bound clamp to the
        maximum value seen.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = min(self._min, self.bounds[0])
        for bound, bucket_count in zip(self.bounds, self._counts, strict=False):
            if cumulative + bucket_count >= rank and bucket_count > 0:
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (bound - lower)
            cumulative += bucket_count
            lower = bound
        return self._max

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self._counts, strict=False):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((math.inf, self.count))
        return pairs

    def sample(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": self.labels,
            "count": self.count,
            "sum": self.sum,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {_prom_float(b): c for b, c in self.cumulative_counts()},
        }


class MetricsRegistry:
    """Get-or-create metric store shared by the instrumented components."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str, labels: dict[str, str], **kwargs):
        key = (name, tuple(sorted(labels.items())))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help=help, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str, **labels: str) -> Metric | None:
        return self._metrics.get((name, tuple(sorted(labels.items()))))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _sorted(self) -> list[Metric]:
        return sorted(self._metrics.values(), key=lambda m: (m.name, sorted(m.labels.items())))

    def collect(self) -> list[dict[str, Any]]:
        """All metric samples (gauge functions are read now), name-sorted."""
        return [metric.sample() for metric in self._sorted()]

    def to_jsonl(self) -> str:
        """One JSON object per metric sample, newline-delimited."""
        return "".join(json.dumps(sample, sort_keys=True) + "\n" for sample in self.collect())

    def write_jsonl(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        ``# HELP`` / ``# TYPE`` appear exactly once per metric family; the
        help text comes from whichever family member carries one (children
        created later with ``help=""`` must not suppress it), and label
        values are escaped per the format.
        """
        metrics = self._sorted()
        family_help: dict[str, str] = {}
        for metric in metrics:
            name = _prom_name(metric.name)
            if metric.help and name not in family_help:
                family_help[name] = metric.help
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in metrics:
            name = _prom_name(metric.name)
            if name not in seen_headers:
                seen_headers.add(name)
                help_text = family_help.get(name)
                if help_text:
                    lines.append(f"# HELP {name} {_prom_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_counts():
                    labels = dict(metric.labels)
                    labels["le"] = _prom_float(bound)
                    lines.append(f"{name}_bucket{_prom_labels(labels)} {cumulative}")
                suffix = _prom_labels(metric.labels)
                lines.append(f"{name}_sum{suffix} {_prom_float(metric.sum)}")
                lines.append(f"{name}_count{suffix} {metric.count}")
            else:
                lines.append(f"{name}{_prom_labels(metric.labels)} {_prom_float(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide registry for cross-cutting infrastructure counters (the
#: experiment runner's per-cell rollups land here).  System-scoped metrics
#: should use a per-run :class:`MetricsRegistry` via ``Observability``.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY


def reset_global_registry() -> MetricsRegistry:
    """Replace the process-wide registry (test isolation helper)."""
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
