"""Observability layer: metrics registry, span tracing, decision events.

Three instruments, one bundle (:class:`Observability`):

* :mod:`repro.obs.registry` — zero-dependency counters, gauges and
  fixed-bucket histograms with JSONL and Prometheus-text export;
* :mod:`repro.obs.spans` — sampled span tracing of the tick loop with
  per-component wall-time attribution and hottest-tick capture;
* :mod:`repro.obs.decisions` — structured controller decision events
  (mode switches, VM retargets, duty changes, checkpoint triggers)
  written to JSONL and joinable against recorded traces.

Two higher-level consumers ride on those instruments:

* :mod:`repro.obs.ledger` — joule-level energy-flow ledger over the
  component accumulators, with a conservation closure check;
* :mod:`repro.obs.alerts` — streaming rule engine emitting structured
  alerts into the decision log.

Observability is strictly read-only with respect to the simulation: a run
with it attached produces bit-identical same-seed traces (enforced by the
golden harness and the <5 % overhead gate in ``benchmarks/``).

``repro.obs.profile`` (imported lazily to keep this package free of any
dependency on the system assembly) drives instrumented full-system runs
for ``repro profile run``.
"""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    CheckpointStormRule,
    DischargeCapNearMissRule,
    LvdProximityRule,
    SocDroopRule,
    SustainedCurtailmentRule,
    WearImbalanceRule,
    default_rules,
)
from repro.obs.decisions import NULL_DECISIONS, Decision, DecisionLog, NullDecisionLog
from repro.obs.hub import Observability
from repro.obs.ledger import EDGE_NAMES, EnergyLedger, LedgerClosure
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.spans import NULL_TRACER, NullTracer, SpanStats, SpanTracer
from repro.obs.stream import DEFAULT_GAUGES, StreamTap

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "CheckpointStormRule",
    "Counter",
    "Decision",
    "DecisionLog",
    "DischargeCapNearMissRule",
    "EDGE_NAMES",
    "EnergyLedger",
    "Gauge",
    "Histogram",
    "LedgerClosure",
    "LvdProximityRule",
    "MetricsRegistry",
    "NULL_DECISIONS",
    "NULL_TRACER",
    "NullDecisionLog",
    "NullTracer",
    "Observability",
    "SocDroopRule",
    "SpanStats",
    "SpanTracer",
    "StreamTap",
    "DEFAULT_GAUGES",
    "SustainedCurtailmentRule",
    "WearImbalanceRule",
    "default_rules",
    "global_registry",
    "reset_global_registry",
]
