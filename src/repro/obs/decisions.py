"""Structured controller decision events.

The power managers *decide* things — battery mode switches and rotations,
VM retargets, DVFS duty changes, checkpoint/shutdown triggers, restarts —
and in the prototype those decisions are exactly what the operator tails
to understand a bad day.  A :class:`DecisionLog` records them as typed
events with a free-form payload and exports them as JSONL so
:func:`repro.telemetry.analyzer.join_decisions` can join them against the
recorded trace channels.

Controllers always call ``self.decisions.record(...)``; by default that is
the shared :data:`NULL_DECISIONS` no-op, so an uninstrumented run pays one
attribute load plus a vacuous call per (rare) decision and the same-seed
trajectory is untouched either way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator
from typing import Any

#: Decision kinds emitted by the stock controllers (the event schema's
#: ``kind`` vocabulary; see docs/observability.md for payload fields).
KNOWN_KINDS = (
    "buffer.mode",
    "buffer.trip",
    "buffer.online",
    "vm.target",
    "dvfs.duty",
    "load.checkpoint_stop",
    "load.restart",
    "power.shed",
    # Policy overlays (repro.policy); limit evaluations plus the
    # charge-current knob only they turn.
    "policy.limit",
    "charge.current_cap",
    # Streaming alert engine (repro.obs.alerts); payload carries
    # severity, message and per-rule data.
    "alert.soc_droop",
    "alert.wear_imbalance",
    "alert.discharge_cap_near_miss",
    "alert.lvd_proximity",
    "alert.checkpoint_storm",
    "alert.sustained_curtailment",
    # Serve-daemon decision injections (repro.serve): external clients
    # attaching a policy, forcing a limit through one, swapping a
    # governor, or firing a raw control action mid-run.
    "inject.policy",
    "inject.limit",
    "inject.governor",
    "inject.control",
)


@dataclass(frozen=True)
class Decision:
    """One recorded controller decision."""

    t: float
    kind: str
    source: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"t": self.t, "kind": self.kind, "source": self.source, **self.data}
        return json.dumps(payload, sort_keys=True)


class NullDecisionLog:
    """Do-nothing sink wired into controllers by default."""

    __slots__ = ()

    enabled = False

    def record(self, t: float, kind: str, source: str, **data: Any) -> None:
        return None


NULL_DECISIONS = NullDecisionLog()


class DecisionLog:
    """Append-only decision store with JSONL round-tripping.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when given,
        every record increments a ``decisions_total{kind=...}`` counter.
    """

    enabled = True

    def __init__(self, registry=None) -> None:
        self._decisions: list[Decision] = []
        self._registry = registry

    def record(self, t: float, kind: str, source: str, **data: Any) -> Decision:
        decision = Decision(t=float(t), kind=kind, source=source, data=data)
        self._decisions.append(decision)
        if self._registry is not None:
            self._registry.counter("decisions_total", kind=kind).inc()
        return decision

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions)

    def since(self, index: int) -> list[Decision]:
        """Decisions recorded at or after position ``index`` (a prior
        ``len(log)``) — the streaming tap's incremental read."""
        return self._decisions[index:]

    def of_kind(self, kind: str) -> list[Decision]:
        """Decisions whose kind equals or is prefixed by ``kind``."""
        prefix = kind + "."
        return [d for d in self._decisions if d.kind == kind or d.kind.startswith(prefix)]

    def counts(self) -> dict[str, int]:
        """Decision totals per kind, kind-sorted."""
        totals: dict[str, int] = {}
        for decision in self._decisions:
            totals[decision.kind] = totals.get(decision.kind, 0) + 1
        return dict(sorted(totals.items()))

    # ------------------------------------------------------------------
    # JSONL round trip
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(decision.to_json() + "\n" for decision in self._decisions)

    def write_jsonl(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def from_jsonl(cls, path) -> "DecisionLog":
        log = cls()
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            t = payload.pop("t")
            kind = payload.pop("kind")
            source = payload.pop("source")
            log.record(t, kind, source, **payload)
        return log
