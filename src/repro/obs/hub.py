"""Observability hub: one object wiring the three instruments together.

An :class:`Observability` bundles a metrics registry, a span tracer and a
decision log, and :meth:`Observability.attach` fastens them onto an
assembled :class:`~repro.core.system.InSituSystem`:

* the tracer is handed to the engine (sampled tick-loop spans) and the
  controller (sense/decide sub-spans);
* the decision log replaces the controllers' no-op sink;
* gauges for every component's interesting state — battery SoC/voltage,
  rack demand, workload backlog, PLC scan count, controller duty and VM
  target — are registered as *collection-time* callables, so the tick
  loop pays nothing for them;
* an :class:`~repro.obs.ledger.EnergyLedger` snapshots the component
  energy accumulators at attach time (joule-level flow edges + closure);
* an :class:`~repro.obs.alerts.AlertEngine` observer streams rule
  evaluations over live plant state, feeding the decision log.

Everything here only reads simulation state.  Attaching observability to
a run never changes its same-seed trajectory (proven bit-identical in the
golden harness and ``benchmarks/test_perf_engine.py``).
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.alerts import AlertEngine
from repro.obs.decisions import DecisionLog
from repro.obs.ledger import EnergyLedger
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import DEFAULT_STRIDE, SpanTracer


class Observability:
    """Per-run observability bundle.

    Parameters
    ----------
    registry / tracer / decisions:
        Pre-built instruments to use; fresh ones are created by default.
    trace_stride:
        Tick sampling stride for the default tracer.
    ledger:
        Attach the energy-flow ledger (``False`` skips it).
    alerts:
        Attach the streaming alert engine: ``True`` for the default rule
        set, a pre-built :class:`~repro.obs.alerts.AlertEngine` to
        customise rules/stride, ``False`` to skip.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
        decisions: DecisionLog | None = None,
        trace_stride: int = DEFAULT_STRIDE,
        ledger: bool = True,
        alerts: "AlertEngine | bool" = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(stride=trace_stride)
        self.decisions = decisions if decisions is not None else DecisionLog(registry=self.registry)
        #: Energy ledger; bound to a system by :meth:`attach` (None if off).
        self.ledger: EnergyLedger | None = EnergyLedger(registry=self.registry) if ledger else None
        if alerts is True:
            alerts = AlertEngine(decisions=self.decisions, registry=self.registry)
        #: Alert engine; registered as an engine observer by :meth:`attach`
        #: (None if off).  isinstance, not truthiness: an engine with no
        #: fired alerts has len() == 0 and would read as False.
        self.alerts: AlertEngine | None = alerts if isinstance(alerts, AlertEngine) else None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system) -> "Observability":
        """Instrument an assembled system in place; returns self."""
        system.engine.tracer = self.tracer
        system.controller.tracer = self.tracer
        system.controller.decisions = self.decisions
        system.plant.decisions = self.decisions
        self.tracer.bind_registry(self.registry)
        self._register_system_gauges(system)
        if self.ledger is not None:
            self.ledger.attach(system)
        if self.alerts is not None:
            self.alerts.attach(system)
        return self

    def _register_system_gauges(self, system) -> None:
        gauge = self.registry.gauge
        engine = system.engine
        gauge("engine.ticks", "ticks stepped so far").set_function(
            lambda: engine.clock.step_index
        )
        gauge("engine.sim_seconds", "simulated seconds").set_function(lambda: engine.clock.t)

        source = system.source
        gauge("solar.available_w", "PV-bus budget").set_function(
            lambda: source.available_power_w
        )

        bank = system.bank
        gauge("bank.stored_wh", "energy across all cabinets").set_function(
            lambda: bank.stored_energy_wh
        )
        gauge("bank.mean_soc").set_function(lambda: bank.mean_soc)
        gauge("bank.mean_voltage").set_function(lambda: bank.mean_voltage)
        gauge("bank.discharge_ah", "cumulative discharge").set_function(
            lambda: bank.total_discharge_ah()
        )
        for unit in bank:
            gauge("battery.soc", unit=unit.name).set_function(lambda u=unit: u.soc)
            gauge("battery.voltage", unit=unit.name).set_function(
                lambda u=unit: u.terminal_voltage
            )

        rack = system.rack
        gauge("rack.demand_w").set_function(lambda: rack.demand_w)
        gauge("rack.running_vms").set_function(lambda: rack.running_vm_count())
        gauge("rack.on_off_cycles").set_function(lambda: rack.total_on_off_cycles())

        workload = system.workload
        gauge("workload.backlog_gb").set_function(lambda: workload.backlog_gb)
        gauge("workload.processed_gb").set_function(lambda: workload.stats.processed_gb)
        gauge("workload.crashes").set_function(lambda: workload.stats.crash_count)

        controller = system.controller
        gauge("controller.vm_target").set_function(lambda: controller.vm_target)
        gauge("controller.duty").set_function(lambda: getattr(controller, "duty", 1.0))
        gauge("controller.power_ctrl_times").set_function(lambda: controller.power_ctrl_times)
        gauge("controller.vm_ctrl_times").set_function(lambda: controller.vm_ctrl_times)
        gauge("controller.checkpoint_stops").set_function(
            lambda: getattr(controller, "checkpoint_stops", 0)
        )

        plc = system.telemetry.plc
        gauge("plc.scan_count").set_function(lambda: plc.scan_count)
        gauge("plant.shed_events").set_function(lambda: system.plant.shed_events)
        gauge("events.emitted").set_function(lambda: len(system.events))

        mppt = getattr(source, "mppt", None)
        if mppt is not None:
            gauge("solar.irradiance_wm2").set_function(
                lambda: getattr(source, "irradiance_wm2", 0.0)
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, out_dir) -> dict[str, Path]:
        """Write the snapshot files; returns {artifact: path}."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "metrics_jsonl": out / "metrics.jsonl",
            "metrics_prom": out / "metrics.prom",
            "decisions_jsonl": out / "decisions.jsonl",
            "spans_folded": out / "spans.folded",
        }
        self.registry.write_jsonl(paths["metrics_jsonl"])
        paths["metrics_prom"].write_text(self.registry.to_prometheus(), encoding="utf-8")
        self.decisions.write_jsonl(paths["decisions_jsonl"])
        paths["spans_folded"].write_text(self.tracer.to_folded(), encoding="utf-8")
        if self.ledger is not None and self.ledger.attached:
            paths["ledger_json"] = out / "ledger.json"
            paths["ledger_json"].write_text(self.ledger.to_json(), encoding="utf-8")
        if self.alerts is not None:
            paths["alerts_jsonl"] = self.alerts.write_jsonl(out / "alerts.jsonl")
        return paths
