"""Incremental streaming tap over an :class:`~repro.obs.hub.Observability`.

The serve daemon (:mod:`repro.serve`) needs a *delta* view of a running
session: which decisions fired since the last poll, how far each ledger
edge moved, and a compact snapshot of the live plant gauges.  A
:class:`StreamTap` keeps a cursor into the decision log and the last
ledger snapshot, so each :meth:`poll` returns only what changed — the
natural payload shape for a Server-Sent-Events stream.

Like every other instrument in :mod:`repro.obs`, the tap only *reads*:
polling never perturbs the run (the registry gauges are collection-time
callables, the decision log is append-only, and ledger edges are pure
functions of the component accumulators).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

#: Registry gauges sampled into each ``metrics`` event.  A compact
#: operator-dashboard set, not the full registry — the JSONL/Prometheus
#: exporters remain the firehose.
DEFAULT_GAUGES = (
    "engine.ticks",
    "engine.sim_seconds",
    "solar.available_w",
    "bank.stored_wh",
    "bank.mean_soc",
    "bank.mean_voltage",
    "rack.demand_w",
    "rack.running_vms",
    "workload.backlog_gb",
    "workload.processed_gb",
    "controller.duty",
    "controller.vm_target",
    "plant.shed_events",
)

#: Ledger-edge movement below this many watt-hours is not re-streamed.
LEDGER_EPSILON_WH = 1e-9


class StreamTap:
    """Cursor-based reader turning an Observability bundle into events.

    Each :meth:`poll` returns a list of JSON-compatible event dicts, in
    stream order:

    * ``decision`` — one per decision recorded since the last poll
      (``alert.*`` kinds are re-typed as ``alert`` events);
    * ``ledger`` — the edges that moved since the last poll plus the
      current closure verdict (only when something moved);
    * ``metrics`` — a snapshot of the :data:`DEFAULT_GAUGES` (always).
    """

    def __init__(self, obs, gauges: tuple[str, ...] = DEFAULT_GAUGES) -> None:
        self.obs = obs
        self.gauges = tuple(gauges)
        self._decision_cursor = 0
        self._last_edges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Event extraction
    # ------------------------------------------------------------------
    def poll(self, t: float) -> list[dict[str, Any]]:
        """Everything that changed since the last poll, as event dicts."""
        events = self._decision_events()
        ledger = self._ledger_event(t)
        if ledger is not None:
            events.append(ledger)
        events.append(self._metrics_event(t))
        return events

    def _decision_events(self) -> list[dict[str, Any]]:
        log = self.obs.decisions
        fresh = log.since(self._decision_cursor)
        self._decision_cursor = len(log)
        events = []
        for decision in fresh:
            kind = decision.kind
            events.append({
                "type": "alert" if kind.startswith("alert.") else "decision",
                "t": decision.t,
                "kind": kind,
                "source": decision.source,
                "data": dict(decision.data),
            })
        return events

    def _ledger_event(self, t: float) -> dict[str, Any] | None:
        ledger = self.obs.ledger
        if ledger is None or not ledger.attached:
            return None
        edges = ledger.edges()
        moved = {
            name: round(wh - self._last_edges.get(name, 0.0), 9)
            for name, wh in edges.items()
            if abs(wh - self._last_edges.get(name, 0.0)) > LEDGER_EPSILON_WH
        }
        self._last_edges = edges
        if not moved:
            return None
        return {
            "type": "ledger",
            "t": t,
            "delta_wh": moved,
            "closure": asdict(ledger.closure()),
        }

    def _metrics_event(self, t: float) -> dict[str, Any]:
        registry = self.obs.registry
        values: dict[str, float] = {}
        for name in self.gauges:
            metric = registry.get(name)
            if metric is None:
                continue
            values[name] = float(metric.value)
        return {"type": "metrics", "t": t, "values": values}
