"""Node and VM allocation.

The allocator turns a *target VM count* into server power states and VM
placements: servers host up to two VMs, so six target VMs means three
powered machines.  Scaling down checkpoints VMs and gracefully stops the
emptied servers; scaling up boots machines and restores VMs once they are
up.  Every change is an event (``vm.ctrl`` / ``server.on`` / ``server.off``)
so control activity is auditable, as in Table 6.
"""

from __future__ import annotations

import math

from repro.cluster.rack import ServerRack
from repro.cluster.server import Server, ServerState


class NodeAllocator:
    """Maps VM-count targets onto a rack."""

    def __init__(self, rack: ServerRack, cpu_share: float = 0.2) -> None:
        self.rack = rack
        self.cpu_share = cpu_share
        self.target_vms = 0
        self.vm_ctrl_ops = 0

    def set_target(self, vm_count: int, t: float = 0.0) -> bool:
        """Request ``vm_count`` running VMs; returns True if this changed
        the target (and therefore counts as a VM control operation)."""
        if vm_count < 0 or vm_count > self.rack.vm_capacity:
            raise ValueError(
                f"vm_count must be in [0, {self.rack.vm_capacity}], got {vm_count}"
            )
        if vm_count == self.target_vms:
            return False
        self.target_vms = vm_count
        self.vm_ctrl_ops += 1
        self.rack.events.emit(t, "vm.ctrl", "allocator", op="retarget", vms=vm_count)
        self._reconcile(t)
        return True

    def _servers_needed(self) -> int:
        slots = self.rack.profile.vm_slots
        return math.ceil(self.target_vms / slots) if self.target_vms else 0

    def _reconcile(self, t: float) -> None:
        """Adjust server power states and VM placement towards the target."""
        servers = self.rack.servers
        needed = self._servers_needed()

        # Order: already-powered servers first so we prefer keeping them.
        powered = [s for s in servers if s.state in (ServerState.ON, ServerState.BOOTING)]
        unpowered = [s for s in servers if s not in powered]
        keep = (powered + unpowered)[:needed]
        drop = [s for s in servers if s not in keep]

        for server in drop:
            self._strip_vms(server, t)
            if server.power_off():
                self.rack.events.emit(t, "server.off", server.name)

        remaining = self.target_vms
        for server in keep:
            if server.state is ServerState.OFF:
                server.power_on()
                self.rack.events.emit(t, "server.on", server.name)
            elif server.state is ServerState.SAVING:
                # Will be turned back on once the save completes (next sync).
                continue
            want = min(server.profile.vm_slots, remaining)
            self._fit_vms(server, want, t)
            remaining -= want

    def _fit_vms(self, server: Server, want: int, t: float) -> None:
        while len(server.vms) > want:
            vm = server.vms[-1]
            if vm.running:
                vm.checkpoint()
            server.evict_vm(vm)
            self.vm_ctrl_ops += 1
            self.rack.events.emit(t, "vm.ctrl", server.name, op="remove", vm=vm.vm_id)
        while len(server.vms) < want:
            vm = self.rack.new_vm(self.cpu_share)
            server.place_vm(vm)
            if server.state is ServerState.ON:
                vm.start()
            self.vm_ctrl_ops += 1
            self.rack.events.emit(t, "vm.ctrl", server.name, op="add", vm=vm.vm_id)

    def _strip_vms(self, server: Server, t: float) -> None:
        self._fit_vms(server, 0, t)

    def sync(self, t: float = 0.0) -> None:
        """Re-run reconciliation (e.g. after saves complete or crashes)."""
        self._reconcile(t)

    def running_matches_target(self) -> bool:
        return self.rack.running_vm_count() == self.target_vms
