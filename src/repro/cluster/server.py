"""Per-server power state machine.

States: OFF → BOOTING → ON → SAVING → OFF, plus an emergency crash edge
from any powered state straight to OFF.  The BOOTING and SAVING dwell
times come from the profile and add up to the paper's ~15-minute service
interruption per On/Off power cycle; during those states the server draws
power but produces no useful work — the "effective energy usage" gap
quantified in Table 6.
"""

from __future__ import annotations

import enum

from repro.cluster.profiles import ServerProfile
from repro.cluster.vm import VirtualMachine


class ServerState(enum.Enum):
    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    SAVING = "saving"


class Server:
    """One physical machine hosting up to ``profile.vm_slots`` VMs."""

    def __init__(self, name: str, profile: ServerProfile) -> None:
        self.name = name
        self.profile = profile
        self.state = ServerState.OFF
        self.vms: list[VirtualMachine] = []
        #: DVFS duty cycle in [duty_floor, 1]: fraction of time at full speed.
        self.duty = 1.0
        self._transition_left = 0.0
        self.on_off_cycles = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # VM hosting
    # ------------------------------------------------------------------
    def place_vm(self, vm: VirtualMachine) -> None:
        if len(self.vms) >= self.profile.vm_slots:
            raise ValueError(f"{self.name}: no free VM slot")
        self.vms.append(vm)

    def evict_vm(self, vm: VirtualMachine) -> None:
        try:
            self.vms.remove(vm)
        except ValueError:
            raise ValueError(f"{vm.vm_id} is not hosted on {self.name}") from None

    @property
    def free_slots(self) -> int:
        return self.profile.vm_slots - len(self.vms)

    def running_vms(self) -> list[VirtualMachine]:
        if self.state is not ServerState.ON:
            return []
        return [vm for vm in self.vms if vm.running]

    def running_vm_count(self) -> int:
        """Number of running VMs, without building a list (hot path)."""
        if self.state is not ServerState.ON:
            return 0
        count = 0
        for vm in self.vms:
            if vm.running:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Power state machine
    # ------------------------------------------------------------------
    def power_on(self) -> bool:
        """Begin booting; returns True if a transition started."""
        if self.state is not ServerState.OFF:
            return False
        self.state = ServerState.BOOTING
        self._transition_left = self.profile.boot_s
        return True

    def power_off(self) -> bool:
        """Begin a graceful checkpoint-save shutdown."""
        if self.state not in (ServerState.ON, ServerState.BOOTING):
            return False
        for vm in self.vms:
            if vm.running:
                vm.checkpoint()
        self.state = ServerState.SAVING
        self._transition_left = self.profile.save_s
        return True

    def emergency_off(self) -> bool:
        """Immediate power loss: VM states are lost, not checkpointed."""
        if self.state is ServerState.OFF:
            return False
        for vm in self.vms:
            if vm.running:
                vm.crash()
        self.state = ServerState.OFF
        self._transition_left = 0.0
        self.crashes += 1
        self.on_off_cycles += 1
        return True

    def set_duty(self, duty: float) -> None:
        """Set the DVFS duty cycle (fraction of time at full speed)."""
        if not 0.1 <= duty <= 1.0:
            raise ValueError(f"duty must be in [0.1, 1], got {duty}")
        self.duty = duty

    def step(self, dt_seconds: float) -> None:
        """Advance boot/save transitions."""
        if self.state is ServerState.BOOTING:
            self._transition_left -= dt_seconds
            if self._transition_left <= 0.0:
                self.state = ServerState.ON
                for vm in self.vms:
                    vm.start()
        elif self.state is ServerState.SAVING:
            self._transition_left -= dt_seconds
            if self._transition_left <= 0.0:
                self.state = ServerState.OFF
                self.on_off_cycles += 1

    # ------------------------------------------------------------------
    # Electrical / computational output
    # ------------------------------------------------------------------
    @property
    def utilisation(self) -> float:
        if self.state is not ServerState.ON:
            return 0.0
        share = 0.0
        for vm in self.vms:
            if vm.running:
                share += vm.cpu_share
        return min(1.0, share * self.duty)

    @property
    def power_w(self) -> float:
        """Instantaneous wall power draw."""
        state = self.state
        if state is ServerState.ON:
            return self.profile.power_at(self.utilisation)
        if state is ServerState.OFF:
            return 0.0
        if state is ServerState.BOOTING:
            return self.profile.idle_w
        return self.profile.power_at(0.15)

    def compute_seconds(self, dt_seconds: float) -> float:
        """Useful VM-compute-seconds produced this tick.

        Scales with running VM count, DVFS duty and the profile's relative
        speed; zero during boot/save — that is the checkpoint overhead.
        """
        if self.state is not ServerState.ON:
            return 0.0
        n_running = self.running_vm_count()
        return n_running * self.duty * self.profile.relative_speed * dt_seconds
