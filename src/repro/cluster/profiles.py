"""Server hardware profiles.

``XEON_DL380`` models the prototype's HP ProLiant nodes; ``CORE_I7``
models the "state-of-the-art low-power server node" of Table 7 (Intel
Core i7-2720 class, ~42-46 W under load).  Per-workload speed differences
between the two (the i7 is ~2x faster on dedup, about even on x264, and
~0.66x on bayes) live with the micro-benchmark definitions; the profile
carries a generic relative speed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerProfile:
    """Static power/performance envelope of a server model.

    Attributes
    ----------
    idle_w / peak_w:
        Wall power at zero and full utilisation.
    vm_slots:
        VMs the hypervisor hosts per machine (the prototype used 2).
    boot_s:
        Power-on to serving time, including VM state restore.
    save_s:
        Checkpoint-save plus shutdown time.  ``boot_s + save_s`` is the
        paper's ~15-minute service interruption per On/Off cycle.
    relative_speed:
        Generic throughput multiplier versus the Xeon baseline.
    """

    name: str
    idle_w: float
    peak_w: float
    vm_slots: int = 2
    boot_s: float = 660.0
    save_s: float = 240.0
    relative_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.peak_w <= 0:
            raise ValueError("power figures must be positive")
        if self.peak_w <= self.idle_w:
            raise ValueError("peak_w must exceed idle_w")
        if self.vm_slots <= 0:
            raise ValueError("vm_slots must be positive")
        if self.boot_s < 0 or self.save_s < 0:
            raise ValueError("transition times must be non-negative")
        if self.relative_speed <= 0:
            raise ValueError("relative_speed must be positive")

    def power_at(self, utilisation: float) -> float:
        """Wall power at a given utilisation in [0, 1]."""
        u = utilisation
        if u < 0.0:
            u = 0.0
        elif u > 1.0:
            u = 1.0
        idle = self.idle_w
        return idle + (self.peak_w - idle) * u

    @property
    def cycle_overhead_s(self) -> float:
        """Service interruption of one full Off/On cycle."""
        return self.boot_s + self.save_s


#: The prototype's HP ProLiant node (dual Xeon 3.2 GHz, 16 G RAM).
XEON_DL380 = ServerProfile(name="xeon-dl380", idle_w=280.0, peak_w=450.0)

#: Table 7's low-power node (Core i7-2720 class).
CORE_I7 = ServerProfile(
    name="core-i7",
    idle_w=18.0,
    peak_w=90.0,
    boot_s=420.0,
    save_s=180.0,
    relative_speed=1.0,
)
