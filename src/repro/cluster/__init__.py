"""Server cluster substrate.

Models the prototype's compute side: four HP ProLiant rack servers (dual
Xeon 3.2 GHz; ~450 W peak / ~280 W idle) virtualised under a Xen-style
hypervisor with two VMs per physical machine.  The pieces the paper's
power managers manipulate are all here:

* :mod:`repro.cluster.profiles` — server power/performance envelopes,
  including the low-power Core i7 node of Table 7.
* :mod:`repro.cluster.server` — per-server state machine with boot /
  checkpoint-save sequences; each On/Off power cycle costs roughly 15
  minutes of service interruption, the overhead that makes aggressive VM
  scaling counter-productive for batch jobs (Table 2).
* :mod:`repro.cluster.vm` — virtual machine instances with a CPU share.
* :mod:`repro.cluster.rack` — the rack component: aggregate demand, DVFS
  duty-cycle actuation, VM-seconds accounting for workloads.
* :mod:`repro.cluster.allocator` — the node/VM allocator the temporal
  power manager drives.
"""

from repro.cluster.allocator import NodeAllocator
from repro.cluster.profiles import CORE_I7, XEON_DL380, ServerProfile
from repro.cluster.rack import ServerRack
from repro.cluster.server import Server, ServerState
from repro.cluster.storage import StorageArray, StorageReport
from repro.cluster.vm import VirtualMachine

__all__ = [
    "CORE_I7",
    "NodeAllocator",
    "Server",
    "ServerRack",
    "ServerState",
    "ServerProfile",
    "StorageArray",
    "StorageReport",
    "VirtualMachine",
    "XEON_DL380",
]
