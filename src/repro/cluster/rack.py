"""The server rack simulation component.

Aggregates servers into one schedulable unit: total demand for the power
bus, total compute-seconds for the workload, and rack-wide actuation
(duty cycles, emergency shedding).  Emits ``server.on``, ``server.off``,
``server.crash`` and ``vm.ctrl`` events so Table 6's operation counters
fall straight out of the event log.
"""

from __future__ import annotations

from repro.cluster.profiles import XEON_DL380, ServerProfile
from repro.cluster.server import Server, ServerState
from repro.cluster.vm import VirtualMachine
from repro.power.converters import PowerDistributionUnit
from repro.sim.clock import Clock
from repro.sim.component import Component
from repro.sim.events import EventLog


class ServerRack(Component):
    """A rack of identical servers behind one PDU."""

    def __init__(
        self,
        name: str = "rack",
        server_count: int = 4,
        profile: ServerProfile | None = None,
        pdu: PowerDistributionUnit | None = None,
        events: EventLog | None = None,
    ) -> None:
        super().__init__(name)
        if server_count <= 0:
            raise ValueError("server_count must be positive")
        self.profile = profile or XEON_DL380
        self.servers = [Server(f"{name}.pm{i + 1}", self.profile) for i in range(server_count)]
        self.pdu = pdu or PowerDistributionUnit(ports=max(8, server_count))
        # Note: an empty EventLog is falsy (it has __len__), so an 'or'
        # default would silently discard a shared log.
        self.events = events if events is not None else EventLog()
        self._vm_counter = 0
        self.compute_seconds_total = 0.0
        self._last_compute_seconds = 0.0

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def vm_capacity(self) -> int:
        return sum(s.profile.vm_slots for s in self.servers)

    def running_vm_count(self) -> int:
        return sum(s.running_vm_count() for s in self.servers)

    def placed_vm_count(self) -> int:
        return sum(len(s.vms) for s in self.servers)

    def active_servers(self) -> list[Server]:
        return [s for s in self.servers if s.state is not ServerState.OFF]

    def serving(self) -> bool:
        """Whether at least one VM is doing useful work right now."""
        return any(s.running_vm_count() for s in self.servers)

    def fully_serving(self) -> bool:
        """Whether every placed VM is running (no boot/save in progress)."""
        placed = self.placed_vm_count()
        return placed > 0 and self.running_vm_count() == placed

    # ------------------------------------------------------------------
    # Actuation (used by the node allocator and the TPM)
    # ------------------------------------------------------------------
    def new_vm(self, cpu_share: float = 0.2) -> VirtualMachine:
        self._vm_counter += 1
        return VirtualMachine(f"{self.name}.vm{self._vm_counter}", cpu_share)

    def set_duty(self, duty: float, t: float = 0.0) -> None:
        """Apply a DVFS duty cycle rack-wide (batch-job power capping)."""
        changed = False
        for server in self.servers:
            if abs(server.duty - duty) > 1e-9:
                server.set_duty(duty)
                changed = True
        if changed:
            self.events.emit(t, "power.duty", self.name, duty=duty)

    def emergency_shed(self, t: float = 0.0) -> int:
        """Uncontrolled power loss on every powered server."""
        count = 0
        for server in self.servers:
            if server.emergency_off():
                count += 1
                self.events.emit(t, "server.crash", server.name)
        return count

    def graceful_stop_all(self, t: float = 0.0) -> int:
        """Checkpoint and shut down every powered server."""
        count = 0
        for server in self.servers:
            if server.power_off():
                count += 1
                self.events.emit(t, "server.off", server.name)
                self.events.emit(t, "vm.ctrl", server.name, op="checkpoint",
                                 vms=len(server.vms))
        return count

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self, clock: Clock) -> None:
        self._last_compute_seconds = 0.0
        for server in self.servers:
            server.step(clock.dt)
            self._last_compute_seconds += server.compute_seconds(clock.dt)
        self.compute_seconds_total += self._last_compute_seconds

    @property
    def last_compute_seconds(self) -> float:
        """Useful VM-compute-seconds produced in the latest tick."""
        return self._last_compute_seconds

    @property
    def demand_w(self) -> float:
        """Instantaneous rack power demand including PDU overhead."""
        loads = [s.power_w for s in self.servers]
        return self.pdu.draw(loads)

    def total_on_off_cycles(self) -> int:
        return sum(s.on_off_cycles for s in self.servers)
