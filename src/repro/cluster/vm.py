"""Virtual machine instances.

A VM is a unit of compute capacity the allocator places on servers and the
temporal power manager adds/removes for stream workloads.  Its ``cpu_share``
is the utilisation it contributes to its host when active; the prototype's
configuration (two VMs at ~0.2 each) puts a busy ProLiant at ~350 W,
matching Tables 2 and 3.
"""

from __future__ import annotations


class VirtualMachine:
    """One VM instance.

    Parameters
    ----------
    vm_id:
        Unique identifier.
    cpu_share:
        Host utilisation contributed while running, in (0, 1].
    """

    def __init__(self, vm_id: str, cpu_share: float = 0.2) -> None:
        if not vm_id:
            raise ValueError("vm_id must be non-empty")
        if not 0.0 < cpu_share <= 1.0:
            raise ValueError(f"cpu_share must be in (0,1], got {cpu_share}")
        self.vm_id = vm_id
        self.cpu_share = cpu_share
        self.running = False
        #: Set when the VM state was checkpointed (survives host power-off).
        self.checkpointed = False

    def start(self) -> None:
        self.running = True
        self.checkpointed = False

    def checkpoint(self) -> None:
        """Save state and stop (graceful suspend)."""
        self.running = False
        self.checkpointed = True

    def crash(self) -> None:
        """Uncontrolled stop: state is lost, not checkpointed."""
        self.running = False
        self.checkpointed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else ("saved" if self.checkpointed else "stopped")
        return f"VirtualMachine({self.vm_id!r}, {state})"
