"""On-site storage for buffered raw data.

Each ProLiant carried a 500 GB SAS disk; Figure 6 shows "Storage" beside
the VM instances.  Raw data lands on disk as it arrives and is drained as
the pipeline processes it — so when power management parks the servers
for hours, the backlog accumulates *on disk*.  If the array fills, the
oldest unprocessed data is overwritten (surveillance-recorder semantics)
and counted as lost: the quantity the paper's video-surveillance
motivation cares about ("surveillance videos can be stored for extended
periods" only if the pipeline keeps up).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.events import EventLog


@dataclass(frozen=True)
class StorageReport:
    """Snapshot of the array's state."""

    capacity_gb: float
    used_gb: float
    dropped_gb: float

    @property
    def free_gb(self) -> float:
        return self.capacity_gb - self.used_gb

    @property
    def utilisation(self) -> float:
        return self.used_gb / self.capacity_gb if self.capacity_gb else 0.0


class StorageArray:
    """Fixed-capacity raw-data buffer with overwrite-oldest semantics.

    Parameters
    ----------
    capacity_gb:
        Total usable capacity (the prototype: 4 x 500 GB SAS).
    idle_w / active_w:
        Power draw of the array when idle vs streaming.
    """

    def __init__(
        self,
        capacity_gb: float = 2000.0,
        idle_w: float = 24.0,
        active_w: float = 40.0,
        events: EventLog | None = None,
        name: str = "storage",
    ) -> None:
        if capacity_gb <= 0:
            raise ValueError("capacity_gb must be positive")
        if idle_w < 0 or active_w < idle_w:
            raise ValueError("need 0 <= idle_w <= active_w")
        self.capacity_gb = capacity_gb
        self.idle_w = idle_w
        self.active_w = active_w
        self.events = events
        self.name = name
        self.used_gb = 0.0
        self.dropped_gb = 0.0
        self._streaming = False

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def ingest(self, gb: float, t: float = 0.0) -> float:
        """Store ``gb`` of newly arrived raw data.

        Returns the GB *dropped* to make room (overwrite-oldest), zero
        when everything fits.
        """
        if gb < 0:
            raise ValueError("gb must be non-negative")
        self._streaming = gb > 0
        self.used_gb += gb
        overflow = max(0.0, self.used_gb - self.capacity_gb)
        if overflow > 0:
            self.used_gb = self.capacity_gb
            self.dropped_gb += overflow
            if self.events is not None:
                self.events.emit(t, "storage.overflow", self.name, gb=overflow)
        return overflow

    def drain(self, gb: float) -> float:
        """Remove processed data; returns the GB actually removed."""
        if gb < 0:
            raise ValueError("gb must be non-negative")
        removed = min(gb, self.used_gb)
        self.used_gb -= removed
        self._streaming = self._streaming or removed > 0
        return removed

    @property
    def power_w(self) -> float:
        """Instantaneous draw; ``active`` while data moved this tick."""
        power = self.active_w if self._streaming else self.idle_w
        self._streaming = False
        return power

    def report(self) -> StorageReport:
        return StorageReport(
            capacity_gb=self.capacity_gb,
            used_gb=self.used_gb,
            dropped_gb=self.dropped_gb,
        )
