"""Command-line interface.

Run reproduction experiments without writing code::

    python -m repro day --controller insure --workload video --solar sunny
    python -m repro compare --workload seismic --mean-w 500
    python -m repro table 2
    python -m repro table 7
    python -m repro figure 20 --jobs 4
    python -m repro cache info
    python -m repro plan --gb-per-day 120 --sunshine 0.7 --days 180
    python -m repro validate --jobs 4
    python -m repro validate --refresh
    python -m repro validate --sweep-hours 36 --report sweep.json
    python -m repro profile run --workload seismic --solar sunny --out prof/
    python -m repro report run --workload video --compare baseline --out flight/
    python -m repro fleet run --sites 1024 --seeds 1 --backend fleet
    python -m repro fleet mc --cabinets 2,3,4,5 --samples 64
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.system import build_system
from repro.solar.traces import make_day_trace
from repro.telemetry.analyzer import all_improvements
from repro.telemetry.metrics import RunSummary
from repro.workloads import SeismicAnalysis, VideoSurveillance


def _make_workload(kind: str):
    if kind == "video":
        return VideoSurveillance()
    if kind == "seismic":
        return SeismicAnalysis()
    raise SystemExit(f"unknown workload {kind!r} (expected video|seismic)")


def _print_summary(summary: RunSummary) -> None:
    print(f"uptime                {summary.availability_pct:8.1f} %")
    print(f"processed             {summary.processed_gb:8.1f} GB")
    print(f"throughput            {summary.throughput_gb_per_hour:8.2f} GB/h")
    print(f"mean delay            {summary.mean_delay_minutes:8.1f} min")
    print(f"load energy           {summary.load_energy_kwh:8.2f} kWh")
    print(f"effective energy      {summary.effective_energy_kwh:8.2f} kWh")
    print(f"e-Buffer availability {summary.energy_availability_wh:8.0f} Wh")
    print(f"projected life        {summary.projected_life_days:8.0f} days")
    print(f"perf per Ah           {summary.perf_per_ah_gb:8.2f} GB/Ah")
    print(f"power/VM/on-off ops   {summary.power_ctrl_times:4d} /"
          f" {summary.vm_ctrl_times:4d} / {summary.on_off_cycles:4d}")


def _cmd_day(args: argparse.Namespace) -> int:
    trace = make_day_trace(args.solar, target_mean_w=args.mean_w, seed=args.seed)
    system = build_system(trace, _make_workload(args.workload),
                          controller=args.controller, seed=args.seed,
                          initial_soc=args.initial_soc)
    summary = system.run()
    print(f"{args.controller} / {args.workload} / {args.solar} "
          f"({args.mean_w:.0f} W avg, seed {args.seed})")
    print("-" * 44)
    _print_summary(summary)
    if args.report:
        from pathlib import Path

        from repro.telemetry.report import render_summary

        Path(args.report).write_text(render_summary(
            summary,
            title=f"{args.controller} / {args.workload} / {args.solar}",
        ))
        print(f"\nreport written to {args.report}")
    if args.trace_csv:
        from repro.telemetry.io import export_recorder_csv

        export_recorder_csv(system.recorder, args.trace_csv)
        print(f"trace written to {args.trace_csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    summaries = {}
    for controller in ("insure", "baseline"):
        trace = make_day_trace(args.solar, target_mean_w=args.mean_w,
                               seed=args.seed)
        system = build_system(trace, _make_workload(args.workload),
                              controller=controller, seed=args.seed,
                              initial_soc=args.initial_soc)
        summaries[controller] = system.run()
    for controller, summary in summaries.items():
        print(f"\n[{controller}]")
        _print_summary(summary)
    print("\nInSURE improvement over baseline:")
    improvements = all_improvements(summaries["insure"], summaries["baseline"])
    for metric, value in improvements.items():
        print(f"  {metric:16s} {value * 100:+7.0f} %")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 2:
        from repro.experiments.fixed_config import run_fixed_config

        print("Table 2 — seismic at 2 kWh")
        for vms in (8, 4):
            result = run_fixed_config(SeismicAnalysis(arrivals_per_day=()), vms)
            print(f"  {vms} VM: {result.avg_power_w:6.0f} W  "
                  f"avail {result.availability * 100:5.1f} %  "
                  f"{result.throughput_gb_per_hour:5.2f} GB/h")
    elif args.number == 3:
        from repro.experiments.fixed_config import run_energy_window

        print("Table 3 — video at 2 kWh")
        for vms in (8, 6, 4, 2):
            result = run_energy_window(VideoSurveillance(), vms)
            print(f"  {vms} VM: {result.avg_power_w:6.0f} W  "
                  f"delay {result.mean_delay_minutes:6.1f} min  "
                  f"{result.throughput_gb_per_hour / 60:6.3f} GB/min")
    elif args.number == 6:
        from repro.experiments.table6 import format_table6, run_table6

        print(format_table6(run_table6(max_workers=args.jobs,
                                       use_cache=not args.no_cache)))
    elif args.number == 7:
        from repro.experiments.table7 import efficiency_gains, run_table7

        rows = run_table7()
        for item in rows:
            print(f"  {item.benchmark:9s} {item.server:11s} "
                  f"exe {item.exe_time_s:7.1f} s  {item.avg_power_w:5.0f} W  "
                  f"{item.gb_per_kwh:8.0f} GB/kWh")
        gains = efficiency_gains(rows)
        print("  gains:", {k: round(v, 1) for k, v in gains.items()})
    else:
        raise SystemExit(f"table {args.number} not available (use 2, 3, 6 or 7)")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.fullsystem import run_figure20, run_figure21

    runner = {20: run_figure20, 21: run_figure21}[args.number]
    results = runner(seed=args.seed, max_workers=args.jobs,
                     use_cache=not args.no_cache)
    workload = {20: "seismic batch", 21: "video stream"}[args.number]
    print(f"Figure {args.number} — {workload}, InSURE improvement over baseline")
    for level in ("high", "low"):
        comparison = results[level]
        print(f"\n[{level} solar — {comparison.solar_mean_w:.0f} W avg]")
        for metric, value in comparison.improvements.items():
            print(f"  {metric:16s} {value * 100:+7.0f} %")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.sim.cache import ENV_VAR, default_cache

    cache = default_cache()
    if args.action == "info":
        if not cache.enabled:
            print(f"cache disabled ({ENV_VAR}={'off'!r})")
        else:
            print(f"directory: {cache.directory}")
            print(f"entries:   {cache.entry_count()}")
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached run(s)")
    return 0


def _available_cell_ids() -> list[str]:
    """Every pinned cell id: matrix cells as controller:workload:weather
    plus the policy scenario cells as scenario-<name>."""
    from repro.experiments.scenarios import scenario_names
    from repro.validate import golden

    ids = [
        f"{c['controller']}:{c['workload']}:{c['weather']}"
        for c in golden.matrix_cells()
    ]
    ids.extend(golden.scenario_cell_name(name) for name in scenario_names())
    return ids


def _unknown_cell(spec: str) -> SystemExit:
    listing = "\n  ".join(_available_cell_ids())
    return SystemExit(f"unknown cell {spec!r}; available cells:\n  {listing}")


def _parse_cells(specs):
    from repro.experiments.scenarios import scenario_names
    from repro.validate import golden

    if not specs:
        return None
    cells = []
    for spec in specs:
        if spec.startswith("scenario-"):
            name = spec[len("scenario-"):]
            if name not in scenario_names():
                raise _unknown_cell(spec)
            cells.append({"scenario": name})
            continue
        parts = spec.split(":")
        if len(parts) != 3:
            raise _unknown_cell(spec)
        controller, workload, weather = parts
        if (controller not in golden.CONTROLLERS
                or workload not in golden.WORKLOADS
                or weather not in golden.WEATHERS):
            raise _unknown_cell(spec)
        cells.append({"controller": controller, "workload": workload,
                      "weather": weather})
    return cells


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate import golden

    golden_dir = args.golden_dir or golden.DEFAULT_GOLDEN_DIR
    cells = _parse_cells(args.cell)
    count = len(cells) if cells else len(golden.all_cells())
    if args.sweep_hours is not None:
        return _run_sweep(args, cells, count)
    if args.refresh:
        print(f"refreshing {count} golden cell(s) …")
        paths = golden.refresh_matrix(golden_dir, cells=cells,
                                      max_workers=args.jobs)
        for path in paths:
            print(f"  wrote {path}")
        return 0

    print(f"validating {count} golden cell(s) …")
    report = golden.check_matrix(golden_dir, cells=cells,
                                 max_workers=args.jobs)
    failed = 0
    for name, diffs in report.items():
        if diffs:
            failed += 1
            print(f"  FAIL {name}")
            for line in diffs:
                print(f"       {line}")
        else:
            print(f"  ok   {name}")
    if failed:
        print(f"\n{failed}/{len(report)} cell(s) diverged; if the change is "
              f"intentional, refresh with `repro validate --refresh` and "
              f"review the digest diff (see docs/validation.md)")
        return 1
    print("\nall cells match; physics invariants clean")
    return 0


def _run_sweep(args: argparse.Namespace, cells, count: int) -> int:
    """Extended-horizon invariant sweep (the nightly CI job's workhorse)."""
    import json

    from repro.validate import golden

    hours = args.sweep_hours
    if hours <= 0:
        raise SystemExit(f"--sweep-hours must be positive, got {hours}")
    print(f"invariant sweep: {count} cell(s) over {hours:g} h …")
    verdicts = golden.invariant_sweep(hours * 3600.0, cells=cells,
                                     max_workers=args.jobs)
    violated = 0
    for name, verdict in sorted(verdicts.items()):
        violations = verdict.get("violations", 0)
        status = "ok  " if not violations else "FAIL"
        print(f"  {status} {name}: {verdict['checks_run']} checks, "
              f"{violations} violation(s)")
        for line in verdict.get("first_violations", [])[:3]:
            print(f"       {line}")
        violated += bool(violations)
    if args.report:
        from pathlib import Path

        Path(args.report).write_text(
            json.dumps({"sweep_hours": hours, "cells": verdicts},
                       indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}")
    if violated:
        print(f"\n{violated}/{len(verdicts)} cell(s) violated invariants")
        return 1
    print("\nall cells clean")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import (
        profile_run,
        render_breakdown,
        render_decisions,
        render_hottest,
        write_outputs,
    )

    duration_s = args.duration_h * 3600.0 if args.duration_h else None
    result = profile_run(
        controller=args.controller,
        workload=args.workload,
        weather=args.solar,
        mean_w=args.mean_w,
        seed=args.seed,
        initial_soc=args.initial_soc,
        stride=args.stride,
        duration_s=duration_s,
        cprofile_path=args.cprofile,
    )
    ticks_per_s = result.ticks / result.wall_s if result.wall_s else 0.0
    print(f"{args.controller} / {args.workload} / {args.solar} "
          f"({args.mean_w:.0f} W avg, seed {args.seed}) — "
          f"{result.ticks} ticks in {result.wall_s:.2f} s "
          f"({ticks_per_s:,.0f} ticks/s)")
    print()
    print(render_breakdown(result))
    print()
    print(render_hottest(result))
    print()
    print(render_decisions(result))
    if args.cprofile:
        print(f"\ncProfile stats written to {result.cprofile_path} "
              f"(snakeviz/flameprof compatible)")
    if args.out:
        paths = write_outputs(result, args.out)
        print()
        for label, path in sorted(paths.items()):
            print(f"{label:16s} {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.flight import (
        render_markdown,
        run_flight,
        write_flight_report,
    )

    if args.scenario is not None:
        from repro.experiments.scenarios import scenario_names

        if args.scenario not in scenario_names():
            listing = "\n  ".join(scenario_names())
            raise SystemExit(
                f"unknown scenario {args.scenario!r}; available scenarios:\n"
                f"  {listing}"
            )
    duration_s = args.duration_h * 3600.0 if args.duration_h else None
    report = run_flight(
        controller=args.controller,
        workload=args.workload,
        weather=args.solar,
        mean_w=args.mean_w,
        seed=args.seed,
        initial_soc=args.initial_soc,
        duration_s=duration_s,
        stride=args.stride,
        compare=args.compare,
        scenario=args.scenario,
    )
    markdown = render_markdown(report)
    if args.out:
        paths = write_flight_report(report, args.out, with_html=args.html)
        for label, path in sorted(paths.items()):
            print(f"{label:16s} {path}")
    else:
        print(markdown)
    closure = report.obs.ledger.closure()
    if not closure.ok:
        print(f"\nWARNING: {closure}", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.fullsystem import run_single
    from repro.experiments.runner import derive_seed, run_cells
    from repro.solar.traces import make_day_trace

    if args.sites < 1 or args.seeds < 1:
        raise SystemExit("--sites and --seeds must be at least 1")
    if args.backend == "fleet":
        from repro.sim.fleet import NUMPY_HINT, numpy_available

        if not numpy_available():
            print(f"note: {NUMPY_HINT}", file=sys.stderr)

    cells = [
        dict(
            controller=args.controller,
            workload_kind=args.workload,
            profile=args.solar,
            solar_mean_w=args.mean_w,
            seed=derive_seed(args.seed, "fleet", batch, site),
            initial_soc=args.initial_soc,
            use_cache=False,
        )
        for batch in range(args.seeds)
        for site in range(args.sites)
    ]
    trace = make_day_trace(args.solar, target_mean_w=args.mean_w,
                           seed=args.seed)
    steps = max(1, round(trace.duration_s / trace.dt_seconds))

    t0 = time.perf_counter()
    summaries = run_cells(run_single, cells, backend=args.backend,
                          max_workers=args.jobs)
    wall_s = time.perf_counter() - t0

    runs = len(summaries)
    ticks = runs * steps
    print(f"{args.controller} / {args.workload} / {args.solar} "
          f"({args.mean_w:.0f} W avg) — {args.sites} site(s) x "
          f"{args.seeds} seed(s), backend {args.backend}")
    print(f"{ticks:,} site-ticks in {wall_s:.2f} s "
          f"({ticks / wall_s:,.0f} ticks/s aggregate)")
    print()
    _print_fleet_percentiles(summaries)
    return 0


def _print_fleet_percentiles(summaries) -> None:
    """Per-site distribution table over the fleet's run summaries."""
    from repro.experiments.montecarlo import PERCENTILES, percentile

    metrics = (
        ("uptime %", [s.uptime_fraction * 100.0 for s in summaries], "7.1f"),
        ("processed GB", [s.processed_gb for s in summaries], "7.1f"),
        ("throughput GB/h", [s.throughput_gb_per_hour for s in summaries],
         "7.2f"),
        ("min voltage V", [s.min_battery_voltage for s in summaries], "7.2f"),
        ("life days", [s.projected_life_days for s in summaries], "7.0f"),
    )
    header = f"{'per-site':16s}" + "".join(f" {'p' + str(p):>8s}"
                                           for p in PERCENTILES)
    print(header)
    print("-" * len(header))
    for label, values, fmt in metrics:
        row = "".join(f" {percentile(values, p):>8{fmt[1:]}}"
                      for p in PERCENTILES)
        print(f"{label:16s}{row}")


def _cmd_fleet_mc(args: argparse.Namespace) -> int:
    from repro.experiments.montecarlo import format_monte_carlo, run_monte_carlo

    counts = tuple(int(c) for c in args.cabinets.split(","))
    points = run_monte_carlo(
        battery_counts=counts,
        solar_scale=args.solar_scale,
        samples=args.samples,
        base_seed=args.seed,
        backend=args.backend,
        max_workers=args.jobs,
        use_cache=not args.no_cache,
    )
    print(f"Monte Carlo provisioning — {args.samples} sample(s)/config, "
          f"backend {args.backend}")
    print(format_monte_carlo(points))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import (
        build_policies,
        get_scenario,
        run_scenario_cell,
        scenario_names,
        scenario_seed,
    )

    if not args.name:
        print("available scenarios:")
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"\n[{name}]  {spec.controller} / {spec.workload} / "
                  f"{spec.weather}")
            print(f"  {spec.description}")
            for policy in build_policies(name, scenario_seed(name)):
                print(f"  - {policy.describe()}")
        return 0
    try:
        spec = get_scenario(args.name)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    summary = run_scenario_cell(args.name, use_cache=not args.no_cache)
    print(f"scenario {args.name} — {spec.controller} / {spec.workload} / "
          f"{spec.weather} (seed {scenario_seed(args.name)})")
    print("-" * 44)
    _print_summary(summary)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.daemon import ServeDaemon

    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_buffered_events=args.max_buffered_events,
    )
    try:
        asyncio.run(daemon.serve_forever())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.cost.scaleout import cloud_cost, insitu_cost, pods_required

    years = args.days / 365.0
    local = insitu_cost(args.gb_per_day, args.sunshine, years)
    remote = cloud_cost(args.gb_per_day, years)
    pods = pods_required(args.gb_per_day, args.sunshine)
    print(f"in-situ: ${local:,.0f} ({pods} pod(s))   cloud: ${remote:,.0f}")
    if local < remote:
        print(f"deploy in-situ — saves {100 * (1 - local / remote):.0f}%")
    else:
        print(f"use the cloud — in-situ costs {100 * (local / remote - 1):.0f}% more")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        render_json,
        render_text,
        rule_names,
        run_lint,
        write_baseline,
    )
    from repro.analysis.runner import build_project, default_root, lint_project
    from repro.analysis.registry import make_rules

    if args.list_rules:
        for rule in make_rules():
            print(f"{rule.id}: {rule.description}")
        return 0

    rule_ids = args.rule if args.rule else None
    if rule_ids:
        unknown = sorted(set(rule_ids) - set(rule_names()))
        if unknown:
            print(f"repro lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    root = Path(args.root) if args.root else None
    baseline_path = None
    if args.baseline is not None:
        baseline_path = args.baseline if args.baseline else DEFAULT_BASELINE_NAME

    if args.write_baseline:
        project = build_project(root)
        rules = make_rules(rule_ids)
        findings, _ = lint_project(project, rules,
                                   all_rules_selected=rule_ids is None)
        out = write_baseline(findings,
                             baseline_path or DEFAULT_BASELINE_NAME)
        print(f"wrote {len(findings)} finding(s) to {out}")
        return 0

    result = run_lint(root=root, rule_ids=rule_ids,
                      baseline_path=baseline_path)
    if args.json:
        print(render_json(result), end="")
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="InSURE (ISCA 2015) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p):
        p.add_argument("--workload", default="video", choices=("video", "seismic"))
        p.add_argument("--solar", default="sunny",
                       choices=("sunny", "cloudy", "rainy"))
        p.add_argument("--mean-w", type=float, default=800.0)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--initial-soc", type=float, default=0.55)

    day = sub.add_parser("day", help="run one day and print the report")
    day.add_argument("--controller", default="insure",
                     choices=("insure", "baseline"))
    day.add_argument("--report", help="also write a Markdown report here")
    day.add_argument("--trace-csv", help="also export the trace channels here")
    add_run_options(day)
    day.set_defaults(func=_cmd_day)

    compare = sub.add_parser("compare", help="InSURE vs baseline on one day")
    add_run_options(compare)
    compare.set_defaults(func=_cmd_compare)

    def add_matrix_options(p):
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the cell matrix "
                            "(default: REPRO_WORKERS env or CPU count)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk run cache")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(2, 3, 6, 7))
    add_matrix_options(table)
    table.set_defaults(func=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure matrix")
    figure.add_argument("number", type=int, choices=(20, 21))
    figure.add_argument("--seed", type=int, default=1)
    add_matrix_options(figure)
    figure.set_defaults(func=_cmd_figure)

    cache = sub.add_parser("cache", help="inspect or clear the run cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.set_defaults(func=_cmd_cache)

    validate = sub.add_parser(
        "validate",
        help="run the physics-invariant checker and golden-trace digests",
    )
    validate.add_argument("--refresh", action="store_true",
                          help="rewrite the stored golden digests")
    validate.add_argument("--cell", action="append", metavar="CTRL:WL:WEATHER",
                          help="restrict to one matrix cell (repeatable), "
                               "e.g. insure:video:sunny")
    validate.add_argument("--jobs", type=int, default=None,
                          help="worker processes for the cell matrix")
    validate.add_argument("--golden-dir", default=None,
                          help="golden record directory "
                               "(default: tests/golden in the checkout)")
    validate.add_argument("--sweep-hours", type=float, default=None,
                          metavar="H",
                          help="skip digest comparison; run an H-hour "
                               "invariant sweep instead (nightly CI mode)")
    validate.add_argument("--report", default=None, metavar="PATH",
                          help="write the sweep verdicts as JSON here "
                               "(only with --sweep-hours)")
    validate.set_defaults(func=_cmd_validate)

    profile = sub.add_parser(
        "profile",
        help="run with observability attached and print a time breakdown",
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)
    profile_run_p = profile_sub.add_parser(
        "run", help="profile one simulated day (or --duration-h hours)"
    )
    profile_run_p.add_argument("--controller", default="insure",
                               choices=("insure", "baseline"))
    add_run_options(profile_run_p)
    profile_run_p.add_argument("--duration-h", type=float, default=None,
                               help="horizon in hours (default: full trace)")
    profile_run_p.add_argument("--stride", type=int, default=16,
                               help="trace every Nth tick (default 16)")
    profile_run_p.add_argument("--out", default=None, metavar="DIR",
                               help="write metrics/decisions/spans/breakdown "
                                    "artifacts into DIR")
    profile_run_p.add_argument("--cprofile", default=None, metavar="PATH",
                               help="also write cProfile stats to PATH")
    profile_run_p.set_defaults(func=_cmd_profile)

    report = sub.add_parser(
        "report",
        help="file a unified flight report (summary, ledger, alerts, spans)",
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    report_run_p = report_sub.add_parser(
        "run", help="fly one instrumented day and render the flight report"
    )
    report_run_p.add_argument("--controller", default="insure",
                              choices=("insure", "baseline"))
    add_run_options(report_run_p)
    report_run_p.add_argument("--duration-h", type=float, default=None,
                              help="horizon in hours (default: full trace)")
    report_run_p.add_argument("--stride", type=int, default=16,
                              help="trace every Nth tick (default 16)")
    report_run_p.add_argument("--compare", default=None, metavar="CONTROLLER",
                              choices=("insure", "baseline"),
                              help="also fly this controller on the same "
                                   "seed/trace and include the comparison")
    report_run_p.add_argument("--scenario", default=None, metavar="NAME",
                              help="fly a policy scenario instead (overrides "
                                   "controller/workload/solar/seed; with "
                                   "--compare, the comparison flies without "
                                   "the policy overlays)")
    report_run_p.add_argument("--out", default=None, metavar="DIR",
                              help="write flight_report.md plus the raw "
                                   "observability artifacts into DIR "
                                   "(default: print the Markdown)")
    report_run_p.add_argument("--html", action="store_true",
                              help="also render flight_report.html (with "
                                   "--out)")
    report_run_p.set_defaults(func=_cmd_report)

    fleet = sub.add_parser(
        "fleet",
        help="batch-simulate many sites through the vectorized SoA kernel",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="run N sites x S seeds and print the fleet distribution"
    )
    fleet_run.add_argument("--sites", type=int, default=256,
                           help="sites per seed batch (default 256)")
    fleet_run.add_argument("--seeds", type=int, default=1,
                           help="independent seed batches (default 1)")
    fleet_run.add_argument("--backend", default="fleet",
                           choices=("fleet", "pool", "serial"),
                           help="execution backend (default fleet; falls "
                                "back to pool/serial without numpy)")
    fleet_run.add_argument("--controller", default="insure",
                           choices=("insure", "baseline"))
    fleet_run.add_argument("--jobs", type=int, default=None,
                           help="worker processes for pool/serial fallback")
    add_run_options(fleet_run)
    fleet_run.set_defaults(func=_cmd_fleet)
    fleet_mc = fleet_sub.add_parser(
        "mc", help="Monte Carlo provisioning percentiles per e-Buffer size"
    )
    fleet_mc.add_argument("--cabinets", default="2,3,4,5",
                          help="comma-separated battery counts (default "
                               "2,3,4,5)")
    fleet_mc.add_argument("--samples", type=int, default=64,
                          help="seed samples per configuration (default 64)")
    fleet_mc.add_argument("--solar-scale", type=float, default=1.0)
    fleet_mc.add_argument("--seed", type=int, default=7)
    fleet_mc.add_argument("--backend", default="fleet",
                          choices=("fleet", "pool", "serial"))
    fleet_mc.add_argument("--jobs", type=int, default=None)
    fleet_mc.add_argument("--no-cache", action="store_true",
                          help="bypass the on-disk run cache")
    fleet_mc.set_defaults(func=_cmd_fleet_mc)

    scenario = sub.add_parser(
        "scenario",
        help="run a policy scenario cell (carbon/price-aware overlays)",
    )
    scenario.add_argument("name", nargs="?", default=None,
                          help="scenario name (omit to list scenarios and "
                               "their policies)")
    scenario.add_argument("--no-cache", action="store_true",
                          help="bypass the on-disk run cache")
    scenario.set_defaults(func=_cmd_scenario)

    serve = sub.add_parser(
        "serve",
        help="boot the simulation-as-a-service daemon (SSE streaming)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737,
                       help="listen port (default 8737; 0 = ephemeral)")
    serve.add_argument("--max-sessions", type=int, default=64,
                       help="live-session capacity (default 64)")
    serve.add_argument("--max-buffered-events", type=int, default=4096,
                       help="per-session SSE replay buffer (default 4096)")
    serve.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="run the domain-aware static analysis suite over repro's sources",
    )
    lint.add_argument("--rule", action="append", metavar="RULE-ID",
                      help="run only this rule (repeatable; default: all)")
    lint.add_argument("--json", action="store_true",
                      help="emit the versioned JSON report instead of text")
    lint.add_argument("--baseline", nargs="?", const="", default=None,
                      metavar="PATH",
                      help="filter findings against a committed baseline "
                           "(default path: .lint-baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="park current findings into the baseline file")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="package directory to scan (default: the "
                           "installed repro package)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rule ids and exit")
    lint.set_defaults(func=_cmd_lint)

    plan = sub.add_parser("plan", help="in-situ vs cloud deployment economics")
    plan.add_argument("--gb-per-day", type=float, required=True)
    plan.add_argument("--sunshine", type=float, default=0.7)
    plan.add_argument("--days", type=float, default=365.0)
    plan.set_defaults(func=_cmd_plan)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
