"""Series/parallel battery-array reconfiguration.

Figure 6 of the paper: three power switches (P1, P2, P3) let the PLC wire
the battery cabinets either in parallel (shared 24 V bus, summed
ampere-hours) or in series (summed voltage, shared current) — "different
voltage outputs and ampere-hour ratings to servers".  A higher string
voltage halves the bus current for the same power, which both reduces
ohmic distribution losses and moves the DC/DC converter to a more
efficient operating point.

This module models the electrical consequences of a chosen topology and
validates its safety rules; the relay actuation itself lives in
:mod:`repro.power.relays`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.battery.unit import BatteryUnit


class Topology(enum.Enum):
    """Wiring of the cabinets on the output bus."""

    PARALLEL = "parallel"
    SERIES = "series"


class TopologyError(RuntimeError):
    """Raised for electrically unsafe array configurations."""


#: Series strings with SoC spread beyond this are refused: the weakest
#: cabinet would be over-discharged (it carries the full string current).
MAX_SERIES_SOC_SPREAD = 0.15


@dataclass(frozen=True)
class ArrayRating:
    """Electrical rating of a configured array."""

    topology: Topology
    output_voltage: float
    capacity_ah: float
    max_discharge_a: float

    @property
    def energy_wh(self) -> float:
        return self.output_voltage * self.capacity_ah

    @property
    def max_power_w(self) -> float:
        return self.output_voltage * self.max_discharge_a


class ReconfigurableArray:
    """P1/P2/P3-style topology selection over a set of cabinets."""

    def __init__(self, units: list[BatteryUnit]) -> None:
        if not units:
            raise ValueError("an array needs at least one cabinet")
        voltages = {u.params.nominal_voltage for u in units}
        if len(voltages) != 1:
            raise TopologyError(
                f"cabinets have mixed nominal voltages: {sorted(voltages)}"
            )
        capacities = {u.params.capacity_ah for u in units}
        if len(capacities) != 1:
            raise TopologyError(
                f"cabinets have mixed capacities: {sorted(capacities)}"
            )
        self.units = list(units)
        self.topology = Topology.PARALLEL

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, topology: Topology, dt_seconds: float = 5.0) -> ArrayRating:
        """Select a topology; validates and returns the resulting rating."""
        if topology is Topology.SERIES:
            socs = [u.soc for u in self.units]
            spread = max(socs) - min(socs)
            if spread > MAX_SERIES_SOC_SPREAD:
                raise TopologyError(
                    f"series string refused: SoC spread {spread:.2f} exceeds "
                    f"{MAX_SERIES_SOC_SPREAD} (weakest cabinet would be "
                    "over-discharged)"
                )
        self.topology = topology
        return self.rating(dt_seconds)

    def rating(self, dt_seconds: float = 5.0) -> ArrayRating:
        """Electrical rating under the current topology."""
        nominal = self.units[0].params.nominal_voltage
        per_unit_cap = self.units[0].params.capacity_ah
        per_unit_max_a = min(
            u.max_discharge_current(dt_seconds) for u in self.units
        )
        if self.topology is Topology.PARALLEL:
            return ArrayRating(
                topology=self.topology,
                output_voltage=nominal,
                capacity_ah=per_unit_cap * len(self.units),
                max_discharge_a=sum(
                    u.max_discharge_current(dt_seconds) for u in self.units
                ),
            )
        return ArrayRating(
            topology=self.topology,
            output_voltage=nominal * len(self.units),
            capacity_ah=per_unit_cap,
            max_discharge_a=per_unit_max_a,
        )

    # ------------------------------------------------------------------
    # Electrical consequences
    # ------------------------------------------------------------------
    def bus_current_for(self, power_w: float, dt_seconds: float = 5.0) -> float:
        """Bus current needed to deliver ``power_w`` under this topology."""
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        rating = self.rating(dt_seconds)
        if rating.output_voltage <= 0:
            raise TopologyError("array has no output voltage")
        return power_w / rating.output_voltage

    def distribution_loss_w(
        self,
        power_w: float,
        wiring_resistance_ohm: float = 0.02,
        dt_seconds: float = 5.0,
    ) -> float:
        """I²R loss in the distribution wiring for a given delivery.

        The series topology's headline benefit: at the same power, a
        doubled string voltage quarters the wiring loss.
        """
        current = self.bus_current_for(power_w, dt_seconds)
        return current * current * wiring_resistance_ohm

    def preferred_topology_for(self, power_w: float, dt_seconds: float = 5.0) -> Topology:
        """Topology minimising distribution loss while staying deliverable."""
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        original = self.topology
        best: tuple[float, Topology] | None = None
        try:
            for topology in (Topology.PARALLEL, Topology.SERIES):
                try:
                    self.configure(topology, dt_seconds)
                except TopologyError:
                    continue
                rating = self.rating(dt_seconds)
                if rating.max_power_w < power_w:
                    continue
                loss = self.distribution_loss_w(power_w, dt_seconds=dt_seconds)
                if best is None or loss < best[0]:
                    best = (loss, topology)
        finally:
            self.topology = original
        if best is None:
            raise TopologyError(
                f"no topology can deliver {power_w:.0f} W from this array"
            )
        return best[1]
