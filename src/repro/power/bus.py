"""Power bus: per-tick resolution of solar / battery / server flows.

Order of precedence each tick (matching the prototype's wiring):

1. Solar serves the server load directly (through the DC/DC converter).
2. Any deficit is drawn from the cabinets attached to the load bus,
   split across them in proportion to their deliverable current.
3. Any surplus goes to the charger for the cabinets attached to the
   charge bus; leftover is curtailed.
4. If the online cabinets cannot cover the deficit, the shortfall is
   reported as *unserved* power — the condition that forces emergency
   load shedding upstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.bank import BatteryBank
from repro.battery.charger import SolarCharger
from repro.battery.unit import BatteryMode, BatteryUnit
from repro.power.converters import DCDCConverter
from repro.power.relays import SwitchNetwork


@dataclass(frozen=True, slots=True)
class BusReport:
    """Outcome of one bus resolution tick (all in watts at the PV bus)."""

    demand_w: float
    solar_available_w: float
    solar_to_load_w: float
    battery_to_load_w: float
    unserved_w: float
    charge_power_w: float
    curtailed_w: float

    @property
    def served_w(self) -> float:
        return self.solar_to_load_w + self.battery_to_load_w

    @property
    def solar_utilisation(self) -> float:
        """Fraction of the available solar budget put to work."""
        if self.solar_available_w <= 0:
            return 0.0
        return (self.solar_to_load_w + self.charge_power_w) / self.solar_available_w


class PowerBus:
    """Resolves power flows between the solar field, e-Buffer and servers."""

    def __init__(
        self,
        bank: BatteryBank,
        charger: SolarCharger | None = None,
        converter: DCDCConverter | None = None,
        switchnet: SwitchNetwork | None = None,
    ) -> None:
        """With a ``switchnet``, bus attachment follows the *relay*
        contacts — the electrical truth — so a stuck relay overrides
        whatever mode the controller believes a cabinet is in.  Without
        one, controller modes are trusted directly (unit-test shortcut).
        """
        self.bank = bank
        self.charger = charger or SolarCharger()
        self.converter = converter or DCDCConverter()
        self.switchnet = switchnet
        self.last_report = BusReport(0, 0, 0, 0, 0, 0, 0)
        self._units_by_name = {unit.name: unit for unit in bank}
        #: Cumulative energy accounting (Wh at the PV bus unless noted).
        #: Pure bookkeeping read by the obs energy ledger — nothing feeds
        #: back into the resolution, so same-seed traces are unaffected.
        self.e_solar_wh = 0.0
        self.e_solar_to_load_wh = 0.0
        self.e_battery_to_load_wh = 0.0
        self.e_unserved_wh = 0.0
        self.e_charge_bus_wh = 0.0
        #: Charge energy measured at the battery terminals (after charger
        #: conversion and per-string overhead; float trickle approximated
        #: at the charger's conversion efficiency).
        self.e_charge_terminal_wh = 0.0
        self.e_curtailed_wh = 0.0
        #: Bus-side server demand (wall demand through the DC/DC converter).
        self.e_demand_bus_wh = 0.0
        #: Wall-side server demand as requested from the bus.
        self.e_server_wall_wh = 0.0

    def _on_load_bus(self) -> list[BatteryUnit]:
        if self.switchnet is None:
            return self.bank.in_mode(BatteryMode.DISCHARGING, BatteryMode.STANDBY)
        return [self._units_by_name[n] for n in self.switchnet.on_bus("load")]

    def _on_charge_bus(self) -> list[BatteryUnit]:
        if self.switchnet is None:
            return self.bank.in_mode(BatteryMode.CHARGING)
        return [self._units_by_name[n] for n in self.switchnet.on_bus("charge")]

    def resolve(
        self,
        solar_w: float,
        server_demand_w: float,
        dt_seconds: float,
        float_standby: bool = True,
    ) -> BusReport:
        """Resolve one tick of power flow; steps every battery exactly once."""
        if solar_w < 0:
            raise ValueError("solar_w must be non-negative")
        if server_demand_w < 0:
            raise ValueError("server_demand_w must be non-negative")

        demand_bus = self.converter.input_for(server_demand_w) if server_demand_w > 0 else 0.0

        solar_to_load = min(solar_w, demand_bus)
        deficit = demand_bus - solar_to_load
        surplus = solar_w - solar_to_load

        # --- Discharge path -------------------------------------------------
        discharging = self._on_load_bus()
        battery_to_load = 0.0
        touched: set[BatteryUnit] = set()
        if deficit > 0 and discharging:
            battery_to_load = self._discharge(discharging, deficit, dt_seconds)
            touched.update(discharging)
        unserved = max(0.0, deficit - battery_to_load)

        # --- Charge path ----------------------------------------------------
        charging = self._on_charge_bus()
        charge_power = 0.0
        charge_terminal = 0.0
        if charging:
            result = self.charger.step(charging, surplus, dt_seconds)
            charge_power = result.power_used_w
            charge_terminal = result.terminal_power_w
            touched.update(charging)
        curtailed = max(0.0, surplus - charge_power)

        # --- Float / idle ---------------------------------------------------
        for unit in self.bank.units:
            if unit in touched:
                continue
            if float_standby and unit.mode is BatteryMode.STANDBY and curtailed > 1.0:
                used = self.charger.float_step([unit], dt_seconds)
                take = min(used, curtailed)
                curtailed -= take
                charge_power += take
                charge_terminal += take * self.charger.efficiency
            else:
                unit.idle(dt_seconds)

        dt_h = dt_seconds / 3600.0
        self.e_solar_wh += solar_w * dt_h
        self.e_solar_to_load_wh += solar_to_load * dt_h
        self.e_battery_to_load_wh += battery_to_load * dt_h
        self.e_unserved_wh += unserved * dt_h
        self.e_charge_bus_wh += charge_power * dt_h
        self.e_charge_terminal_wh += charge_terminal * dt_h
        self.e_curtailed_wh += curtailed * dt_h
        self.e_demand_bus_wh += demand_bus * dt_h
        self.e_server_wall_wh += server_demand_w * dt_h

        self.last_report = BusReport(
            demand_w=demand_bus,
            solar_available_w=solar_w,
            solar_to_load_w=solar_to_load,
            battery_to_load_w=battery_to_load,
            unserved_w=unserved,
            charge_power_w=charge_power,
            curtailed_w=curtailed,
        )
        return self.last_report

    def _discharge(
        self,
        units: list[BatteryUnit],
        deficit_w: float,
        dt_seconds: float,
    ) -> float:
        """Split ``deficit_w`` across parallel units by deliverable current."""
        capabilities = []
        total_capability = 0.0
        for unit in units:
            amps = unit.max_discharge_current(dt_seconds)
            volts = unit.terminal_voltage
            watts = amps * volts
            capabilities.append((unit, amps, volts, watts))
            total_capability += watts
        if total_capability <= 0.0:
            for unit in units:
                unit.idle(dt_seconds)
            return 0.0

        target = min(deficit_w, total_capability)
        delivered = 0.0
        for unit, amps, volts, watts in capabilities:
            share_w = target * (watts / total_capability)
            if share_w <= 0.0 or volts <= 0.0:
                unit.idle(dt_seconds)
                continue
            request_amps = min(share_w / volts, amps)
            got_amps = unit.apply_discharge(request_amps, dt_seconds)
            delivered += got_amps * volts
        return delivered
