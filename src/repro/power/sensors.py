"""Voltage and current transducers.

The prototype instrumented every battery with a CR Magnetics CR5310
voltage transducer (input 0-50 V DC) and an HCS 20-10 current transducer,
sampled by the PLC's analog input modules.  We model the measurement chain
as: range clipping → multiplicative gain error → additive Gaussian noise →
ADC quantisation.  Controllers therefore act on *sensed* values, never the
true plant state.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


class Transducer:
    """Generic measurement channel.

    Parameters
    ----------
    source:
        Callable returning the true physical value.
    lo, hi:
        Input measurement range; values outside are clipped.
    gain_error:
        Fixed per-device relative gain error, drawn at build time in
        calibrated hardware; pass 0 for an ideal sensor.
    noise_std:
        Standard deviation of additive noise, in engineering units.
    resolution_bits:
        ADC resolution of the PLC analog module over [lo, hi].
    rng:
        Random generator for noise; None disables noise.
    """

    def __init__(
        self,
        source: Callable[[], float],
        lo: float,
        hi: float,
        gain_error: float = 0.0,
        noise_std: float = 0.0,
        resolution_bits: int = 12,
        rng: np.random.Generator | None = None,
    ) -> None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if resolution_bits < 1 or resolution_bits > 24:
            raise ValueError("resolution_bits must be in [1, 24]")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.source = source
        self.lo = lo
        self.hi = hi
        self.gain = 1.0 + gain_error
        self.noise_std = noise_std
        self.levels = 2**resolution_bits - 1
        self.rng = rng
        # Noise draws come from a pre-drawn block of standard normals,
        # scaled by noise_std at read time.  ``normal(0, s)`` is bitwise
        # ``s * standard_normal()`` and batch draws consume the generator
        # identically to scalar ones, so the sample stream is unchanged.
        self._noise_buf: list[float] = []
        self._noise_pos = 0

    def read(self) -> float:
        """One sample through the full measurement chain."""
        value = self.source() * self.gain
        if self.rng is not None and self.noise_std > 0.0:
            pos = self._noise_pos
            buf = self._noise_buf
            if pos >= len(buf):
                buf = self._noise_buf = self.rng.standard_normal(256).tolist()
                pos = 0
            self._noise_pos = pos + 1
            value += self.noise_std * buf[pos]
        lo = self.lo
        hi = self.hi
        if value < lo:
            value = lo
        elif value > hi:
            value = hi
        span = hi - lo
        levels = self.levels
        code = round((value - lo) / span * levels)
        return lo + code * span / levels


class VoltageTransducer(Transducer):
    """CR5310-style DC voltage channel: 0-50 V input range."""

    def __init__(
        self,
        source: Callable[[], float],
        noise_std: float = 0.03,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(source, lo=0.0, hi=50.0, noise_std=noise_std, rng=rng)


class CurrentTransducer(Transducer):
    """HCS-style DC current channel: +/-25 A input range."""

    def __init__(
        self,
        source: Callable[[], float],
        noise_std: float = 0.05,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(source, lo=-25.0, hi=25.0, noise_std=noise_std, rng=rng)
