"""Modbus-style register map and frame codec.

The prototype's control panel spoke Modbus TCP between the PLC and the
coordination server.  We implement the register abstraction functionally:
a :class:`ModbusSlave` holds 16-bit holding/input registers, and a
:class:`ModbusMaster` exchanges encoded frames with it.  Frames carry a
CRC16 so the codec round-trip is genuinely exercised; scaled fixed-point
encoding helpers mirror how analog readings are packed into registers.
"""

from __future__ import annotations

import struct


class ModbusError(RuntimeError):
    """Protocol violation: bad CRC, bad function code, or bad address."""


def crc16(data: bytes) -> int:
    """Modbus RTU CRC-16 (polynomial 0xA001)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA001
            else:
                crc >>= 1
    return crc


READ_HOLDING = 0x03
READ_INPUT = 0x04
WRITE_SINGLE = 0x06
WRITE_MULTIPLE = 0x10


def encode_fixed(value: float, scale: float = 100.0) -> int:
    """Pack a float into a signed 16-bit register with fixed-point scale."""
    raw = round(value * scale)
    if not -32768 <= raw <= 32767:
        raise ModbusError(f"value {value} does not fit a 16-bit register at scale {scale}")
    return raw & 0xFFFF

def decode_fixed(register: int, scale: float = 100.0) -> float:
    """Unpack a signed 16-bit fixed-point register."""
    if not 0 <= register <= 0xFFFF:
        raise ModbusError(f"register value out of range: {register}")
    raw = register - 0x10000 if register >= 0x8000 else register
    return raw / scale


class ModbusSlave:
    """A register bank addressed by a unit id (the PLC side)."""

    def __init__(self, unit_id: int = 1, size: int = 256) -> None:
        if not 0 <= unit_id <= 247:
            raise ValueError("unit_id must be in [0, 247]")
        if size <= 0:
            raise ValueError("size must be positive")
        self.unit_id = unit_id
        self.holding = [0] * size
        self.input = [0] * size

    def set_input(self, address: int, value: int) -> None:
        self._check(address, self.input)
        self.input[address] = value & 0xFFFF

    def set_holding(self, address: int, value: int) -> None:
        self._check(address, self.holding)
        self.holding[address] = value & 0xFFFF

    def get_holding(self, address: int) -> int:
        self._check(address, self.holding)
        return self.holding[address]

    def _check(self, address: int, bank: list[int]) -> None:
        if not 0 <= address < len(bank):
            raise ModbusError(f"register address out of range: {address}")

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def handle(self, frame: bytes) -> bytes:
        """Process a request frame and return the response frame."""
        if len(frame) < 4:
            raise ModbusError("frame too short")
        body, crc_bytes = frame[:-2], frame[-2:]
        if struct.unpack("<H", crc_bytes)[0] != crc16(body):
            raise ModbusError("bad CRC")
        unit, function = body[0], body[1]
        if unit != self.unit_id:
            raise ModbusError(f"wrong unit id {unit}, expected {self.unit_id}")

        if function in (READ_HOLDING, READ_INPUT):
            address, count = struct.unpack(">HH", body[2:6])
            bank = self.holding if function == READ_HOLDING else self.input
            if address + count > len(bank) or count == 0:
                raise ModbusError("read beyond register bank")
            values = bank[address:address + count]
            payload = struct.pack("B", 2 * count) + b"".join(
                struct.pack(">H", v) for v in values
            )
            response = struct.pack("BB", unit, function) + payload
        elif function == WRITE_SINGLE:
            address, value = struct.unpack(">HH", body[2:6])
            self.set_holding(address, value)
            response = body  # echo per spec
        elif function == WRITE_MULTIPLE:
            address, count = struct.unpack(">HH", body[2:6])
            byte_count = body[6]
            if byte_count != 2 * count:
                raise ModbusError("byte count mismatch")
            for i in range(count):
                value = struct.unpack(">H", body[7 + 2 * i: 9 + 2 * i])[0]
                self.set_holding(address + i, value)
            response = struct.pack("BB", unit, function) + struct.pack(">HH", address, count)
        else:
            raise ModbusError(f"unsupported function 0x{function:02x}")

        return response + struct.pack("<H", crc16(response))


class ModbusMaster:
    """The coordination-node side: builds requests, parses responses."""

    def __init__(self, slave: ModbusSlave) -> None:
        self.slave = slave

    def _transact(self, body: bytes) -> bytes:
        frame = body + struct.pack("<H", crc16(body))
        response = self.slave.handle(frame)
        resp_body, crc_bytes = response[:-2], response[-2:]
        if struct.unpack("<H", crc_bytes)[0] != crc16(resp_body):
            raise ModbusError("bad CRC in response")
        return resp_body

    def read_holding(self, address: int, count: int = 1) -> list[int]:
        body = struct.pack("BB", self.slave.unit_id, READ_HOLDING) + struct.pack(
            ">HH", address, count
        )
        resp = self._transact(body)
        byte_count = resp[2]
        return [
            struct.unpack(">H", resp[3 + 2 * i: 5 + 2 * i])[0]
            for i in range(byte_count // 2)
        ]

    def read_input(self, address: int, count: int = 1) -> list[int]:
        body = struct.pack("BB", self.slave.unit_id, READ_INPUT) + struct.pack(
            ">HH", address, count
        )
        resp = self._transact(body)
        byte_count = resp[2]
        return [
            struct.unpack(">H", resp[3 + 2 * i: 5 + 2 * i])[0]
            for i in range(byte_count // 2)
        ]

    def write_holding(self, address: int, value: int) -> None:
        body = struct.pack("BB", self.slave.unit_id, WRITE_SINGLE) + struct.pack(
            ">HH", address, value & 0xFFFF
        )
        self._transact(body)

    def write_many(self, address: int, values: list[int]) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        body = (
            struct.pack("BB", self.slave.unit_id, WRITE_MULTIPLE)
            + struct.pack(">HH", address, len(values))
            + struct.pack("B", 2 * len(values))
            + b"".join(struct.pack(">H", v & 0xFFFF) for v in values)
        )
        self._transact(body)
