"""Modbus-style register map and frame codec.

The prototype's control panel spoke Modbus TCP between the PLC and the
coordination server.  We implement the register abstraction functionally:
a :class:`ModbusSlave` holds 16-bit holding/input registers, and a
:class:`ModbusMaster` exchanges encoded frames with it.  Frames carry a
CRC16 so the codec round-trip is genuinely exercised; scaled fixed-point
encoding helpers mirror how analog readings are packed into registers.
"""

from __future__ import annotations

import struct


class ModbusError(RuntimeError):
    """Protocol violation: bad CRC, bad function code, or bad address."""


def _build_crc16_table() -> tuple[int, ...]:
    table = []
    for value in range(256):
        crc = value
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA001
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


#: Precomputed byte table for the 0xA001 polynomial — identical output to
#: the bitwise loop, one lookup per byte instead of eight shifts.
_CRC16_TABLE = _build_crc16_table()


def crc16(data: bytes) -> int:
    """Modbus RTU CRC-16 (polynomial 0xA001)."""
    crc = 0xFFFF
    table = _CRC16_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc


READ_HOLDING = 0x03
READ_INPUT = 0x04
WRITE_SINGLE = 0x06
WRITE_MULTIPLE = 0x10


def encode_fixed(value: float, scale: float = 100.0) -> int:
    """Pack a float into a signed 16-bit register with fixed-point scale."""
    raw = round(value * scale)
    if not -32768 <= raw <= 32767:
        raise ModbusError(f"value {value} does not fit a 16-bit register at scale {scale}")
    return raw & 0xFFFF

def decode_fixed(register: int, scale: float = 100.0) -> float:
    """Unpack a signed 16-bit fixed-point register."""
    if not 0 <= register <= 0xFFFF:
        raise ModbusError(f"register value out of range: {register}")
    raw = register - 0x10000 if register >= 0x8000 else register
    return raw / scale


class ModbusSlave:
    """A register bank addressed by a unit id (the PLC side)."""

    def __init__(self, unit_id: int = 1, size: int = 256) -> None:
        if not 0 <= unit_id <= 247:
            raise ValueError("unit_id must be in [0, 247]")
        if size <= 0:
            raise ValueError("size must be positive")
        self.unit_id = unit_id
        self.holding = [0] * size
        self.input = [0] * size
        #: Validated read requests, keyed by the exact frame bytes.  Polling
        #: masters repeat identical frames every control period; equal bytes
        #: parse (and CRC-check) to the same result, so validate each
        #: distinct frame once.
        self._read_requests: dict[bytes, tuple[int, int, int]] = {}

    def set_input(self, address: int, value: int) -> None:
        self._check(address, self.input)
        self.input[address] = value & 0xFFFF

    def set_holding(self, address: int, value: int) -> None:
        self._check(address, self.holding)
        self.holding[address] = value & 0xFFFF

    def get_holding(self, address: int) -> int:
        self._check(address, self.holding)
        return self.holding[address]

    def _check(self, address: int, bank: list[int]) -> None:
        if not 0 <= address < len(bank):
            raise ModbusError(f"register address out of range: {address}")

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def handle(self, frame: bytes) -> bytes:
        """Process a request frame and return the response frame."""
        parsed = self._read_requests.get(frame)
        if parsed is not None:
            unit, function, address, count = self.unit_id, *parsed
            bank = self.holding if function == READ_HOLDING else self.input
            values = bank[address:address + count]
            response = struct.pack(
                f">BBB{count}H", unit, function, 2 * count, *values
            )
            return response + struct.pack("<H", crc16(response))

        if len(frame) < 4:
            raise ModbusError("frame too short")
        body, crc_bytes = frame[:-2], frame[-2:]
        if struct.unpack("<H", crc_bytes)[0] != crc16(body):
            raise ModbusError("bad CRC")
        unit, function = body[0], body[1]
        if unit != self.unit_id:
            raise ModbusError(f"wrong unit id {unit}, expected {self.unit_id}")

        if function in (READ_HOLDING, READ_INPUT):
            address, count = struct.unpack(">HH", body[2:6])
            bank = self.holding if function == READ_HOLDING else self.input
            if address + count > len(bank) or count == 0:
                raise ModbusError("read beyond register bank")
            if len(self._read_requests) < 64:
                self._read_requests[bytes(frame)] = (function, address, count)
            values = bank[address:address + count]
            response = struct.pack(
                f">BBB{count}H", unit, function, 2 * count, *values
            )
        elif function == WRITE_SINGLE:
            address, value = struct.unpack(">HH", body[2:6])
            self.set_holding(address, value)
            response = body  # echo per spec
        elif function == WRITE_MULTIPLE:
            address, count = struct.unpack(">HH", body[2:6])
            byte_count = body[6]
            if byte_count != 2 * count:
                raise ModbusError("byte count mismatch")
            for i in range(count):
                value = struct.unpack(">H", body[7 + 2 * i: 9 + 2 * i])[0]
                self.set_holding(address + i, value)
            response = struct.pack("BB", unit, function) + struct.pack(">HH", address, count)
        else:
            raise ModbusError(f"unsupported function 0x{function:02x}")

        return response + struct.pack("<H", crc16(response))


class ModbusMaster:
    """The coordination-node side: builds requests, parses responses."""

    def __init__(self, slave: ModbusSlave) -> None:
        self.slave = slave
        #: Read-request frames are a pure function of (function, address,
        #: count); polling loops issue the same reads every control period,
        #: so encode (and CRC) each distinct request once.
        self._request_frames: dict[tuple[int, int, int], bytes] = {}
        self._word_formats: dict[int, str] = {}

    def _transact(self, body: bytes) -> bytes:
        frame = body + struct.pack("<H", crc16(body))
        return self._transact_frame(frame)

    def _transact_frame(self, frame: bytes) -> bytes:
        response = self.slave.handle(frame)
        resp_body, crc_bytes = response[:-2], response[-2:]
        if struct.unpack("<H", crc_bytes)[0] != crc16(resp_body):
            raise ModbusError("bad CRC in response")
        return resp_body

    def _read_frame(self, function: int, address: int, count: int) -> bytes:
        key = (function, address, count)
        frame = self._request_frames.get(key)
        if frame is None:
            body = struct.pack(">BBHH", self.slave.unit_id, function, address, count)
            frame = body + struct.pack("<H", crc16(body))
            self._request_frames[key] = frame
        return frame

    def _read(self, function: int, address: int, count: int) -> list[int]:
        resp = self._transact_frame(self._read_frame(function, address, count))
        words = resp[2] // 2
        fmt = self._word_formats.get(words)
        if fmt is None:
            fmt = self._word_formats[words] = f">{words}H"
        return list(struct.unpack_from(fmt, resp, 3))

    def read_holding(self, address: int, count: int = 1) -> list[int]:
        return self._read(READ_HOLDING, address, count)

    def read_input(self, address: int, count: int = 1) -> list[int]:
        return self._read(READ_INPUT, address, count)

    def write_holding(self, address: int, value: int) -> None:
        body = struct.pack("BB", self.slave.unit_id, WRITE_SINGLE) + struct.pack(
            ">HH", address, value & 0xFFFF
        )
        self._transact(body)

    def write_many(self, address: int, values: list[int]) -> None:
        if not values:
            raise ValueError("values must be non-empty")
        body = (
            struct.pack("BB", self.slave.unit_id, WRITE_MULTIPLE)
            + struct.pack(">HH", address, len(values))
            + struct.pack("B", 2 * len(values))
            + b"".join(struct.pack(">H", v & 0xFFFF) for v in values)
        )
        self._transact(body)
