"""Secondary power sources.

Figure 6 of the paper notes that, although InSURE targets standalone
operation, the architecture "also supports a secondary power (if
available)".  This module provides a diesel backup generator and a hybrid
source that starts it only when the renewable side is exhausted — so the
benchmarks can quantify what a backup buys (uptime) and costs (fuel,
carbon) on bad-weather days.
"""

from __future__ import annotations

from repro.sim.clock import Clock
from repro.sim.component import Component
from repro.sim.events import EventLog


class DieselGenerator(Component):
    """Backup genset with startup delay, minimum runtime and fuel ledger.

    Parameters
    ----------
    rated_w:
        Continuous output rating.
    startup_s:
        Crank-to-stable time; output is zero while starting.
    min_runtime_s:
        Once started, the genset must run at least this long (thermal
        cycling protection) before a stop request takes effect.
    litres_per_kwh:
        Specific fuel consumption (small gensets: ~0.4-0.5 l/kWh).
    """

    def __init__(
        self,
        name: str = "genset",
        rated_w: float = 2000.0,
        startup_s: float = 20.0,
        min_runtime_s: float = 900.0,
        litres_per_kwh: float = 0.45,
        events: EventLog | None = None,
    ) -> None:
        super().__init__(name)
        if rated_w <= 0:
            raise ValueError("rated_w must be positive")
        if startup_s < 0 or min_runtime_s < 0:
            raise ValueError("times must be non-negative")
        if litres_per_kwh <= 0:
            raise ValueError("litres_per_kwh must be positive")
        self.rated_w = rated_w
        self.startup_s = startup_s
        self.min_runtime_s = min_runtime_s
        self.litres_per_kwh = litres_per_kwh
        self.events = events
        self.running = False
        self.requested = False
        self._since_start = 0.0
        self._starting_left = 0.0
        self.output_w = 0.0
        self.fuel_litres = 0.0
        self.runtime_s = 0.0
        self.starts = 0

    def request(self, on: bool, t: float = 0.0) -> None:
        """Ask the genset to run (or stop); honoured per its constraints."""
        if on and not self.requested:
            self.requested = True
            if not self.running:
                self._starting_left = self.startup_s
                self.starts += 1
                if self.events is not None:
                    self.events.emit(t, "genset.start", self.name)
        elif not on:
            self.requested = False

    def step(self, clock: Clock) -> None:
        dt = clock.dt
        if self.requested and not self.running:
            self._starting_left -= dt
            if self._starting_left <= 0.0:
                self.running = True
                self._since_start = 0.0
        elif self.running:
            self._since_start += dt
            if not self.requested and self._since_start >= self.min_runtime_s:
                self.running = False
                if self.events is not None:
                    self.events.emit(clock.t, "genset.stop", self.name)

        self.output_w = self.rated_w if self.running else 0.0
        if self.running:
            self.runtime_s += dt
            self.fuel_litres += (
                self.rated_w / 1000.0 * dt / 3600.0
            ) * self.litres_per_kwh

    @property
    def fuel_cost_usd(self) -> float:
        """Fuel spend at the paper's $4/gallon diesel price."""
        return self.fuel_litres / 3.785 * 4.0


class HybridSource(Component):
    """Solar-first source with a diesel backup behind a policy.

    The generator is requested when the *observed* renewable budget falls
    below ``start_below_w`` and released when it recovers past
    ``stop_above_w`` (hysteresis).  Exposes the combined
    ``available_power_w`` so it drops into :func:`build_system` wherever a
    trace player would.
    """

    def __init__(
        self,
        name: str,
        primary,
        generator: DieselGenerator,
        start_below_w: float = 150.0,
        stop_above_w: float = 400.0,
    ) -> None:
        super().__init__(name)
        if stop_above_w <= start_below_w:
            raise ValueError("stop_above_w must exceed start_below_w")
        self.primary = primary
        self.generator = generator
        self.start_below_w = start_below_w
        self.stop_above_w = stop_above_w
        self.available_power_w = 0.0

    def step(self, clock: Clock) -> None:
        self.primary.step(clock)
        solar = self.primary.available_power_w
        if solar < self.start_below_w:
            self.generator.request(True, clock.t)
        elif solar > self.stop_above_w:
            self.generator.request(False, clock.t)
        self.generator.step(clock)
        self.available_power_w = solar + self.generator.output_w
