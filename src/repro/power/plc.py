"""Programmable logic controller host.

The PLC scans its analog input modules on a fixed cycle, stores readings
in input registers (fixed-point encoded), and executes a control program
that may drive the relay network and update holding registers.  The
coordination node reads those registers over the Modbus layer.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.power.modbus import ModbusError, ModbusSlave, encode_fixed
from repro.power.sensors import Transducer
from repro.sim.clock import Clock
from repro.sim.component import Component

ControlProgram = Callable[[Clock, "ProgrammableLogicController"], None]


class AnalogInputModule:
    """One PLC extension module mapping transducers to input registers."""

    def __init__(self, base_address: int, channels: int = 4) -> None:
        if base_address < 0:
            raise ValueError("base_address must be non-negative")
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.base_address = base_address
        self.capacity = channels
        self._channels: list[tuple[int, Transducer, float]] = []

    def bind(self, channel: int, transducer: Transducer, scale: float = 100.0) -> None:
        """Wire a transducer to a channel slot."""
        if not 0 <= channel < self.capacity:
            raise ValueError(f"channel {channel} out of range (0..{self.capacity - 1})")
        if any(c == channel for c, _, _ in self._channels):
            raise ValueError(f"channel {channel} already bound")
        self._channels.append((channel, transducer, scale))

    def scan(self, slave: ModbusSlave) -> None:
        """Sample every bound channel into the slave's input registers."""
        for channel, transducer, scale in self._channels:
            value = transducer.read()
            slave.set_input(self.base_address + channel, encode_fixed(value, scale))


class ProgrammableLogicController(Component):
    """Scan-cycle PLC with analog modules and an optional control program.

    Parameters
    ----------
    name:
        Component name.
    scan_period_s:
        Scan cycle length; readings and program execution happen at this
        cadence, not every simulation tick.
    """

    def __init__(
        self,
        name: str = "plc",
        scan_period_s: float = 0.5,
        unit_id: int = 1,
    ) -> None:
        super().__init__(name)
        if scan_period_s <= 0:
            raise ValueError("scan_period_s must be positive")
        self.scan_period_s = scan_period_s
        self.slave = ModbusSlave(unit_id=unit_id)
        self.modules: list[AnalogInputModule] = []
        self.program: ControlProgram | None = None
        self._since_scan = float("inf")  # force a scan on the first step
        self.scan_count = 0
        #: Flattened (address, read, scale) scan plan over all modules,
        #: rebuilt whenever the channel population changes.
        self._scan_plan: list[tuple[int, Callable[[], float], float]] = []
        self._scan_plan_size = -1

    def add_module(self, module: AnalogInputModule) -> AnalogInputModule:
        for existing in self.modules:
            overlap = range(
                max(existing.base_address, module.base_address),
                min(
                    existing.base_address + existing.capacity,
                    module.base_address + module.capacity,
                ),
            )
            if len(overlap) > 0:
                raise ValueError("analog module register ranges overlap")
        self.modules.append(module)
        return module

    def set_program(self, program: ControlProgram) -> None:
        self.program = program

    def step(self, clock: Clock) -> None:
        self._since_scan += clock.dt
        if self._since_scan < self.scan_period_s:
            return
        self._since_scan = 0.0
        self.scan_count += 1
        size = sum(len(m._channels) for m in self.modules)
        if size != self._scan_plan_size:
            plan = [
                (module.base_address + channel, transducer.read, scale)
                for module in self.modules
                for channel, transducer, scale in module._channels
            ]
            # Validate the (static) register addresses once, so the scan
            # loop can write to the input bank directly.
            for address, _, _ in plan:
                self.slave._check(address, self.slave.input)
            self._scan_plan = plan
            self._scan_plan_size = size
        registers = self.slave.input
        for address, read, scale in self._scan_plan:
            value = read()
            raw = round(value * scale)
            if not -32768 <= raw <= 32767:
                raise ModbusError(
                    f"value {value} does not fit a 16-bit register at scale {scale}"
                )
            registers[address] = raw & 0xFFFF
        if self.program is not None:
            self.program(clock, self)
