"""DC/DC conversion and power distribution losses.

Conversion efficiency follows the familiar bathtub-inverted curve: poor at
very light load (fixed losses dominate), peaking in the 40-80 % band, and
sagging slightly at full load (ohmic losses).  The PDU adds a small fixed
overhead per powered server port.
"""

from __future__ import annotations


class DCDCConverter:
    """Loss model for the battery-bus to server-bus converter.

    Parameters
    ----------
    rated_w:
        Rated output power.
    peak_efficiency:
        Efficiency at the sweet spot (~50 % load).
    fixed_loss_w:
        No-load standby loss.
    """

    def __init__(
        self,
        rated_w: float = 2000.0,
        peak_efficiency: float = 0.955,
        fixed_loss_w: float = 12.0,
    ) -> None:
        if rated_w <= 0:
            raise ValueError("rated_w must be positive")
        if not 0.5 < peak_efficiency < 1.0:
            raise ValueError("peak_efficiency must be in (0.5, 1)")
        if fixed_loss_w < 0:
            raise ValueError("fixed_loss_w must be non-negative")
        self.rated_w = rated_w
        self.peak_efficiency = peak_efficiency
        self.fixed_loss_w = fixed_loss_w

    def efficiency(self, output_w: float) -> float:
        """Conversion efficiency when delivering ``output_w``."""
        if output_w <= 0:
            return 0.0
        load = min(output_w / self.rated_w, 1.2)
        # Proportional (ohmic) loss grows with the square of load.
        ohmic = 0.02 * load * load * self.rated_w
        losses = self.fixed_loss_w + ohmic
        base = output_w / (output_w + losses)
        return min(base, self.peak_efficiency)

    def input_for(self, output_w: float) -> float:
        """Input power required to deliver ``output_w``."""
        if output_w < 0:
            raise ValueError("output_w must be non-negative")
        if output_w < 1e-6:
            # Vanishing loads are dominated by the standby loss; also
            # guards the division (efficiency underflows to zero there).
            return self.fixed_loss_w
        return output_w / self.efficiency(output_w)


class PowerDistributionUnit:
    """Rack PDU with per-port overhead and capacity limit."""

    def __init__(self, ports: int = 8, port_overhead_w: float = 2.0,
                 capacity_w: float = 2400.0) -> None:
        if ports <= 0:
            raise ValueError("ports must be positive")
        if port_overhead_w < 0:
            raise ValueError("port_overhead_w must be non-negative")
        if capacity_w <= 0:
            raise ValueError("capacity_w must be positive")
        self.ports = ports
        self.port_overhead_w = port_overhead_w
        self.capacity_w = capacity_w

    def draw(self, server_loads_w: list[float]) -> float:
        """Total input draw for the given per-server loads.

        Raises if the PDU is over-subscribed (breaker limit) or has too few
        ports — provisioning errors the assembly should catch early.
        """
        if len(server_loads_w) > self.ports:
            raise ValueError(f"{len(server_loads_w)} servers > {self.ports} ports")
        total = 0.0
        active = 0
        for w in server_loads_w:
            if w > 0:
                total += w
                active += 1
        total += self.port_overhead_w * active
        if total > self.capacity_w:
            raise ValueError(
                f"PDU over capacity: {total:.0f} W > {self.capacity_w:.0f} W"
            )
        return total
