"""Power-delivery substrate: the path from PV bus to server PSUs.

Models the prototype's electrical plumbing: IDEC relay pairs and the
reconfigurable switch network, CR Magnetics voltage/current transducers
sampled by Siemens PLC analog modules, a Modbus-TCP-style register codec
linking the PLC to the coordination node, DC/DC conversion losses, and the
power bus that resolves solar / battery / server flows every tick.

Controllers never touch the true plant state directly: they read sensed,
quantised values through the PLC register map, exactly as the prototype's
coordination node did over Modbus.
"""

from repro.power.bus import BusReport, PowerBus
from repro.power.converters import DCDCConverter, PowerDistributionUnit
from repro.power.modbus import ModbusError, ModbusMaster, ModbusSlave, crc16
from repro.power.plc import AnalogInputModule, ProgrammableLogicController
from repro.power.relays import Relay, RelayPair, SwitchNetwork
from repro.power.secondary import DieselGenerator, HybridSource
from repro.power.sensors import CurrentTransducer, VoltageTransducer
from repro.power.topology import ReconfigurableArray, Topology, TopologyError

__all__ = [
    "AnalogInputModule",
    "BusReport",
    "CurrentTransducer",
    "DCDCConverter",
    "DieselGenerator",
    "HybridSource",
    "ModbusError",
    "ModbusMaster",
    "ModbusSlave",
    "PowerBus",
    "PowerDistributionUnit",
    "ProgrammableLogicController",
    "ReconfigurableArray",
    "Relay",
    "RelayPair",
    "SwitchNetwork",
    "Topology",
    "TopologyError",
    "VoltageTransducer",
    "crc16",
]
