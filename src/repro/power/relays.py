"""Relay and switch-network models.

Each battery cabinet is managed by a pair of relays — a charging switch and
a discharging switch — mirroring the prototype's six IDEC RR2P 24 V DC
relays.  The relays have finite switching time (25 ms) and a rated
mechanical life (10 M cycles); the switch network enforces that a cabinet
is never simultaneously on the charge and discharge bus.
"""

from __future__ import annotations

from repro.sim.events import EventLog


class RelayError(RuntimeError):
    """Raised on electrically unsafe switching requests."""


class Relay:
    """A single relay contact.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"battery-1.charge"``.
    switching_time_s:
        Contact travel time; state changes are counted as actuations.
    rated_cycles:
        Mechanical life in actuation cycles.
    """

    def __init__(
        self,
        name: str,
        switching_time_s: float = 0.025,
        rated_cycles: int = 10_000_000,
    ) -> None:
        if switching_time_s < 0:
            raise ValueError("switching_time_s must be non-negative")
        if rated_cycles <= 0:
            raise ValueError("rated_cycles must be positive")
        self.name = name
        self.switching_time_s = switching_time_s
        self.rated_cycles = rated_cycles
        self.closed = False
        self.cycles = 0
        #: Fault injection: a stuck contact ignores coil commands.
        self.stuck = False

    def set(self, closed: bool) -> bool:
        """Drive the coil; returns True if the contact state changed."""
        if self.stuck or closed == self.closed:
            return False
        self.closed = closed
        self.cycles += 1
        return True

    def force_stick(self) -> None:
        """Inject a mechanical fault: the contact freezes in place."""
        self.stuck = True

    def repair(self) -> None:
        self.stuck = False

    @property
    def life_fraction_used(self) -> float:
        return min(1.0, self.cycles / self.rated_cycles)


class RelayPair:
    """The charge/discharge relay pair guarding one battery cabinet."""

    def __init__(self, battery_name: str) -> None:
        self.battery_name = battery_name
        self.charge = Relay(f"{battery_name}.charge")
        self.discharge = Relay(f"{battery_name}.discharge")

    def to_offline(self) -> int:
        """Open both contacts; returns actuation count."""
        return int(self.charge.set(False)) + int(self.discharge.set(False))

    def to_charging(self) -> int:
        """Connect to the charge bus only."""
        actuations = int(self.discharge.set(False))
        actuations += int(self.charge.set(True))
        return actuations

    def to_load(self) -> int:
        """Connect to the load (discharge) bus only."""
        actuations = int(self.charge.set(False))
        actuations += int(self.discharge.set(True))
        return actuations

    def validate(self) -> None:
        if self.charge.closed and self.discharge.closed:
            raise RelayError(
                f"{self.battery_name}: charge and discharge relays both closed"
            )

    @property
    def state(self) -> str:
        if self.charge.closed:
            return "charging"
        if self.discharge.closed:
            return "load"
        return "offline"


class SwitchNetwork:
    """All relay pairs plus actuation accounting.

    The network is the PLC's actuator: controllers request per-cabinet bus
    attachments and the network performs (and counts) the relay actuations,
    emitting ``relay.switch`` events used for Table 6's "Power Ctrl. Times".
    """

    def __init__(self, battery_names: list[str], events: EventLog | None = None) -> None:
        if not battery_names:
            raise ValueError("need at least one battery")
        self.pairs = {name: RelayPair(name) for name in battery_names}
        self.events = events
        self.total_actuations = 0
        #: Number of controller-visible switching operations (a mode change
        #: for one cabinet counts once, however many contacts moved).
        self.switch_operations = 0

    def attach(self, battery_name: str, bus: str, t: float = 0.0) -> int:
        """Attach ``battery_name`` to ``bus`` in {"offline","charge","load"}.

        Returns the number of relay actuations performed.
        """
        pair = self._pair(battery_name)
        if bus == "offline":
            actuations = pair.to_offline()
        elif bus == "charge":
            actuations = pair.to_charging()
        elif bus == "load":
            actuations = pair.to_load()
        else:
            raise ValueError(f"unknown bus {bus!r}")
        pair.validate()
        if actuations:
            self.total_actuations += actuations
            self.switch_operations += 1
            if self.events is not None:
                self.events.emit(t, "relay.switch", battery_name, bus=bus,
                                 actuations=actuations)
        return actuations

    def state_of(self, battery_name: str) -> str:
        return self._pair(battery_name).state

    def on_bus(self, bus: str) -> list[str]:
        """Names of cabinets currently attached to ``bus``."""
        # Inlined RelayPair.state tests (charge contact wins): this runs
        # twice per bus-resolution tick.
        pairs = self.pairs.items()
        if bus == "charge":
            return [n for n, p in pairs if p.charge.closed]
        if bus == "load":
            return [n for n, p in pairs if p.discharge.closed and not p.charge.closed]
        if bus == "offline":
            return [n for n, p in pairs if not p.charge.closed and not p.discharge.closed]
        raise ValueError(f"unknown bus {bus!r}")

    def _pair(self, battery_name: str) -> RelayPair:
        try:
            return self.pairs[battery_name]
        except KeyError:
            raise KeyError(f"no relay pair for {battery_name!r}") from None
