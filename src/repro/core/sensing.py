"""Battery sensing and state estimation.

The controller's view of the plant, built the way the prototype built it:
each cabinet's voltage and current transducers are scanned by PLC analog
modules into input registers; the coordination node reads the registers
over the Modbus layer and maintains per-battery estimates — coulomb-counted
state of charge (re-anchored from open-circuit voltage when the cabinet has
rested) and the aggregated discharge statistic AhT[i] that drives the
spatial manager's screening (Figure 9).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.battery.bank import BatteryBank
from repro.battery.unit import BatteryUnit
from repro.power.modbus import ModbusMaster, decode_fixed
from repro.power.plc import AnalogInputModule, ProgrammableLogicController
from repro.power.sensors import CurrentTransducer, VoltageTransducer
from repro.sim.rng import RandomStreams

#: Register layout: two registers per battery (voltage, current).
_REGS_PER_BATTERY = 2
_V_SCALE = 100.0   # 0.01 V resolution
_I_SCALE = 100.0   # 0.01 A resolution


@dataclass
class BatterySense:
    """Sensed and estimated state of one cabinet."""

    name: str
    voltage: float = 0.0
    current: float = 0.0  # positive = discharging
    soc_estimate: float = 1.0
    discharge_ah: float = 0.0  # the SPM usage statistic AhT[i]
    rest_seconds: float = 0.0

    @property
    def is_resting(self) -> bool:
        return abs(self.current) < 0.25


class BatteryTelemetry:
    """Sensing chain: transducers -> PLC registers -> Modbus -> estimates."""

    def __init__(
        self,
        bank: BatteryBank,
        plc: ProgrammableLogicController | None = None,
        streams: RandomStreams | None = None,
        initial_soc_known: bool = True,
        gain_error: float = 0.0,
    ) -> None:
        """``gain_error`` injects an uncalibrated-sensor fault: every
        transducer reads consistently high/low by that fraction."""
        self.bank = bank
        self.plc = plc or ProgrammableLogicController(scan_period_s=0.5)
        streams = streams or RandomStreams(0)
        #: Every transducer in register order, for fault injection
        #: (:meth:`set_gain_error`) without rebuilding the chain.
        self._sensors: list[VoltageTransducer | CurrentTransducer] = []

        for index, unit in enumerate(bank):
            module = AnalogInputModule(
                base_address=index * _REGS_PER_BATTERY, channels=_REGS_PER_BATTERY
            )
            rng_v = streams.stream(f"sense.{unit.name}.v")
            rng_i = streams.stream(f"sense.{unit.name}.i")
            v_sensor = VoltageTransducer(self._v_source(unit), rng=rng_v)
            i_sensor = CurrentTransducer(self._i_source(unit), rng=rng_i)
            v_sensor.gain = 1.0 + gain_error
            i_sensor.gain = 1.0 + gain_error
            module.bind(0, v_sensor, _V_SCALE)
            module.bind(1, i_sensor, _I_SCALE)
            self._sensors.extend((v_sensor, i_sensor))
            self.plc.add_module(module)

        self.master = ModbusMaster(self.plc.slave)
        self.senses = {
            unit.name: BatterySense(
                name=unit.name,
                soc_estimate=unit.soc if initial_soc_known else 1.0,
            )
            for unit in bank
        }
        #: (unit, sense) pairs in register order, for the refresh hot loop.
        self._rows = [(unit, self.senses[unit.name]) for unit in bank]

    def set_gain_error(self, gain_error: float) -> None:
        """Recalibrate every transducer to read off by ``gain_error``.

        The supported fault-injection path
        (:class:`repro.core.faults.SensorGainFault`): noise streams,
        register bindings and estimator state all stay in place.
        """
        for sensor in self._sensors:
            sensor.gain = 1.0 + gain_error

    @staticmethod
    def _v_source(unit: BatteryUnit) -> Callable[[], float]:
        return lambda: unit.terminal_voltage

    @staticmethod
    def _i_source(unit: BatteryUnit) -> Callable[[], float]:
        return lambda: unit.last_current

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def refresh(self, dt_seconds: float) -> dict[str, BatterySense]:
        """Read all registers and update estimates for one control period."""
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        count = len(self.bank) * _REGS_PER_BATTERY
        registers = self.master.read_input(0, count)
        base = 0
        for unit, sense in self._rows:
            sense.voltage = decode_fixed(registers[base], _V_SCALE)
            sense.current = decode_fixed(registers[base + 1], _I_SCALE)
            self._update_estimates(unit, sense, dt_seconds)
            base += _REGS_PER_BATTERY
        return self.senses

    def _update_estimates(self, unit: BatteryUnit, sense: BatterySense,
                          dt_seconds: float) -> None:
        capacity = unit.params.capacity_ah
        current = sense.current
        delta_ah = current * dt_seconds / 3600.0
        estimate = sense.soc_estimate - delta_ah / capacity
        if estimate < 0.0:
            estimate = 0.0
        elif estimate > 1.0:
            estimate = 1.0
        sense.soc_estimate = estimate
        if current > 0.25:
            sense.discharge_ah += delta_ah

        # Re-anchor from open-circuit voltage after a sustained rest, the
        # standard lead-acid practice: OCV is a reliable SoC proxy only at
        # equilibrium.
        if -0.25 < current < 0.25:
            sense.rest_seconds += dt_seconds
            if sense.rest_seconds >= 300.0:
                ocv_soc = self._soc_from_ocv(unit, sense.voltage)
                sense.soc_estimate = 0.9 * sense.soc_estimate + 0.1 * ocv_soc
        else:
            sense.rest_seconds = 0.0

    @staticmethod
    def _soc_from_ocv(unit: BatteryUnit, voltage: float) -> float:
        """Invert the EMF curve (valid at rest, where head ~= SoC)."""
        p = unit.params.voltage
        frac = (voltage - p.emf_empty) / (p.emf_full - p.emf_empty)
        frac = min(max(frac, 0.0), 1.0)
        return frac ** (1.0 / 0.75)

    # ------------------------------------------------------------------
    # Aggregates the controllers use
    # ------------------------------------------------------------------
    def total_discharge_current(self, names: list[str] | None = None) -> float:
        selected = names if names is not None else list(self.senses)
        return sum(max(0.0, self.senses[n].current) for n in selected)

    def min_soc(self, names: list[str]) -> float:
        if not names:
            return 0.0
        return min(self.senses[n].soc_estimate for n in names)

    def sense(self, name: str) -> BatterySense:
        try:
            return self.senses[name]
        except KeyError:
            raise KeyError(f"no telemetry for battery {name!r}") from None
