"""Temporal power management (TPM) — Figure 11 of the paper.

Each fine-grained control period the TPM inspects the total discharge
current of the online battery group.  Above the safety threshold it caps
load power: batch jobs receive a reduced DVFS duty cycle, stream jobs lose
VM instances.  Capping lets the KiBaM available well refill during the
discharge (the recovery effect), avoiding the voltage collapse that forces
a full switch-out.  When SoC reaches the protection floor, servers are
checkpointed and the exhausted cabinets go offline (transition 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.policy.controls import nudge_duty, nudge_vm_target
from repro.policy.governors import ConstGovernor


class TemporalAction(enum.Enum):
    """What the TPM asks the load side to do this period."""

    HOLD = "hold"
    CAP = "cap"          # reduce duty (batch) or VM count (stream)
    RELAX = "relax"      # restore duty / VMs
    CHECKPOINT = "checkpoint"  # SoC floor reached: save state, shut down


@dataclass
class TemporalParams:
    """TPM tuning knobs."""

    #: Discharge cap per online cabinet, as a C-rate (I_delta in Fig. 11).
    cap_c_rate: float = 0.30
    #: Hysteresis: relax only when below this fraction of the cap.
    relax_fraction: float = 0.6
    #: SoC floor triggering checkpoint + switch-out (SOC_delta in Fig. 11).
    soc_floor: float = 0.25
    #: Duty-cycle actuation for batch jobs.
    duty_step: float = 0.1
    duty_min: float = 0.5
    #: VM-count actuation for stream jobs.
    vm_step: int = 2


@dataclass(frozen=True)
class TemporalDecision:
    """Outcome of one TPM evaluation."""

    action: TemporalAction
    total_discharge_a: float
    cap_a: float
    min_soc: float


class TemporalPolicy:
    """Stateless TPM evaluation (actuation lives in the controller).

    Composed from :mod:`repro.policy` primitives: the per-cabinet
    discharge cap is a :class:`~repro.policy.governors.ConstGovernor`
    holding ``cap_c_rate * capacity_ah`` amps, and the duty/VM actuation
    steps are the shared :func:`~repro.policy.controls.nudge_duty` /
    :func:`~repro.policy.controls.nudge_vm_target` primitives.  The
    composition reproduces the original monolith's float expressions
    exactly (same products, same association order), which the golden
    matrix pins bit-for-bit.
    """

    def __init__(self, params: TemporalParams | None = None,
                 capacity_ah: float = 35.0) -> None:
        self.params = params or TemporalParams()
        if capacity_ah <= 0:
            raise ValueError("capacity_ah must be positive")
        self.capacity_ah = capacity_ah
        #: Per-cabinet discharge-current cap in amps (the governor half
        #: of Figure 11's current rule; signal-independent).
        self.cap_governor = ConstGovernor(
            self.params.cap_c_rate * self.capacity_ah
        )

    def cap_amps(self, online_units: int) -> float:
        """Total safe discharge current for ``online_units`` cabinets."""
        return self.cap_governor.limit() * max(online_units, 0)

    def evaluate(
        self,
        total_discharge_a: float,
        online_units: int,
        min_online_soc: float,
        battery_needed: bool,
    ) -> TemporalDecision:
        """One TPM period (the flow chart of Figure 11).

        Parameters
        ----------
        total_discharge_a:
            Sensed total discharge current I_d of the online group.
        online_units:
            Cabinets currently on the load bus.
        min_online_soc:
            Lowest estimated SoC among them.
        battery_needed:
            Whether the load currently depends on battery power at all —
            with ample solar there is nothing to cap.
        """
        if total_discharge_a < 0:
            raise ValueError("total_discharge_a must be non-negative")
        p = self.params
        cap = self.cap_amps(online_units)

        if online_units > 0 and battery_needed and min_online_soc <= p.soc_floor:
            action = TemporalAction.CHECKPOINT
        elif online_units > 0 and total_discharge_a > cap:
            action = TemporalAction.CAP
        elif total_discharge_a < cap * p.relax_fraction or not battery_needed:
            action = TemporalAction.RELAX
        else:
            action = TemporalAction.HOLD

        return TemporalDecision(
            action=action,
            total_discharge_a=total_discharge_a,
            cap_a=cap,
            min_soc=min_online_soc,
        )

    # ------------------------------------------------------------------
    # Actuation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _direction(action: TemporalAction) -> int:
        if action is TemporalAction.CAP:
            return -1
        if action is TemporalAction.RELAX:
            return 1
        return 0

    def next_duty(self, duty: float, action: TemporalAction) -> float:
        """Duty-cycle actuation for batch jobs (D_last +/- 1 in Fig. 11)."""
        p = self.params
        return nudge_duty(duty, self._direction(action), p.duty_step,
                          floor=p.duty_min)

    def next_vm_target(self, target: int, preferred: int, action: TemporalAction) -> int:
        """VM-count actuation for stream jobs (N_vm +/- 1 in Fig. 11)."""
        return nudge_vm_target(target, self._direction(action),
                               self.params.vm_step, preferred)
