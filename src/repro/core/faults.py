"""Supported fault injection for assembled systems.

The robustness suite used to poke attributes on a built system (rebinding
``system.controller.telemetry``, reaching into relay pairs) — fragile
against refactors and easy to get subtly wrong (the rebuilt telemetry lost
its seeded noise streams).  Faults are now first-class:
:func:`repro.core.system.build_system` accepts ``faults=[...]`` and applies
each one to the fully wired system before it is returned, so every fault
acts on the same objects the controller and the physics see.

A fault is any object with ``apply(system) -> None``; the classes below
cover the prototype's field failure modes.  Compose several in one list to
model compound degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # circular at runtime: repro.core.system imports this
    from repro.core.system import InSituSystem

_BUSES = ("offline", "charge", "load")


@runtime_checkable
class SystemFault(Protocol):
    """Anything that can be injected into a freshly built system."""

    def apply(self, system: "InSituSystem") -> None: ...


@dataclass(frozen=True)
class SensorGainFault:
    """Uncalibrated transducers: every sensor reads off by ``gain_error``.

    Applied to the existing sensing chain (seeded noise streams and PLC
    register bindings untouched), exactly as a miscalibrated field install
    would behave.
    """

    gain_error: float

    def apply(self, system: "InSituSystem") -> None:
        system.telemetry.set_gain_error(self.gain_error)


@dataclass(frozen=True)
class StuckRelayFault:
    """A cabinet's relay pair mechanically frozen on ``bus``.

    The pair is first driven to ``bus`` (the position it welded in), then
    both contacts are stuck so later controller commands are ignored —
    the electrical truth keeps following the frozen contacts.
    """

    battery: str
    bus: str = "load"

    def apply(self, system: "InSituSystem") -> None:
        if self.bus not in _BUSES:
            raise ValueError(f"unknown bus {self.bus!r} (expected one of {_BUSES})")
        system.switchnet.attach(self.battery, self.bus)
        pair = system.switchnet.pairs[self.battery]
        pair.charge.force_stick()
        pair.discharge.force_stick()


@dataclass(frozen=True)
class SelfDischargeFault:
    """Elevated self-discharge on one cabinet (soft short / sulfation).

    ``multiplier`` scales the per-day leakage of the affected unit; a soft
    short in a flooded cell plausibly leaks several times the healthy rate.
    """

    battery: str
    multiplier: float = 5.0

    def apply(self, system: "InSituSystem") -> None:
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        import dataclasses

        unit = system.bank.by_name(self.battery)
        unit.params = dataclasses.replace(
            unit.params,
            self_discharge_per_day=unit.params.self_discharge_per_day
            * self.multiplier,
        )
