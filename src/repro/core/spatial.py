"""Spatial power management (SPM) — Figures 9 and 10 of the paper.

Two pure decision procedures operating on *sensed* battery state:

* **Offline screening** (Figure 9): at each coarse control interval the
  discharge threshold is delta_D = D_U + D_L * T / T_L (Eq. 1).  Offline
  cabinets whose aggregated discharge AhT[i] stays below the threshold
  move to the charging group; over-used cabinets rest.  An *elastic* mode
  optionally relaxes the threshold when demand is high, trading a little
  battery life for on-demand processing acceleration (paper §3.3, last
  paragraph).

* **Charge batch sizing** (Figure 10): the optimal number of cabinets to
  batch-charge is N = P_G / P_PC — the green power budget over the peak
  per-cabinet charging power — so a scarce budget is concentrated on few
  cabinets (near-optimal charge rate) while an abundant budget charges
  many in parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.sensing import BatterySense
from repro.policy.governors import BudgetRampGovernor


@dataclass
class SpatialParams:
    """SPM tuning knobs."""

    #: Lifetime discharge budget D_L of one cabinet (Ah).
    lifetime_ah: float = 17500.0
    #: Desired service life T_L in days.
    design_life_days: float = 4.0 * 365.0
    #: Charge-to level before a cabinet is brought online (the paper's 90 %).
    charge_to_soc: float = 0.90
    #: Peak charging power P_PC of one cabinet (W at the PV bus).
    peak_charge_power_w: float = 270.0
    #: Solar surplus below which charging is not attempted at all.
    min_charge_surplus_w: float = 40.0
    #: Allow exceeding the discharge threshold when demand requires it.
    elastic: bool = True
    #: Each elastic relaxation step adds this fraction of the day's budget.
    elastic_step: float = 0.25


@dataclass
class SpatialDecision:
    """Outcome of one SPM evaluation."""

    to_charging: list[str] = field(default_factory=list)
    to_standby: list[str] = field(default_factory=list)
    hold_offline: list[str] = field(default_factory=list)
    threshold_ah: float = 0.0
    batch_size: int = 0


class SpatialPolicy:
    """Stateful SPM: tracks the unused budget carry-over D_U.

    Eq. 1's prorated term is a
    :class:`~repro.policy.governors.BudgetRampGovernor` over elapsed
    time; only the carried-over unused budget and the elastic bonus are
    SPM state.  The composed expression keeps the monolith's exact float
    association order, so the golden digests are unchanged.
    """

    def __init__(self, params: SpatialParams | None = None) -> None:
        self.params = params or SpatialParams()
        self.unused_budget_ah = 0.0
        self._elastic_bonus = 0.0
        self.budget_governor = BudgetRampGovernor(
            self.params.lifetime_ah, self.params.design_life_days
        )

    # ------------------------------------------------------------------
    # Eq. 1
    # ------------------------------------------------------------------
    def discharge_threshold(self, elapsed_seconds: float) -> float:
        """delta_D = D_U + D_L * T / T_L, plus any elastic relaxation."""
        if elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be non-negative")
        prorated = self.budget_governor.limit(elapsed_seconds)
        return self.unused_budget_ah + prorated + self._elastic_bonus

    def daily_budget_ah(self) -> float:
        """One day's worth of lifetime discharge budget."""
        return self.budget_governor.daily()

    # ------------------------------------------------------------------
    # Figure 10
    # ------------------------------------------------------------------
    def batch_size(self, surplus_w: float) -> int:
        """N = P_G / P_PC, at least one cabinet when any surplus exists."""
        if surplus_w < self.params.min_charge_surplus_w:
            return 0
        return max(1, math.floor(surplus_w / self.params.peak_charge_power_w))

    # ------------------------------------------------------------------
    # Figure 9 + 10 combined evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        offline: list[BatterySense],
        charging: list[BatterySense],
        surplus_w: float,
        elapsed_seconds: float,
        demand_pressure: bool = False,
    ) -> SpatialDecision:
        """One coarse-interval SPM pass.

        Parameters
        ----------
        offline / charging:
            Sensed state of cabinets currently in those groups.
        surplus_w:
            Estimated green power budget available for charging, P_G.
        elapsed_seconds:
            Time since the policy epoch (for Eq. 1).
        demand_pressure:
            True when the load side is starved (backlog with no usable
            buffer) — enables elastic threshold relaxation.
        """
        decision = SpatialDecision()
        decision.threshold_ah = self.discharge_threshold(elapsed_seconds)

        # Screening: under-used cabinets are eligible for charging.
        eligible = [s for s in offline if s.discharge_ah < decision.threshold_ah]
        overused = [s for s in offline if s not in eligible]

        if not eligible and overused and demand_pressure and self.params.elastic:
            # On-demand acceleration: relax the threshold one step and
            # retry, rather than starving the load (paper §3.3).
            self._elastic_bonus += self.params.elastic_step * self.daily_budget_ah()
            decision.threshold_ah = self.discharge_threshold(elapsed_seconds)
            eligible = [s for s in offline if s.discharge_ah < decision.threshold_ah]
            overused = [s for s in offline if s not in eligible]

        decision.hold_offline = [s.name for s in overused]

        # Batch sizing: keep already-charging cabinets counted against N.
        n = self.batch_size(surplus_w)
        decision.batch_size = n
        slots = max(0, n - len(charging))
        # Priority: lowest aggregated usage first (balance wear), then
        # lowest SoC (fast-charging prioritises the emptiest — Figure 14a).
        eligible.sort(key=lambda s: (s.discharge_ah, s.soc_estimate))
        picked = eligible[:slots]
        decision.to_charging = [s.name for s in picked]
        decision.hold_offline.extend(s.name for s in eligible[slots:])

        # Charged cabinets go to standby (transitions 2/5).
        decision.to_standby = [
            s.name for s in charging if s.soc_estimate >= self.params.charge_to_soc
        ]
        return decision

    def roll_budget(self, spent_ah_per_unit: float) -> None:
        """End-of-day bookkeeping: carry unused budget D_U forward."""
        if spent_ah_per_unit < 0:
            raise ValueError("spent_ah_per_unit must be non-negative")
        remaining = self.daily_budget_ah() - spent_ah_per_unit
        self.unused_budget_ah = max(0.0, self.unused_budget_ah + remaining)
        self._elastic_bonus = 0.0
