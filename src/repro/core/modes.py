"""Operating-mode transition rules (paper Figures 7 and 8).

The energy buffer's four modes and the seven numbered transitions:

1. Offline → Charging      battery has discharge budget and green power
2. Charging → Standby      all selected batteries meet the capacity goal
3. Standby → Discharging   green power budget becomes inadequate
4. Discharging → Offline   state of charge drops below threshold
5. Charging → Standby      a batch of batteries meets its capacity goal
6. Standby → Discharging   green power output becomes unavailable
7. Discharging → Standby   green power output exceeds server demand

Controllers use :func:`legal_transitions` to validate every mode change
they issue; an illegal transition is a controller bug, not a plant event.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.battery.unit import BatteryMode

#: Mapping of (from, to) -> the paper's transition numbers.
_TRANSITIONS: dict[tuple[BatteryMode, BatteryMode], tuple[int, ...]] = {
    (BatteryMode.OFFLINE, BatteryMode.CHARGING): (1,),
    (BatteryMode.CHARGING, BatteryMode.STANDBY): (2, 5),
    (BatteryMode.STANDBY, BatteryMode.DISCHARGING): (3, 6),
    (BatteryMode.DISCHARGING, BatteryMode.OFFLINE): (4,),
    (BatteryMode.DISCHARGING, BatteryMode.STANDBY): (7,),
    # Practical extras the prototype needs: suspending a charge when the
    # budget collapses, and protecting a standby unit that self-discharged.
    (BatteryMode.CHARGING, BatteryMode.OFFLINE): (),
    (BatteryMode.STANDBY, BatteryMode.OFFLINE): (),
}


@dataclass(frozen=True)
class ModeTransition:
    """One validated mode change for a named battery unit."""

    battery: str
    from_mode: BatteryMode
    to_mode: BatteryMode
    reason: str

    def __post_init__(self) -> None:
        if (self.from_mode, self.to_mode) not in _TRANSITIONS:
            raise ValueError(
                f"illegal transition {self.from_mode.value} -> {self.to_mode.value} "
                f"for {self.battery}"
            )

    @property
    def paper_numbers(self) -> tuple[int, ...]:
        """The Figure 8 transition numbers this change corresponds to."""
        return _TRANSITIONS[(self.from_mode, self.to_mode)]


def legal_transitions(from_mode: BatteryMode) -> tuple[BatteryMode, ...]:
    """Modes reachable from ``from_mode`` in one step."""
    return tuple(to for (frm, to) in _TRANSITIONS if frm is from_mode)


def bus_for_mode(mode: BatteryMode) -> str:
    """Which bus the switch network should attach a unit to for ``mode``."""
    if mode is BatteryMode.OFFLINE:
        return "offline"
    if mode is BatteryMode.CHARGING:
        return "charge"
    return "load"
