"""InSURE: the paper's contribution.

* :mod:`repro.core.modes` — the operating-mode FSM of Figures 7-8.
* :mod:`repro.core.sensing` — the PLC/transducer sensing path and the
  battery state estimator; controllers only ever see these sensed values.
* :mod:`repro.core.spatial` — SPM: wear-balanced offline screening (Eq. 1,
  Figure 9) and budget-adaptive charge batch sizing (Figure 10).
* :mod:`repro.core.temporal` — TPM: discharge-current capping actuated as
  DVFS duty cycles (batch jobs) or VM scaling (streams), with SoC-triggered
  checkpointing (Figure 11).
* :mod:`repro.core.energy_manager` — the InSURE controller tying it all
  together.
* :mod:`repro.core.baseline` — the unified-buffer baseline ("No-Opt" /
  state-of-the-art green-datacenter manager the paper compares against).
* :mod:`repro.core.system` — full-system assembly used by experiments.
"""

from repro.core.baseline import BaselineController, BaselineParams
from repro.core.energy_manager import InsureController, InsureParams
from repro.core.modes import ModeTransition, legal_transitions
from repro.core.sensing import BatterySense, BatteryTelemetry
from repro.core.spatial import SpatialPolicy
from repro.core.system import InSituSystem, build_system
from repro.core.temporal import TemporalAction, TemporalPolicy

__all__ = [
    "BaselineController",
    "BaselineParams",
    "BatterySense",
    "BatteryTelemetry",
    "InSituSystem",
    "InsureController",
    "InsureParams",
    "ModeTransition",
    "SpatialPolicy",
    "TemporalAction",
    "TemporalPolicy",
    "build_system",
    "legal_transitions",
]
