"""The InSURE controller: joint spatio-temporal power management.

Every fine-grained period the temporal policy (Figure 11) caps discharge
current and protects SoC; every coarse period the spatial policy (Figures
9-10) rebalances which cabinets charge, rest or serve.  Between the two,
the controller performs power-aware load matching: the VM target follows
what the solar EMA plus the *safe* battery power can sustain, and server
restarts happen as soon as charged cabinets come back online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.battery.unit import BatteryMode
from repro.core.controller_base import PowerManager
from repro.core.spatial import SpatialParams, SpatialPolicy
from repro.core.temporal import TemporalAction, TemporalParams, TemporalPolicy
from repro.sim.clock import Clock


@dataclass
class InsureParams:
    """All InSURE tuning knobs in one place."""

    tpm_interval_s: float = 30.0
    spm_interval_s: float = 300.0
    spatial: SpatialParams = field(default_factory=SpatialParams)
    temporal: TemporalParams = field(default_factory=TemporalParams)
    #: Margin (in SoC) above the floor a cabinet needs to count as usable.
    usable_margin: float = 0.05
    #: Minimum VMs worth restarting the cluster for.
    min_restart_vms: int = 2
    #: Keep at least this many usable cabinets on the load bus while the
    #: cluster serves — the buffer is the shock absorber for cloud
    #: transients ("maintain a favorable amount of usable online battery
    #: units", paper §3.4).  The reconfigurable buffer makes this possible
    #: even while other cabinets charge.
    min_online_units: int = 1
    #: Derating applied to the solar EMA when sizing load (cloud margin).
    solar_margin: float = 0.9
    #: Minimum seconds between successive VM-count *increases*.  Every
    #: scale-up risks a 15-minute On/Off cycle later, so upscaling is
    #: heavily damped; safety downscaling (CAP) is never delayed.
    upscale_holdoff_s: float = 600.0
    #: Minimum seconds between sizing-driven (non-safety) downscales.
    downscale_holdoff_s: float = 180.0
    #: Minimum seconds between VM-count reconfigurations of a *batch*
    #: (duty-actuated) workload; batch reconfiguration means checkpointing
    #: VMs and resuming with a different instance count, so it is rare.
    batch_reconfig_holdoff_s: float = 900.0
    #: Restart back-off after an uncontrolled power loss.
    crash_backoff_s: float = 420.0


class InsureController(PowerManager):
    """Joint spatio-temporal power manager (the paper's design)."""

    def __init__(self, *args: Any, params: InsureParams | None = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.params = params or InsureParams()
        capacity = self.bank[0].params.capacity_ah
        self.spatial = SpatialPolicy(self.params.spatial)
        self.temporal = TemporalPolicy(self.params.temporal, capacity_ah=capacity)
        self._tpm_elapsed = float("inf")
        self._spm_elapsed = float("inf")
        self._since_upscale = float("inf")
        self._since_downscale = float("inf")
        self._since_batch_reconfig = float("inf")
        self._since_crash = float("inf")
        self._seen_crashes = 0
        #: Units awaiting protective switch-out once the servers finish
        #: saving state (pulling them mid-save would destroy the very
        #: checkpoint the stop was for).
        self._protect_pending: set[str] = set()
        self.duty = 1.0
        self.vm_target = 0
        self.checkpoint_stops = 0

    @property
    def discharge_cap_amps(self) -> float | None:
        """The TPM's safe total discharge current for the online cabinets
        (Figure 11's current cap; ``None`` while nothing is online)."""
        online = len(self.online_units())
        if online == 0:
            return None
        return self.temporal.cap_amps(online)

    # ------------------------------------------------------------------
    # Component lifecycle
    # ------------------------------------------------------------------
    def start(self, clock: Clock) -> None:
        # Units above the charge-to level start online; empty ones offline.
        for unit in self.bank:
            sense = self.telemetry.sense(unit.name)
            if sense.soc_estimate >= self.params.spatial.charge_to_soc:
                unit.set_mode(BatteryMode.STANDBY)
                self.switchnet.attach(unit.name, "load", clock.t)
            else:
                unit.set_mode(BatteryMode.OFFLINE)
                self.switchnet.attach(unit.name, "offline", clock.t)

    def step(self, clock: Clock) -> None:
        tracer = self.tracer
        with tracer.span("controller.sense"):
            self.telemetry.plc.step(clock)
            self.telemetry.refresh(clock.dt)
            self._update_solar_ema(clock.dt)

        self._tpm_elapsed += clock.dt
        if self._tpm_elapsed >= self.params.tpm_interval_s:
            self._tpm_elapsed = 0.0
            with tracer.span("controller.decide.tpm"):
                self._temporal_period(clock)

        self._spm_elapsed += clock.dt
        if self._spm_elapsed >= self.params.spm_interval_s:
            self._spm_elapsed = 0.0
            with tracer.span("controller.decide.spm"):
                self._spatial_period(clock)

        # Policy overlays (carbon/price/SoC caps) run last so their
        # limits bound whatever the TPM/SPM periods just decided.
        self._step_policies(clock)

    # ------------------------------------------------------------------
    # TPM (fine-grained)
    # ------------------------------------------------------------------
    def _temporal_period(self, clock: Clock) -> None:
        t = clock.t
        self._since_upscale += self.params.tpm_interval_s
        self._since_downscale += self.params.tpm_interval_s
        self._since_batch_reconfig += self.params.tpm_interval_s
        self._since_crash += self.params.tpm_interval_s
        crashes = sum(server.crashes for server in self.rack.servers)
        if crashes > self._seen_crashes:
            self._seen_crashes = crashes
            self._since_crash = 0.0
            self.vm_target = 0
            self.allocator.set_target(0, t)
            self.decisions.record(t, "vm.target", self.name, target=0,
                                  reason="crash-backoff")
        self._ensure_online_reserve(t)
        online = self.online_units()
        online_names = [u.name for u in online]
        demand = self.rack.demand_w
        battery_needed = demand > self.solar_ema_w * 1.02

        decision = self.temporal.evaluate(
            total_discharge_a=self.telemetry.total_discharge_current(online_names),
            online_units=len(online),
            min_online_soc=self.telemetry.min_soc(online_names) if online else 0.0,
            battery_needed=battery_needed,
        )

        if decision.action is TemporalAction.CHECKPOINT:
            if not self._protect_pending:
                self.checkpoint_and_stop(t, reason="soc-floor")
                self.checkpoint_stops += 1
                self.vm_target = 0
                # Keep the cabinets on the load bus until the save
                # completes; they are switched out in _drain_protect.
                self._protect_pending.update(u.name for u in online)
        else:
            self._match_load(decision.action, t)
        self._drain_protect(t)

        self._mode_bookkeeping(t, battery_needed)
        self._maybe_restart(t)
        # Keep allocation converging after saves/boots complete.
        if not self.allocator.running_matches_target():
            self.allocator.sync(t)

    def _drain_protect(self, t: float) -> None:
        """Complete deferred protective switch-outs once servers are off."""
        if not self._protect_pending:
            return
        if self.rack.active_servers():
            return
        for name in sorted(self._protect_pending):
            unit = self.bank.by_name(name)
            if unit.mode in (BatteryMode.STANDBY, BatteryMode.DISCHARGING):
                reason = (
                    "soc-floor" if unit.mode is BatteryMode.DISCHARGING
                    else "protect"
                )
                self.transition(unit, BatteryMode.OFFLINE, reason, t)
        self._protect_pending.clear()

    def _ensure_online_reserve(self, t: float) -> None:
        """Keep ``min_online_units`` usable cabinets on the load bus.

        The reconfigurable buffer lets InSURE map a fraction of the stored
        energy to the servers while the rest charges, so the load side is
        never one cloud away from a brown-out.
        """
        floor = self.params.temporal.soc_floor + self.params.usable_margin
        # Reserve scales with the load the buffer may need to absorb.
        want = max(
            self.params.min_online_units,
            min(len(self.bank), int(self.rack.demand_w // 500.0) + 1),
        )
        if len(self.usable_online_units(floor)) >= want:
            return
        candidates = self.bank.in_mode(BatteryMode.OFFLINE, BatteryMode.CHARGING)
        candidates = [
            u for u in candidates
            if self.telemetry.sense(u.name).soc_estimate > floor + self.params.usable_margin
        ]
        candidates.sort(
            key=lambda u: self.telemetry.sense(u.name).soc_estimate, reverse=True
        )
        for unit in candidates[: want - len(self.usable_online_units(floor))]:
            if unit.mode is BatteryMode.CHARGING:
                self.transition(unit, BatteryMode.STANDBY, "reserve", t)
            else:
                self.transition(unit, BatteryMode.CHARGING, "reserve-stage", t)
                self.transition(unit, BatteryMode.STANDBY, "reserve", t)

    def _safe_battery_power(self) -> float:
        usable = self.usable_online_units(
            self.params.temporal.soc_floor + self.params.usable_margin
        )
        return sum(
            self.temporal.cap_amps(1) * u.params.nominal_voltage for u in usable
        )

    def _sizing_target(self) -> int:
        """VM count the derated solar plus safe battery power sustains.

        Sizing commits servers for many minutes (boot + save overheads),
        so it uses the slow solar EMA, not the instantaneous budget.
        """
        supportable = (
            self.solar_ema_slow_w * self.params.solar_margin
            + self._safe_battery_power()
        )
        return max(0, min(self.workload.preferred_vms,
                          int(supportable // self.per_vm_w)))

    def _match_load(self, action: TemporalAction, t: float) -> None:
        """Power-aware load matching via duty cycle or VM scaling."""
        cap_target = self._sizing_target()

        if getattr(self.workload, "actuation", "vms") == "duty":
            # Batch jobs: modulate DVFS first; reconfigure the VM count
            # only rarely (checkpoint + resume with different instances).
            new_duty = self.temporal.next_duty(self.duty, action)
            if new_duty != self.duty:
                self.decisions.record(t, "dvfs.duty", self.name,
                                      from_duty=self.duty, to_duty=new_duty,
                                      action=action.name.lower())
                self.duty = new_duty
                self.rack.set_duty(new_duty, t)
            if (
                action is TemporalAction.RELAX
                and self.duty >= 1.0
                and cap_target >= self.vm_target + 2
                and self._since_batch_reconfig >= self.params.batch_reconfig_holdoff_s
            ):
                self._since_batch_reconfig = 0.0
                self.vm_target = cap_target
                self.allocator.set_target(cap_target, t)
                self.decisions.record(t, "vm.target", self.name,
                                      target=cap_target,
                                      reason="batch-upscale")
            elif (
                action is TemporalAction.CAP
                and self.duty <= self.params.temporal.duty_min
                and self.vm_target > self.params.temporal.vm_step
                and self._since_batch_reconfig >= self.params.batch_reconfig_holdoff_s
            ):
                # Duty floor reached and the buffer is still over-drawn:
                # shed a machine (checkpointing its VMs) instead of dying.
                self._since_batch_reconfig = 0.0
                self.vm_target -= self.params.temporal.vm_step
                self.allocator.set_target(self.vm_target, t)
                self.decisions.record(t, "vm.target", self.name,
                                      target=self.vm_target,
                                      reason="duty-floor-shed")
        else:
            new_target = self.temporal.next_vm_target(
                self.vm_target, self.workload.preferred_vms, action
            )
            new_target = min(new_target, max(cap_target, 0))
            if new_target > self.vm_target:
                if (
                    self._since_upscale < self.params.upscale_holdoff_s
                    or self._since_crash < self.params.crash_backoff_s
                ):
                    return
                self._since_upscale = 0.0
            elif new_target < self.vm_target and action is not TemporalAction.CAP:
                # Sizing-driven shrink (not safety): damp it too.
                if self._since_downscale < self.params.downscale_holdoff_s:
                    return
                self._since_downscale = 0.0
            if new_target != self.vm_target:
                reason = ("safety-cap" if action is TemporalAction.CAP
                          else "sizing")
                self.vm_target = new_target
                self.allocator.set_target(new_target, t)
                self.decisions.record(t, "vm.target", self.name,
                                      target=new_target, reason=reason)

    # ------------------------------------------------------------------
    # Mode bookkeeping (transitions 3/6/7)
    # ------------------------------------------------------------------
    def _mode_bookkeeping(self, t: float, battery_needed: bool) -> None:
        for unit in self.online_units():
            if battery_needed and unit.mode is BatteryMode.STANDBY:
                self.transition(unit, BatteryMode.DISCHARGING, "green-inadequate", t)
            elif not battery_needed and unit.mode is BatteryMode.DISCHARGING:
                self.transition(unit, BatteryMode.STANDBY, "green-exceeds-demand", t)

    # ------------------------------------------------------------------
    # Restart after a protective stop
    # ------------------------------------------------------------------
    def _maybe_restart(self, t: float) -> None:
        if self.vm_target > 0 or self.rack.active_servers():
            return
        if self._since_crash < self.params.crash_backoff_s:
            return
        floor = self.params.temporal.soc_floor + self.params.usable_margin
        if len(self.usable_online_units(floor)) < self.params.min_online_units:
            return
        target = self._sizing_target()
        if target >= self.params.min_restart_vms:
            self.vm_target = target
            self.duty = 1.0
            self.rack.set_duty(1.0, t)
            self.allocator.set_target(target, t)
            self.events.emit(t, "load.restart", self.name, vms=target)
            self.decisions.record(t, "load.restart", self.name, vms=target)

    # ------------------------------------------------------------------
    # SPM (coarse-grained)
    # ------------------------------------------------------------------
    def _spatial_period(self, clock: Clock) -> None:
        t = clock.t
        offline = [
            self.telemetry.sense(u.name)
            for u in self.bank.in_mode(BatteryMode.OFFLINE)
        ]
        charging = [
            self.telemetry.sense(u.name)
            for u in self.bank.in_mode(BatteryMode.CHARGING)
        ]
        surplus = max(0.0, self.solar_ema_w - self.rack.demand_w)
        starving = (
            self.workload.backlog_gb > 0.0
            and not self.usable_online_units(self.params.temporal.soc_floor)
        )
        decision = self.spatial.evaluate(
            offline=offline,
            charging=charging,
            surplus_w=surplus,
            elapsed_seconds=t,
            demand_pressure=starving,
        )
        for name in decision.to_charging:
            self.transition(self.bank.by_name(name), BatteryMode.CHARGING,
                            "spm-select", t)
        for name in decision.to_standby:
            self.transition(self.bank.by_name(name), BatteryMode.STANDBY,
                            "capacity-goal", t)

        # Sunset release: with no surplus to charge from, a cabinet parked
        # on the charge bus is just stranded energy.  Put usable ones on
        # the load bus; the 90 % gate only makes sense while charging can
        # actually proceed.
        if surplus < self.params.spatial.min_charge_surplus_w:
            floor = self.params.temporal.soc_floor + 2 * self.params.usable_margin
            for unit in self.bank.in_mode(BatteryMode.CHARGING):
                if self.telemetry.sense(unit.name).soc_estimate > floor:
                    self.transition(unit, BatteryMode.STANDBY,
                                    "no-surplus-release", t)
