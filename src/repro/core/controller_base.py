"""Shared machinery for InSURE and baseline power managers.

A power manager is a simulation component that, each control period,
reads the sensed plant state and actuates three things: battery modes
(through the relay switch network), the VM allocation, and the rack's
DVFS duty cycle.  The InSURE and baseline controllers differ only in the
*policies* driving those actuations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.battery.bank import BatteryBank
from repro.battery.unit import BatteryMode, BatteryUnit
from repro.cluster.allocator import NodeAllocator
from repro.cluster.rack import ServerRack
from repro.core.modes import ModeTransition, bus_for_mode
from repro.core.sensing import BatteryTelemetry
from repro.obs.decisions import NULL_DECISIONS
from repro.obs.spans import NULL_TRACER
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock
from repro.sim.component import Component
from repro.sim.events import EventLog
from repro.workloads.base import Workload

if TYPE_CHECKING:  # imported for annotations only; avoids a runtime cycle
    from repro.battery.charger import SolarCharger
    from repro.policy.policy import Policy

#: Power drawn by one VM's share of a busy ProLiant (350 W / 2 VMs).
DEFAULT_PER_VM_W = 175.0


class PowerSource:
    """Minimal protocol for power sources (duck-typed)."""

    available_power_w: float


class PowerManager(Component):
    """Base class for supply/load coordinating controllers.

    Parameters
    ----------
    name:
        Component name.
    bank / switchnet / telemetry:
        The e-Buffer, its relay network, and the sensing chain.
    rack / allocator / workload:
        The load side.
    source:
        Object exposing ``available_power_w`` (solar field or trace player).
    events:
        Event log shared with the rest of the system.
    """

    def __init__(
        self,
        name: str,
        bank: BatteryBank,
        switchnet: SwitchNetwork,
        telemetry: BatteryTelemetry,
        rack: ServerRack,
        allocator: NodeAllocator,
        workload: Workload,
        source: PowerSource,
        events: EventLog,
        per_vm_w: float = DEFAULT_PER_VM_W,
        solar_ema_tau_s: float = 120.0,
    ) -> None:
        super().__init__(name)
        self.bank = bank
        self.switchnet = switchnet
        self.telemetry = telemetry
        self.rack = rack
        self.allocator = allocator
        self.workload = workload
        self.source = source
        self.events = events
        self.per_vm_w = per_vm_w
        self.solar_ema_tau_s = solar_ema_tau_s
        self.solar_ema_w = 0.0
        #: Slow EMA used for sizing decisions (minutes-scale commitment).
        self.solar_ema_slow_w = 0.0
        self.mode_transitions: list[ModeTransition] = []
        #: Optional PLC-resident switch program (Fig. 12's bottom tier);
        #: when set, mode changes are *requested* through PLC registers
        #: and applied by the scan cycle under its safety interlocks.
        self.plc_program = None
        #: Decision-event sink and span tracer; no-op singletons unless an
        #: Observability bundle replaces them.  Both only record — they
        #: never feed back into control decisions.
        self.decisions = NULL_DECISIONS
        self.tracer = NULL_TRACER
        #: Attached :class:`repro.policy.policy.Policy` overlays, stepped
        #: once per tick after the controller's own logic.  Empty by
        #: default — an empty list adds zero float operations, so runs
        #: without policies stay bit-identical to the pre-policy code.
        self.policies: list[Policy] = []

    # ------------------------------------------------------------------
    # Policy overlays (repro.policy)
    # ------------------------------------------------------------------
    def attach_policy(self, policy: Policy,
                      charger: SolarCharger | None = None) -> None:
        """Bind a policy overlay to this manager and start stepping it."""
        policy.bind(self, charger)
        self.policies.append(policy)

    def _step_policies(self, clock: Clock) -> None:
        for policy in self.policies:
            policy.step(clock.t, clock.dt)

    # ------------------------------------------------------------------
    # Sensing helpers
    # ------------------------------------------------------------------
    def _update_solar_ema(self, dt: float) -> None:
        alpha = min(1.0, dt / self.solar_ema_tau_s)
        self.solar_ema_w += alpha * (self.source.available_power_w - self.solar_ema_w)
        alpha_slow = min(1.0, dt / (self.solar_ema_tau_s * 3.0))
        self.solar_ema_slow_w += alpha_slow * (
            self.source.available_power_w - self.solar_ema_slow_w
        )

    def online_units(self) -> list[BatteryUnit]:
        return self.bank.in_mode(BatteryMode.STANDBY, BatteryMode.DISCHARGING)

    def usable_online_units(self, soc_floor: float) -> list[BatteryUnit]:
        floor = soc_floor
        return [
            u for u in self.online_units()
            if self.telemetry.sense(u.name).soc_estimate > floor
        ]

    # ------------------------------------------------------------------
    # Actuation helpers
    # ------------------------------------------------------------------
    def transition(self, unit: BatteryUnit, to_mode: BatteryMode, reason: str,
                   t: float) -> bool:
        """Validated mode change: updates the unit and drives the relays
        (directly, or as a request to the PLC switch program)."""
        if unit.mode is to_mode:
            return False
        change = ModeTransition(unit.name, unit.mode, to_mode, reason)
        unit.set_mode(to_mode)
        if self.plc_program is not None:
            self.plc_program.request(self.telemetry.plc, unit.name,
                                     bus_for_mode(to_mode))
        else:
            self.switchnet.attach(unit.name, bus_for_mode(to_mode), t)
        self.mode_transitions.append(change)
        self.events.emit(t, "buffer.mode", unit.name,
                         to=to_mode.value, reason=reason)
        self.decisions.record(t, "buffer.mode", unit.name,
                              from_mode=change.from_mode.value,
                              to_mode=to_mode.value, reason=reason)
        return True

    def checkpoint_and_stop(self, t: float, reason: str) -> None:
        """Graceful load shedding: durable checkpoint, then power down."""
        self.workload.checkpoint_all()
        self.allocator.set_target(0, t)
        self.rack.graceful_stop_all(t)
        self.events.emit(t, "load.checkpoint_stop", self.name, reason=reason)
        self.decisions.record(t, "load.checkpoint_stop", self.name, reason=reason)

    def supportable_vms(self, battery_power_w: float, preferred: int) -> int:
        """VM count the current power situation can sustain."""
        supportable = self.solar_ema_w + battery_power_w
        return max(0, min(preferred, int(supportable // self.per_vm_w)))

    # ------------------------------------------------------------------
    # Observables surfaced to the alert engine
    # ------------------------------------------------------------------
    @property
    def discharge_cap_amps(self) -> float | None:
        """Total discharge-current cap this controller enforces, if any.

        Read-only: the alert engine compares the observed bank discharge
        against it (near-miss rule).  ``None`` means uncapped.
        """
        return None

    # ------------------------------------------------------------------
    # Counters surfaced to the log analysis (Table 6 columns)
    # ------------------------------------------------------------------
    @property
    def power_ctrl_times(self) -> int:
        """Relay switching operations performed so far."""
        return self.switchnet.switch_operations

    @property
    def vm_ctrl_times(self) -> int:
        return self.allocator.vm_ctrl_ops
