"""Full-system assembly.

:func:`build_system` wires a complete in-situ installation — power source,
battery bank with relay network and sensing, server rack with allocator,
workload, a power manager (InSURE or baseline) and metric collection — into
one :class:`InSituSystem` stepped by the simulation engine in a fixed
causal order:

    source → controller → rack → plant coupler (bus physics) → metrics

The :class:`PlantCoupler` is the physical glue: each tick it resolves the
power bus and, when the online cabinets cannot cover the demand, emulates
the power loss (emergency shed + workload crash rollback) before feeding
the surviving compute-seconds to the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any, Literal

from repro.battery.bank import BatteryBank
from repro.battery.charger import SolarCharger
from repro.battery.params import BatteryParams
from repro.cluster.allocator import NodeAllocator
from repro.cluster.profiles import ServerProfile
from repro.cluster.rack import ServerRack
from repro.core.baseline import BaselineController, BaselineParams
from repro.core.controller_base import PowerManager
from repro.core.energy_manager import InsureController, InsureParams
from repro.core.sensing import BatteryTelemetry
from repro.obs.decisions import NULL_DECISIONS
from repro.obs.hub import Observability
from repro.power.bus import BusReport, PowerBus
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.events import EventLog
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.solar.field import TracePlayer
from repro.solar.traces import DayTrace
from repro.telemetry.metrics import MetricsCollector, RunSummary
from repro.validate.invariants import InvariantChecker
from repro.workloads.base import Workload

#: Shortfall below which the rack rides through (PSU hold-up, DC bus
#: capacitance and the few-percent slack of nameplate power draws); a
#: genuine collapse exceeds this immediately.
_UNSERVED_TOLERANCE_W = 30.0
_UNSERVED_TOLERANCE_FRACTION = 0.03


class PlantCoupler(Component):
    """Physical coupling of source, buffer and load each tick."""

    def __init__(
        self,
        name: str,
        source: Any,
        bus: PowerBus,
        rack: ServerRack,
        workload: Workload,
        events: EventLog,
    ) -> None:
        super().__init__(name)
        self.source = source
        self.bus = bus
        self.rack = rack
        self.workload = workload
        self.events = events
        self.last_report: BusReport | None = None
        self.shed_events = 0
        #: Decision-event sink (no-op unless observability is attached).
        self.decisions = NULL_DECISIONS
        #: Rack demand sampled this tick, still valid for downstream
        #: readers (None whenever a shed changed the rack afterwards).
        self.last_server_demand_w: float | None = None

    def step(self, clock: Clock) -> None:
        solar = self.source.available_power_w
        demand = self.rack.demand_w
        report = self.bus.resolve(solar, demand, clock.dt)
        self.last_report = report
        self.last_server_demand_w = demand

        compute = self.rack.last_compute_seconds
        shed_threshold = max(_UNSERVED_TOLERANCE_W,
                             _UNSERVED_TOLERANCE_FRACTION * report.demand_w)
        if report.unserved_w > shed_threshold:
            # Power collapse: every powered server browns out at once.
            self.rack.emergency_shed(clock.t)
            self.workload.on_crash()
            self.shed_events += 1
            self.events.emit(clock.t, "power.unserved", self.name,
                             watts=report.unserved_w)
            self.decisions.record(clock.t, "power.shed", self.name,
                                  unserved_w=report.unserved_w,
                                  demand_w=report.demand_w)
            compute = 0.0
            self.last_server_demand_w = None  # rack state changed under us
        self.workload.step(clock.t, clock.dt, compute)


@dataclass
class InSituSystem:
    """Handle bundling every part of an assembled installation."""

    engine: Engine
    source: Component
    bank: BatteryBank
    switchnet: SwitchNetwork
    telemetry: BatteryTelemetry
    rack: ServerRack
    allocator: NodeAllocator
    workload: Workload
    controller: PowerManager
    plant: PlantCoupler
    metrics: MetricsCollector
    recorder: TraceRecorder
    events: EventLog
    #: Physics-invariant observer; None unless built with ``invariants=True``.
    checker: InvariantChecker | None = None
    #: Observability bundle; None unless built with ``observability=...``.
    obs: Observability | None = None

    # Sliced-run bookkeeping (plain class attributes, not dataclass
    # fields; rebound per instance by begin_run).
    _total_steps = 0
    _steps_done = 0

    def run(self, duration_s: float | None = None) -> RunSummary:
        """Run for ``duration_s`` (default: the trace length) and summarise."""
        self.engine.run(self._resolve_duration(duration_s))
        return self.metrics.summary()

    def _resolve_duration(self, duration_s: float | None) -> float:
        if duration_s is not None:
            return duration_s
        trace = getattr(self.source, "trace", None)
        if trace is None:
            raise ValueError("duration_s is required for non-trace sources")
        return trace.duration_s

    # ------------------------------------------------------------------
    # Sliced (non-blocking) stepping — the serve daemon's face
    # ------------------------------------------------------------------
    def begin_run(self, duration_s: float | None = None) -> int:
        """Open a cooperative run; returns its total tick count.

        ``begin_run`` + repeated :meth:`advance` + :meth:`finalize` is
        bit-identical to one :meth:`run` call: the engine's sliced kernel
        takes the same sequence of component steps, so a hosted session
        reproduces the pinned golden summaries exactly.
        """
        self._total_steps = self.engine.begin(self._resolve_duration(duration_s))
        self._steps_done = 0
        return self._total_steps

    @property
    def remaining_steps(self) -> int:
        """Ticks left in the run opened by :meth:`begin_run` (0 = done)."""
        return self._total_steps - self._steps_done

    def advance(self, ticks: int) -> int:
        """Step up to ``ticks`` ticks of the open run; returns the count
        executed.  A shortfall means a stop condition ended the run — the
        remaining budget is cancelled so ``remaining_steps`` drops to 0."""
        budget = min(int(ticks), self.remaining_steps)
        if budget <= 0:
            return 0
        executed = self.engine.advance(budget)
        self._steps_done += executed
        if executed < budget:  # early stop: nothing left to run
            self._steps_done = self._total_steps
        return executed

    def finalize(self) -> RunSummary:
        """Fire the engine's finish hooks and summarise the run."""
        self.engine.end()
        return self.metrics.summary()


def build_system(
    trace: DayTrace | None,
    workload: Workload,
    controller: Literal["insure", "baseline"] = "insure",
    battery_count: int = 3,
    battery_params: BatteryParams | None = None,
    initial_soc: float = 0.9,
    initial_socs: list[float] | None = None,
    server_count: int = 4,
    server_profile: ServerProfile | None = None,
    insure_params: InsureParams | None = None,
    baseline_params: BaselineParams | None = None,
    dt: float = 5.0,
    seed: int = 0,
    trace_every: int = 12,
    source: Component | None = None,
    storage_gb: float | None = None,
    plc_interlocks: bool = False,
    invariants: bool = False,
    invariant_stride: int = 12,
    faults: Sequence | None = None,
    observability: Observability | bool | None = None,
    policies: Sequence | None = None,
) -> InSituSystem:
    """Assemble a complete in-situ installation around a solar day trace.

    Parameters
    ----------
    trace:
        Solar power input (see :mod:`repro.solar.traces`).
    workload:
        The data-processing workload.
    controller:
        ``"insure"`` for the paper's design, ``"baseline"`` for the
        unified-buffer comparison system.
    initial_soc:
        Starting state of charge of every cabinet (``initial_socs`` gives
        per-cabinet values instead).
    trace_every:
        Trace recorder decimation (ticks between samples).
    source:
        Override power source component (e.g. a live
        :class:`~repro.solar.field.SolarField` or a
        :class:`~repro.solar.field.ConstantSource`); ``trace`` may then
        be None and ``run`` needs an explicit duration.
    storage_gb:
        Attach an on-site raw-data buffer of this capacity; arrivals
        beyond it overwrite the oldest unprocessed data (counted in the
        run summary's ``dropped_gb``).  None disables the constraint.
    plc_interlocks:
        Route battery mode changes through the PLC-resident switch
        program (break-before-make, low-voltage lockout) instead of
        actuating relays directly — the prototype's Fig. 12 hierarchy.
    invariants:
        Attach an :class:`~repro.validate.invariants.InvariantChecker`
        observer asserting energy conservation, battery bounds, charge
        acceptance, wear monotonicity and relay exclusivity every
        ``invariant_stride`` ticks.  Off by default (zero overhead); the
        checker only reads plant state, so enabling it never changes a
        run's trajectory.
    faults:
        Fault injections (see :mod:`repro.core.faults`) applied to the
        fully wired system before it is returned.
    observability:
        Attach an :class:`~repro.obs.hub.Observability` bundle (metrics
        registry, sampled span tracer, decision-event log); ``True``
        builds a default bundle.  Off by default; the instruments only
        read plant state and time the loop, so attaching them never
        changes a run's trajectory (same-seed traces stay bit-identical).
    policies:
        :class:`~repro.policy.policy.Policy` overlays (signal × governor ×
        control method) attached to the controller and stepped every tick
        on their own evaluation intervals — e.g. a scenario from
        :mod:`repro.experiments.scenarios`.  None/empty attaches nothing
        and leaves the run bit-identical to an unpolicied one.
    """
    if source is None:
        if trace is None:
            raise ValueError("give either a trace or a source component")
        source = TracePlayer("solar", trace)
        start_hour = trace.start_hour
    else:
        start_hour = trace.start_hour if trace is not None else 7.0
    engine = Engine(dt=dt, start_hour=start_hour)
    events = EventLog()
    streams = RandomStreams(seed)

    bank = BatteryBank.build(count=battery_count, params=battery_params,
                             soc=initial_soc)
    if initial_socs is not None:
        if len(initial_socs) != len(bank):
            raise ValueError("initial_socs length must match battery_count")
        for unit, soc in zip(bank, initial_socs, strict=True):
            unit.kibam.set_soc(soc)
    switchnet = SwitchNetwork([u.name for u in bank], events)
    telemetry = BatteryTelemetry(bank, streams=streams)
    rack = ServerRack("rack", server_count=server_count, profile=server_profile,
                      events=events)
    allocator = NodeAllocator(rack, cpu_share=workload.cpu_share)
    bus = PowerBus(bank, charger=SolarCharger(), switchnet=switchnet)

    # Sizing constant derived from the actual hardware: the per-VM share
    # of a fully populated machine's power (a ProLiant gives the paper's
    # 350 W / 2 VMs = 175 W; a Core i7 node an order of magnitude less).
    profile = rack.profile
    per_vm_w = profile.power_at(
        workload.cpu_share * profile.vm_slots
    ) / profile.vm_slots

    common = dict(
        bank=bank, switchnet=switchnet, telemetry=telemetry, rack=rack,
        allocator=allocator, workload=workload, source=source, events=events,
        per_vm_w=per_vm_w,
    )
    if controller == "insure":
        manager: PowerManager = InsureController(
            "insure", params=insure_params, **common
        )
    elif controller == "baseline":
        manager = BaselineController(
            "baseline", params=baseline_params, **common
        )
    else:
        raise ValueError(f"unknown controller {controller!r}")

    for policy in policies or ():
        manager.attach_policy(policy, charger=bus.charger)

    if storage_gb is not None:
        from repro.cluster.storage import StorageArray

        workload.attach_storage(StorageArray(capacity_gb=storage_gb,
                                             events=events))

    if plc_interlocks:
        from repro.core.plc_program import BatterySwitchProgram

        program = BatterySwitchProgram(
            switchnet, [u.name for u in bank],
            v_cutoff=bank[0].params.voltage.v_cutoff,
        )
        telemetry.plc.set_program(program)
        manager.plc_program = program

    plant = PlantCoupler("plant", source, bus, rack, workload, events)
    metrics = MetricsCollector("metrics", bank, rack, workload, manager, plant)

    recorder = TraceRecorder(every=trace_every)
    recorder.channel("solar_w", lambda: source.available_power_w)
    recorder.channel("demand_w", lambda: rack.demand_w)
    recorder.channel("stored_wh", lambda: bank.stored_energy_wh)
    recorder.channel("mean_voltage", lambda: bank.mean_voltage)
    recorder.channel("running_vms", lambda: float(rack.running_vm_count()))
    for unit in bank:
        recorder.channel(f"{unit.name}.v",
                         lambda u=unit: u.terminal_voltage)
        recorder.channel(f"{unit.name}.soc", lambda u=unit: u.soc)

    engine.add(source)
    engine.add(manager)
    engine.add(rack)
    engine.add(plant)
    engine.add(metrics)
    engine.observe(recorder, name="recorder")

    checker = None
    if invariants:
        checker = InvariantChecker(bank=bank, switchnet=switchnet,
                                   plant=plant, stride=invariant_stride)
        engine.observe(checker, name="invariants")

    system = InSituSystem(
        engine=engine, source=source, bank=bank, switchnet=switchnet,
        telemetry=telemetry, rack=rack, allocator=allocator, workload=workload,
        controller=manager, plant=plant, metrics=metrics, recorder=recorder,
        events=events, checker=checker,
    )
    for fault in faults or ():
        fault.apply(system)
    if observability:
        obs = observability if isinstance(observability, Observability) \
            else Observability()
        system.obs = obs.attach(system)
    return system
