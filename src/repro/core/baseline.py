"""Baseline power manager: unified energy buffer, no spatio-temporal control.

This is the comparison point of Figures 17-21 and the "No-Opt" rows of
Table 6: a solar-powered in-situ system that adopts today's grid-connected
green-datacenter management (à la Parasol / Oasis).  It tracks the variable
renewable budget for VM sizing and shaves peaks by checkpointing when the
buffer protection trips — but its buffer is *unified*:

* all cabinets charge or discharge together (batch charging regardless of
  the solar budget);
* the whole bank disconnects from the load once any unit's terminal
  voltage approaches the protection threshold, shutting the servers down
  (the Figure 5 trace);
* servers stay down until the entire bank recharges to the capacity goal;
* no discharge-current capping, no wear balancing, full duty at all times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.battery.unit import BatteryMode
from repro.core.controller_base import PowerManager
from repro.sim.clock import Clock


@dataclass
class BaselineParams:
    """Baseline tuning knobs."""

    control_interval_s: float = 30.0
    #: Voltage margin above the LVD at which the bank is pulled for charge.
    protect_margin_v: float = 0.15
    #: SoC floor backstop (the prototype's protection relay).
    soc_floor: float = 0.08
    #: The bank returns online only when every unit reaches this level.
    charge_to_soc: float = 0.90
    #: Unconstrained per-cabinet discharge power assumed when sizing VMs.
    bank_power_per_unit_w: float = 420.0
    #: Cloud margin applied to the solar EMA when the bank cannot help
    #: (unified buffer on the charge bus).
    solar_margin: float = 0.85
    #: Minimum seconds between successive VM-count increases.
    upscale_holdoff_s: float = 120.0
    #: SoC above which yesterday's bank starts the day online (the 90 %
    #: capacity goal only gates *re*-entry after a protection trip).
    start_min_soc: float = 0.25


class BaselineController(PowerManager):
    """Unified-buffer, renewable-tracking baseline."""

    def __init__(self, *args: Any, params: BaselineParams | None = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.params = params or BaselineParams()
        self._elapsed = float("inf")
        self._since_upscale = float("inf")
        self.buffer_online = True
        #: A protection trip waits for the servers to finish saving
        #: before the bank is pulled to the charge bus.
        self._trip_pending = False
        self.vm_target = 0
        self.checkpoint_stops = 0

    @property
    def discharge_cap_amps(self) -> None:
        """The unified buffer never caps discharge current (paper §2.3) —
        the near-miss alert rule is inert for this controller."""
        return None

    def _retarget(self, target: int, t: float) -> None:
        """Apply a VM target with damped upscaling."""
        if target > self.vm_target:
            if self._since_upscale < self.params.upscale_holdoff_s:
                return
            self._since_upscale = 0.0
        if target != self.vm_target:
            self.vm_target = target
            self.allocator.set_target(target, t)
            self.decisions.record(t, "vm.target", self.name, target=target,
                                  reason="renewable-tracking")

    def start(self, clock: Clock) -> None:
        min_soc = min(
            self.telemetry.sense(u.name).soc_estimate for u in self.bank
        )
        self.buffer_online = min_soc >= self.params.start_min_soc
        mode = BatteryMode.STANDBY if self.buffer_online else BatteryMode.CHARGING
        bus = "load" if self.buffer_online else "charge"
        for unit in self.bank:
            unit.set_mode(mode)
            self.switchnet.attach(unit.name, bus, clock.t)

    def step(self, clock: Clock) -> None:
        tracer = self.tracer
        with tracer.span("controller.sense"):
            self.telemetry.plc.step(clock)
            self.telemetry.refresh(clock.dt)
            self._update_solar_ema(clock.dt)
        # Policy overlays step every tick on their own intervals; they
        # must not be gated by the baseline's control interval.
        self._step_policies(clock)
        self._elapsed += clock.dt
        if self._elapsed < self.params.control_interval_s:
            return
        self._elapsed = 0.0
        self._since_upscale += self.params.control_interval_s
        with tracer.span("controller.decide"):
            if self.buffer_online:
                self._online_period(clock)
            else:
                self._charging_period(clock)
        if not self.allocator.running_matches_target():
            self.allocator.sync(clock.t)

    # ------------------------------------------------------------------
    # Bank online: serve the load, watch the protection threshold
    # ------------------------------------------------------------------
    def _online_period(self, clock: Clock) -> None:
        t = clock.t
        p = self.params
        cutoff = self.bank[0].params.voltage.v_cutoff
        senses = [self.telemetry.sense(u.name) for u in self.bank]
        tripping = any(
            s.voltage <= cutoff + p.protect_margin_v and s.current > 0.5
            for s in senses
        ) or min(s.soc_estimate for s in senses) <= p.soc_floor

        if tripping or self._trip_pending:
            # Peak shaving, grid-datacenter style: checkpoint, then pull the
            # whole bank for charging (the unified buffer cannot split).
            # The pull waits for the save to finish — cutting supply
            # mid-save would destroy the checkpoint.
            if not self._trip_pending:
                self.checkpoint_and_stop(t, reason="bank-protection")
                self.checkpoint_stops += 1
                self.vm_target = 0
                self._trip_pending = True
                self.decisions.record(t, "buffer.trip", self.name,
                                      reason="bank-protection")
            if not self.rack.active_servers():
                for unit in self.bank:
                    self.transition(unit, BatteryMode.OFFLINE, "protect", t)
                    self.transition(unit, BatteryMode.CHARGING,
                                    "unified-recharge", t)
                self.buffer_online = False
                self._trip_pending = False
            return

        # Renewable tracking: size VMs to solar plus the (uncapped) bank.
        bank_w = p.bank_power_per_unit_w * len(self.bank)
        self._retarget(
            self.supportable_vms(bank_w, self.workload.preferred_vms), t
        )

        # Mode label bookkeeping for traces.
        battery_needed = self.rack.demand_w > self.solar_ema_w * 1.02
        for unit in self.bank:
            if battery_needed and unit.mode is BatteryMode.STANDBY:
                self.transition(unit, BatteryMode.DISCHARGING, "green-inadequate", t)
            elif not battery_needed and unit.mode is BatteryMode.DISCHARGING:
                self.transition(unit, BatteryMode.STANDBY, "green-exceeds-demand", t)

    # ------------------------------------------------------------------
    # Bank charging: everything waits for the full-bank capacity goal
    # ------------------------------------------------------------------
    def _charging_period(self, clock: Clock) -> None:
        t = clock.t
        # The unified architecture feeds the servers *through* the battery
        # bus, so with the bank on the charge bus the whole InS is down
        # ("InS has to be shut down and its solar energy utilization drops
        # to zero", paper §2.3).  All solar goes to batch-charging the bank.
        self._retarget(0, t)

        senses = [self.telemetry.sense(u.name) for u in self.bank]
        all_charged = all(
            s.soc_estimate >= self.params.charge_to_soc for s in senses
        )
        if all_charged:
            for unit in self.bank:
                self.transition(unit, BatteryMode.STANDBY, "capacity-goal", t)
            self.buffer_online = True
            self.events.emit(t, "buffer.online", self.name, reason="charged")
            self.decisions.record(t, "buffer.online", self.name,
                                  reason="charged")
