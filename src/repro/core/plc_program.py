"""PLC-resident battery switching program.

Figure 12 of the paper shows a three-tier hierarchy: the coordination
node decides *policy*, but the battery switching itself is executed by
the Siemens PLC, which owns the relay network and the raw sensor
registers.  This module is that bottom tier: the coordinator writes a
requested bus attachment per cabinet into holding registers, and the
PLC's scan cycle applies them through local safety interlocks:

* **Break-before-make** — moving a cabinet between the charge and load
  buses passes through an open state for one scan, so the two buses are
  never bridged through a cabinet.
* **Low-voltage lockout** — a request to put a cabinet on the load bus is
  refused while its sensed terminal voltage sits at/below the LVD
  threshold; the coordinator's request stays pending until the cabinet
  recovers.

The electrical truth always follows the relays (see
:class:`repro.power.bus.PowerBus`), so a coordinator bug cannot bypass
these interlocks.
"""

from __future__ import annotations

from repro.power.modbus import decode_fixed
from repro.power.relays import SwitchNetwork
from repro.sim.clock import Clock
from repro.power.plc import ProgrammableLogicController

#: Holding-register encoding of the requested bus.
BUS_CODES = {"offline": 0, "charge": 1, "load": 2}
_CODE_TO_BUS = {code: bus for bus, code in BUS_CODES.items()}

#: Holding registers for requests start here (input regs hold sensors).
REQUEST_BASE_ADDRESS = 100


class BatterySwitchProgram:
    """The PLC control program driving the relay network.

    Parameters
    ----------
    switchnet:
        Relay network to actuate.
    battery_names:
        Cabinet order; cabinet *i*'s request register is
        ``REQUEST_BASE_ADDRESS + i``.
    v_cutoff:
        LVD threshold for the load-bus lockout.
    regs_per_battery:
        Input-register stride of the sensing layout (voltage first).
    """

    def __init__(
        self,
        switchnet: SwitchNetwork,
        battery_names: list[str],
        v_cutoff: float = 23.3,
        regs_per_battery: int = 2,
    ) -> None:
        if not battery_names:
            raise ValueError("need at least one battery")
        self.switchnet = switchnet
        self.battery_names = list(battery_names)
        self.v_cutoff = v_cutoff
        self.regs_per_battery = regs_per_battery
        #: Cabinets mid-way through a break-before-make sequence.
        self._pending: dict[str, str] = {}
        self.lockout_refusals = 0

    # ------------------------------------------------------------------
    # Coordinator-side API
    # ------------------------------------------------------------------
    def request(self, plc: ProgrammableLogicController, battery_name: str,
                bus: str) -> None:
        """Write a bus request into the PLC's holding registers."""
        if bus not in BUS_CODES:
            raise ValueError(f"unknown bus {bus!r}")
        index = self._index(battery_name)
        plc.slave.set_holding(REQUEST_BASE_ADDRESS + index, BUS_CODES[bus])

    def requested_bus(self, plc: ProgrammableLogicController,
                      battery_name: str) -> str:
        index = self._index(battery_name)
        code = plc.slave.get_holding(REQUEST_BASE_ADDRESS + index)
        try:
            return _CODE_TO_BUS[code]
        except KeyError:
            raise ValueError(f"corrupt request register: {code}") from None

    def _index(self, battery_name: str) -> int:
        try:
            return self.battery_names.index(battery_name)
        except ValueError:
            raise KeyError(f"unknown battery {battery_name!r}") from None

    # ------------------------------------------------------------------
    # PLC scan-cycle body
    # ------------------------------------------------------------------
    def __call__(self, clock: Clock, plc: ProgrammableLogicController) -> None:
        for index, name in enumerate(self.battery_names):
            target = self.requested_bus(plc, name)
            current = self.switchnet.state_of(name)
            current_bus = {"charging": "charge", "load": "load",
                           "offline": "offline"}[current]
            if target == current_bus:
                self._pending.pop(name, None)
                continue

            # Low-voltage lockout for the load bus.
            if target == "load":
                voltage = self._sensed_voltage(plc, index)
                if voltage <= self.v_cutoff:
                    self.lockout_refusals += 1
                    continue

            # Break-before-make: bus-to-bus moves pass through offline.
            if target != "offline" and current_bus != "offline":
                self.switchnet.attach(name, "offline", clock.t)
                self._pending[name] = target
                continue

            self.switchnet.attach(name, target, clock.t)
            self._pending.pop(name, None)

    def _sensed_voltage(self, plc: ProgrammableLogicController,
                        index: int) -> float:
        register = plc.slave.input[index * self.regs_per_battery]
        return decode_fixed(register)
