"""Calibrated reference day traces.

The paper evaluates against two kinds of solar inputs:

* Figure 15's *high* (~1114 W average) and *low* (~427 W average) daytime
  generation traces, used for the micro-benchmark studies, plus the scaled
  1000 W / 500 W variants of Figures 20-21.
* Table 6's three day archetypes with fixed total energy: sunny 7.9 kWh,
  cloudy 5.9 kWh and rainy 3.0 kWh over an ~13 h operating day.

Traces are synthesised from the clear-sky envelope attenuated by the cloud
process, then *exactly* rescaled to the target mean power or daily energy,
mirroring the authors' method of replaying recorded traces through their
battery charger for comparable experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RandomStreams
from repro.solar.clearsky import clearsky_ghi
from repro.solar.clouds import CloudField

#: Paper trace constants (Figure 15, Table 6).
HIGH_TRACE_MEAN_W = 1114.0
LOW_TRACE_MEAN_W = 427.0
DAY_ENERGY_KWH = {"sunny": 7.9, "cloudy": 5.9, "rainy": 3.0}
TRACE_START_HOUR = 7.0
TRACE_END_HOUR = 20.0


@dataclass(frozen=True)
class DayTrace:
    """A solar power trace sampled on a fixed grid.

    Attributes
    ----------
    start_hour:
        Hour of day of the first sample.
    dt_seconds:
        Sample spacing.
    power_w:
        Power available at the PV bus for each sample.
    """

    start_hour: float
    dt_seconds: float
    power_w: np.ndarray

    @property
    def duration_s(self) -> float:
        return len(self.power_w) * self.dt_seconds

    @property
    def mean_power_w(self) -> float:
        return float(np.mean(self.power_w)) if len(self.power_w) else 0.0

    @property
    def energy_kwh(self) -> float:
        return float(np.sum(self.power_w)) * self.dt_seconds / 3.6e6

    def at(self, t_seconds: float) -> float:
        """Power at ``t_seconds`` after the trace start (zero past the end)."""
        if t_seconds < 0:
            raise ValueError("t_seconds must be non-negative")
        index = int(t_seconds // self.dt_seconds)
        if index >= len(self.power_w):
            return 0.0
        return float(self.power_w[index])


def _raw_day(
    profile: str,
    rated_w: float,
    dt_seconds: float,
    seed: int,
) -> np.ndarray:
    """Clear-sky envelope times the cloud process, on the paper's day window."""
    factories = {
        "sunny": CloudField.sunny,
        "cloudy": CloudField.cloudy,
        "rainy": CloudField.rainy,
    }
    try:
        factory = factories[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of {sorted(factories)}"
        ) from None

    rng = RandomStreams(seed).stream(f"solar.{profile}")
    clouds = factory(rng)
    hours = np.arange(TRACE_START_HOUR, TRACE_END_HOUR, dt_seconds / 3600.0)
    power = np.empty(len(hours))
    ghi_at = clearsky_ghi
    step = clouds.step
    out = power.tolist()
    for i, hour in enumerate(hours.tolist()):
        ghi = ghi_at(hour)
        clearness = step(dt_seconds)
        out[i] = rated_w * (ghi / 1000.0) * clearness
    power[:] = out
    return power


#: Synthesis is deterministic in its arguments, and experiment matrices
#: request the same few traces repeatedly (e.g. both controllers replay the
#: identical solar day).  Memoise the finished power arrays; entries hand
#: out defensive copies so callers can never alias each other.
_TRACE_MEMO: dict[tuple, np.ndarray] = {}
_TRACE_MEMO_MAX = 32


def make_day_trace(
    profile: str = "sunny",
    rated_w: float = 1600.0,
    dt_seconds: float = 5.0,
    seed: int = 0,
    target_energy_kwh: float | None = None,
    target_mean_w: float | None = None,
) -> DayTrace:
    """Synthesise a day trace, optionally rescaled to an exact target.

    Exactly one of ``target_energy_kwh`` / ``target_mean_w`` may be given;
    with neither, the raw synthetic trace is returned.  Profiles default to
    the Table 6 energies via :data:`DAY_ENERGY_KWH` when
    ``target_energy_kwh`` is the string-selected profile's value.
    """
    if target_energy_kwh is not None and target_mean_w is not None:
        raise ValueError("give at most one of target_energy_kwh / target_mean_w")
    memo_key = (profile, rated_w, dt_seconds, seed, target_energy_kwh, target_mean_w)
    cached = _TRACE_MEMO.get(memo_key)
    if cached is not None:
        return DayTrace(start_hour=TRACE_START_HOUR, dt_seconds=dt_seconds,
                        power_w=cached.copy())
    power = _raw_day(profile, rated_w, dt_seconds, seed)
    if target_energy_kwh is not None:
        current = power.sum() * dt_seconds / 3.6e6
        if current <= 0:
            raise ValueError("raw trace has no energy to rescale")
        power = power * (target_energy_kwh / current)
    elif target_mean_w is not None:
        current = power.mean()
        if current <= 0:
            raise ValueError("raw trace has no energy to rescale")
        power = power * (target_mean_w / current)
    if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
        _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    _TRACE_MEMO[memo_key] = power.copy()
    return DayTrace(start_hour=TRACE_START_HOUR, dt_seconds=dt_seconds, power_w=power)


def scale_to_mean_power(trace: DayTrace, mean_w: float) -> DayTrace:
    """Return a copy of ``trace`` rescaled to an exact mean power."""
    if mean_w < 0:
        raise ValueError("mean_w must be non-negative")
    current = trace.mean_power_w
    if current <= 0:
        raise ValueError("trace has no energy to rescale")
    return DayTrace(
        start_hour=trace.start_hour,
        dt_seconds=trace.dt_seconds,
        power_w=trace.power_w * (mean_w / current),
    )


def paper_high_trace(dt_seconds: float = 5.0, seed: int = 0) -> DayTrace:
    """Figure 15(a): high generation, ~1114 W average over the day window."""
    return make_day_trace("sunny", dt_seconds=dt_seconds, seed=seed,
                          target_mean_w=HIGH_TRACE_MEAN_W)


def paper_low_trace(dt_seconds: float = 5.0, seed: int = 0) -> DayTrace:
    """Figure 15(b): low generation, ~427 W average, heavy variability."""
    return make_day_trace("cloudy", dt_seconds=dt_seconds, seed=seed,
                          target_mean_w=LOW_TRACE_MEAN_W)


def table6_trace(day: str, dt_seconds: float = 5.0, seed: int = 0) -> DayTrace:
    """Table 6 day archetypes with the paper's exact daily energies."""
    return make_day_trace(day, dt_seconds=dt_seconds, seed=seed,
                          target_energy_kwh=DAY_ENERGY_KWH[day])
