"""Short-horizon solar forecasting.

The paper's controllers react to the observed budget; its future-work
discussion points at smarter provisioning.  This module provides two
standard short-horizon forecasters an in-situ controller can consult:

* :class:`PersistenceForecast` — tomorrow looks like the last few
  minutes (the standard baseline forecaster).
* :class:`ClearSkyScaledForecast` — estimate the current *clearness
  index* against the deterministic clear-sky curve and project it
  forward along that curve; much better around sunrise/sunset where pure
  persistence is systematically wrong.
"""

from __future__ import annotations

from collections import deque

from repro.solar.clearsky import clearsky_ghi
from repro.solar.geometry import GAINESVILLE_LATITUDE_DEG


class PersistenceForecast:
    """Rolling-mean persistence forecaster.

    Parameters
    ----------
    window_s:
        Averaging window for the current-level estimate.
    """

    def __init__(self, window_s: float = 600.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._samples: deque[tuple[float, float]] = deque()

    def observe(self, t: float, power_w: float) -> None:
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        self._samples.append((t, power_w))
        while self._samples and self._samples[0][0] < t - self.window_s:
            self._samples.popleft()

    def predict(self, horizon_s: float) -> float:  # noqa: ARG002 - flat
        """Forecast mean power over the next ``horizon_s`` seconds."""
        if not self._samples:
            return 0.0
        return sum(p for _, p in self._samples) / len(self._samples)


class ClearSkyScaledForecast:
    """Clearness-index persistence projected along the clear-sky curve.

    Parameters
    ----------
    rated_w:
        Array rating used to convert irradiance to power.
    start_hour:
        Wall-clock hour of day at simulation t = 0.
    """

    def __init__(
        self,
        rated_w: float = 1600.0,
        start_hour: float = 7.0,
        window_s: float = 600.0,
        day_of_year: int = 172,
        latitude_deg: float = GAINESVILLE_LATITUDE_DEG,
    ) -> None:
        if rated_w <= 0:
            raise ValueError("rated_w must be positive")
        self.rated_w = rated_w
        self.start_hour = start_hour
        self.day_of_year = day_of_year
        self.latitude_deg = latitude_deg
        self._clearness = PersistenceForecast(window_s)
        self._last_t = 0.0

    def _clear_sky_power(self, t: float) -> float:
        hour = (self.start_hour + t / 3600.0) % 24.0
        ghi = clearsky_ghi(hour, self.day_of_year, self.latitude_deg)
        return self.rated_w * ghi / 1000.0

    def observe(self, t: float, power_w: float) -> None:
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        self._last_t = t
        ceiling = self._clear_sky_power(t)
        if ceiling > 10.0:
            clearness = min(power_w / ceiling, 1.3)
            self._clearness.observe(t, clearness)

    def predict(self, horizon_s: float) -> float:
        """Forecast mean power over the next ``horizon_s`` seconds."""
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        clearness = self._clearness.predict(horizon_s)
        # Integrate the clear-sky curve over the horizon in 5-min strides.
        stride = min(300.0, horizon_s)
        t = self._last_t
        total, n = 0.0, 0
        while t < self._last_t + horizon_s:
            total += self._clear_sky_power(t) * clearness
            n += 1
            t += stride
        return total / max(n, 1)
