"""Clear-sky global horizontal irradiance.

The Haurwitz model: GHI = 1098 * cos(z) * exp(-0.057 / cos(z)).  It needs
only the zenith angle and is accurate to a few percent for clear days —
plenty for reproducing generation *envelopes*.
"""

from __future__ import annotations

import math

from repro.solar.geometry import GAINESVILLE_LATITUDE_DEG, cos_zenith

HAURWITZ_SCALE = 1098.0
HAURWITZ_EXTINCTION = 0.057


def clearsky_ghi(
    hour_of_day: float,
    day_of_year: int = 172,
    latitude_deg: float = GAINESVILLE_LATITUDE_DEG,
) -> float:
    """Clear-sky GHI in W/m^2 at the given local solar time."""
    mu = cos_zenith(hour_of_day, day_of_year, latitude_deg)
    if mu <= 0.0:
        return 0.0
    return HAURWITZ_SCALE * mu * math.exp(-HAURWITZ_EXTINCTION / mu)
