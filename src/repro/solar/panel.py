"""PV panel electrical model.

A normalised single-diode-flavoured P-V curve: given the incident
irradiance the panel has a short-circuit current proportional to
irradiance, an open-circuit voltage weakly (logarithmically) dependent on
it, and a concave power curve in between.  The MPPT searches this curve; a
perfect tracker would always sit at its knee.
"""

from __future__ import annotations

import math


class PVPanel:
    """A PV array scaled to a nameplate rating.

    Parameters
    ----------
    rated_w:
        Array output at standard test conditions (1000 W/m^2).  The
        prototype's installed capacity was 1.6 kW.
    v_oc:
        Open-circuit voltage of the string at STC.
    fill_shape:
        Curvature exponent of the normalised P-V curve; higher values give
        a sharper knee (crystalline silicon is fairly sharp).
    derate:
        Soiling / wiring / temperature derating applied to output.
    """

    def __init__(
        self,
        rated_w: float = 1600.0,
        v_oc: float = 44.0,
        fill_shape: float = 10.0,
        derate: float = 0.93,
    ) -> None:
        if rated_w <= 0:
            raise ValueError("rated_w must be positive")
        if v_oc <= 0:
            raise ValueError("v_oc must be positive")
        if fill_shape <= 1:
            raise ValueError("fill_shape must exceed 1")
        if not 0.0 < derate <= 1.0:
            raise ValueError("derate must be in (0, 1]")
        self.rated_w = rated_w
        self.v_oc_stc = v_oc
        self.fill_shape = fill_shape
        self.derate = derate

    def v_oc(self, irradiance_wm2: float) -> float:
        """Open-circuit voltage at the given irradiance."""
        if irradiance_wm2 <= 0:
            return 0.0
        # Weak logarithmic dependence, clamped for very low light.
        factor = 1.0 + 0.06 * math.log(max(irradiance_wm2, 20.0) / 1000.0)
        return self.v_oc_stc * max(factor, 0.6)

    def max_power(self, irradiance_wm2: float) -> float:
        """Maximum extractable power (W) at the given irradiance."""
        if irradiance_wm2 <= 0:
            return 0.0
        return self.rated_w * self.derate * min(irradiance_wm2 / 1000.0, 1.25)

    def power_at(self, voltage: float, irradiance_wm2: float) -> float:
        """Power delivered when operated at ``voltage`` (the P-V curve).

        The curve rises almost linearly from zero (current-source region),
        peaks at ~0.8 V_oc, and collapses towards V_oc.
        """
        v_oc = self.v_oc(irradiance_wm2)
        if v_oc <= 0 or voltage <= 0 or voltage >= v_oc:
            return 0.0
        x = voltage / v_oc
        n = self.fill_shape
        # P(x) ∝ x * (1 - x^n): linear current-source region with a sharp
        # roll-off near V_oc.  Normalised so the peak equals max_power.
        shape = x * (1.0 - x**n)
        x_mpp = (1.0 / (n + 1.0)) ** (1.0 / n)
        peak = x_mpp * (1.0 - x_mpp**n)
        return self.max_power(irradiance_wm2) * shape / peak

    def v_mpp(self, irradiance_wm2: float) -> float:
        """Voltage of the true maximum power point."""
        n = self.fill_shape
        x_mpp = (1.0 / (n + 1.0)) ** (1.0 / n)
        return x_mpp * self.v_oc(irradiance_wm2)
