"""Standalone solar power supply substrate.

The InSURE prototype drew from a roof-mounted 1.6 kW Grape Solar array with
a Perturb-and-Observe maximum-power-point tracker.  We model the whole
chain: solar geometry and clear-sky irradiance, a Markov cloud-regime
synthesiser that produces the paper's three day archetypes (sunny / cloudy /
rainy), a PV panel I-V model, and a P&O MPPT whose tentative perturbations
reproduce the power surges of Figure 16's Region B.

:mod:`repro.solar.traces` provides the calibrated day traces used by the
experiments: the *high* (~1114 W mean) and *low* (~427 W mean) generation
traces of Figure 15, and the 7.9 / 5.9 / 3.0 kWh days of Table 6.
"""

from repro.solar.clearsky import clearsky_ghi
from repro.solar.clouds import CloudField, CloudRegime
from repro.solar.field import ConstantSource, SolarField, TracePlayer
from repro.solar.forecast import ClearSkyScaledForecast, PersistenceForecast
from repro.solar.geometry import cos_zenith, declination_rad, hour_angle_rad
from repro.solar.mppt import PerturbObserveMPPT
from repro.solar.panel import PVPanel
from repro.solar.traces import DayTrace, make_day_trace, scale_to_mean_power

__all__ = [
    "ClearSkyScaledForecast",
    "CloudField",
    "CloudRegime",
    "ConstantSource",
    "DayTrace",
    "PVPanel",
    "PersistenceForecast",
    "PerturbObserveMPPT",
    "SolarField",
    "TracePlayer",
    "clearsky_ghi",
    "cos_zenith",
    "declination_rad",
    "hour_angle_rad",
    "make_day_trace",
    "scale_to_mean_power",
]
