"""Solar position geometry.

Standard textbook formulas (Cooper declination, hour angle) sufficient for
daily irradiance envelopes.  The prototype was deployed in Gainesville, FL
(latitude ~29.65° N), which is the default site.
"""

from __future__ import annotations

import math

GAINESVILLE_LATITUDE_DEG = 29.65


def declination_rad(day_of_year: int) -> float:
    """Solar declination (radians) via Cooper's formula."""
    if not 1 <= day_of_year <= 366:
        raise ValueError(f"day_of_year must be in [1, 366], got {day_of_year}")
    return math.radians(23.45) * math.sin(2.0 * math.pi * (284 + day_of_year) / 365.0)


def hour_angle_rad(hour_of_day: float) -> float:
    """Hour angle (radians): zero at solar noon, 15°/hour."""
    if not 0.0 <= hour_of_day < 24.0:
        raise ValueError(f"hour_of_day must be in [0, 24), got {hour_of_day}")
    return math.radians(15.0 * (hour_of_day - 12.0))


def cos_zenith(
    hour_of_day: float,
    day_of_year: int = 172,
    latitude_deg: float = GAINESVILLE_LATITUDE_DEG,
) -> float:
    """Cosine of the solar zenith angle, clamped at zero below the horizon.

    Defaults to the summer solstice at the prototype's site.
    """
    lat = math.radians(latitude_deg)
    dec = declination_rad(day_of_year)
    ha = hour_angle_rad(hour_of_day)
    value = math.sin(lat) * math.sin(dec) + math.cos(lat) * math.cos(dec) * math.cos(ha)
    return max(0.0, value)


def daylight_hours(
    day_of_year: int = 172,
    latitude_deg: float = GAINESVILLE_LATITUDE_DEG,
) -> float:
    """Length of the day (sunrise to sunset) in hours."""
    lat = math.radians(latitude_deg)
    dec = declination_rad(day_of_year)
    cos_sunset = -math.tan(lat) * math.tan(dec)
    if cos_sunset <= -1.0:
        return 24.0
    if cos_sunset >= 1.0:
        return 0.0
    return 2.0 * math.degrees(math.acos(cos_sunset)) / 15.0
