"""Solar field simulation components.

Two interchangeable power sources:

* :class:`SolarField` — live synthesis: clear sky → clouds → panel → P&O
  MPPT, stepped by the engine.  Used when MPPT dynamics matter (Figure 16
  Region B).
* :class:`TracePlayer` — replays a :class:`~repro.solar.traces.DayTrace`,
  the method the paper uses to compare optimisation schemes on identical
  solar budgets ("we reproduce our experiments via collected real solar
  power traces").

Both expose ``available_power_w``, the PV-bus budget the controllers see.
"""

from __future__ import annotations

import numpy as np

from repro.sim.clock import Clock
from repro.sim.component import Component
from repro.solar.clearsky import clearsky_ghi
from repro.solar.clouds import CloudField
from repro.solar.mppt import PerturbObserveMPPT
from repro.solar.panel import PVPanel
from repro.solar.traces import DayTrace


class SolarField(Component):
    """Live solar synthesis chain ending at the MPPT output."""

    def __init__(
        self,
        name: str,
        clouds: CloudField,
        panel: PVPanel | None = None,
        mppt: PerturbObserveMPPT | None = None,
        day_of_year: int = 172,
    ) -> None:
        super().__init__(name)
        self.clouds = clouds
        self.panel = panel or PVPanel()
        self.mppt = mppt or PerturbObserveMPPT(self.panel)
        self.day_of_year = day_of_year
        self.irradiance_wm2 = 0.0
        self.available_power_w = 0.0
        #: Cumulative Wh left on the panel by the P&O tracker hunting
        #: around the knee (Figure 16 Region B) — read by the obs ledger.
        self.e_mppt_loss_wh = 0.0

    def step(self, clock: Clock) -> None:
        clearness = self.clouds.step(clock.dt)
        self.irradiance_wm2 = clearsky_ghi(clock.hour_of_day, self.day_of_year) * clearness
        self.available_power_w = self.mppt.step(self.irradiance_wm2, clock.dt)
        ideal_w = self.panel.max_power(self.irradiance_wm2)
        if ideal_w > self.available_power_w:
            self.e_mppt_loss_wh += (ideal_w - self.available_power_w) * clock.dt / 3600.0


class TracePlayer(Component):
    """Replays a fixed day trace as the PV budget."""

    def __init__(self, name: str, trace: DayTrace) -> None:
        super().__init__(name)
        self.trace = trace
        self.available_power_w = 0.0
        # Plain-list copy for the per-tick lookup: scalar indexing into a
        # numpy array boxes a np.float64 on every access, which is pure
        # overhead at 17k+ ticks per run.  Values are bit-identical.
        self._power: list[float] = trace.power_w.tolist()
        self._dt = float(trace.dt_seconds)
        self._count = len(self._power)

    def step(self, clock: Clock) -> None:
        index = int(clock.t // self._dt)
        self.available_power_w = self._power[index] if index < self._count else 0.0

    @property
    def total_energy_kwh(self) -> float:
        return self.trace.energy_kwh


class ConstantSource(Component):
    """A fixed power budget; handy for unit tests and controlled studies."""

    def __init__(self, name: str, power_w: float) -> None:
        super().__init__(name)
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        self.available_power_w = float(power_w)

    def step(self, clock: Clock) -> None:  # noqa: ARG002 - uniform interface
        """Constant output; nothing to advance."""


def trace_from_array(power_w: np.ndarray, dt_seconds: float, start_hour: float = 7.0) -> DayTrace:
    """Wrap a raw power array (e.g. from a CSV of measurements) as a trace."""
    arr = np.asarray(power_w, dtype=float)
    if arr.ndim != 1:
        raise ValueError("power_w must be one-dimensional")
    if (arr < 0).any():
        raise ValueError("power values must be non-negative")
    return DayTrace(start_hour=start_hour, dt_seconds=dt_seconds, power_w=arr)
