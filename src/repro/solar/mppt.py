"""Perturb-and-Observe maximum power point tracking.

The prototype used a P&O tracker ([63] in the paper): every control period
it nudges the operating voltage, observes whether output power rose, and
keeps moving in the improving direction.  Under steady sun it oscillates
in a small band around the knee; after an irradiance jump it walks to the
new knee over several periods.  These tentative probes are the "green
peaks" of Region B in Figure 16.
"""

from __future__ import annotations

from repro.solar.panel import PVPanel


class PerturbObserveMPPT:
    """P&O tracker operating a :class:`PVPanel`.

    Parameters
    ----------
    panel:
        Panel to operate.
    step_fraction:
        Perturbation size as a fraction of STC open-circuit voltage.
    period_s:
        Control period of the tracker in seconds.
    """

    def __init__(
        self,
        panel: PVPanel,
        step_fraction: float = 0.015,
        period_s: float = 5.0,
    ) -> None:
        if step_fraction <= 0:
            raise ValueError("step_fraction must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.panel = panel
        self.step_v = step_fraction * panel.v_oc_stc
        self.period_s = period_s
        self.v_op = 0.8 * panel.v_oc_stc
        self._direction = 1.0
        self._last_power = 0.0
        self._elapsed = 0.0

    def step(self, irradiance_wm2: float, dt_seconds: float) -> float:
        """Advance the tracker; returns extracted power (W)."""
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        self._elapsed += dt_seconds
        if self._elapsed >= self.period_s:
            self._elapsed = 0.0
            power = self.panel.power_at(self.v_op, irradiance_wm2)
            if power < self._last_power:
                self._direction = -self._direction
            self._last_power = power
            self.v_op += self._direction * self.step_v
            v_oc = self.panel.v_oc(irradiance_wm2)
            if v_oc > 0:
                self.v_op = min(max(self.v_op, 0.3 * v_oc), 0.98 * v_oc)
        return self.panel.power_at(self.v_op, irradiance_wm2)

    def tracking_efficiency(self, irradiance_wm2: float) -> float:
        """Efficiency versus the true MPP at the given irradiance."""
        ideal = self.panel.max_power(irradiance_wm2)
        if ideal <= 0.0:
            return 1.0
        return self.panel.power_at(self.v_op, irradiance_wm2) / ideal
