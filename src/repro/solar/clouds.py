"""Stochastic cloud attenuation.

A two-layer model: a slow Markov chain over sky *regimes* (clear, partly
cloudy, overcast) and, within each regime, a mean-reverting clearness
process with regime-specific mean, volatility and dwell time.  Partly
cloudy skies produce the severe minute-scale power fluctuation of Figure
16's Region E; overcast skies produce the low, flat budget of rainy days.
"""

from __future__ import annotations

import enum

import numpy as np


class CloudRegime(enum.Enum):
    """Sky condition regimes with characteristic clearness statistics."""

    CLEAR = "clear"
    PARTLY = "partly"
    OVERCAST = "overcast"


#: Per-regime (mean clearness, clearness volatility per sqrt(hour)).
_REGIME_STATS: dict[CloudRegime, tuple[float, float]] = {
    CloudRegime.CLEAR: (0.97, 0.02),
    CloudRegime.PARTLY: (0.62, 0.45),
    CloudRegime.OVERCAST: (0.24, 0.08),
}

#: Mean regime dwell time in hours.
_REGIME_DWELL_HOURS: dict[CloudRegime, float] = {
    CloudRegime.CLEAR: 2.5,
    CloudRegime.PARTLY: 1.0,
    CloudRegime.OVERCAST: 2.0,
}


class CloudField:
    """Mean-reverting clearness-index process with regime switching.

    Parameters
    ----------
    rng:
        Random generator (use a named stream from
        :class:`repro.sim.rng.RandomStreams`).
    regime_weights:
        Stationary probabilities of each regime; a sunny day is mostly
        CLEAR, a rainy day mostly OVERCAST.
    reversion_per_hour:
        Mean-reversion speed of the within-regime clearness process.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        regime_weights: dict[CloudRegime, float] | None = None,
        reversion_per_hour: float = 6.0,
    ) -> None:
        if reversion_per_hour <= 0:
            raise ValueError("reversion_per_hour must be positive")
        self.rng = rng
        weights = regime_weights or {
            CloudRegime.CLEAR: 0.6,
            CloudRegime.PARTLY: 0.3,
            CloudRegime.OVERCAST: 0.1,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("regime weights must sum to a positive value")
        self.regime_weights = {k: v / total for k, v in weights.items()}
        self.reversion_per_hour = reversion_per_hour
        self.regime = self._draw_regime()
        self.clearness = _REGIME_STATS[self.regime][0]

    def _draw_regime(self) -> CloudRegime:
        regimes = list(self.regime_weights)
        probs = [self.regime_weights[r] for r in regimes]
        return regimes[int(self.rng.choice(len(regimes), p=probs))]

    def step(self, dt_seconds: float) -> float:
        """Advance the process and return clearness index in [0.02, 1]."""
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        dt_h = dt_seconds / 3600.0

        # Regime switching as a Poisson clock.
        dwell = _REGIME_DWELL_HOURS[self.regime]
        if self.rng.random() < 1.0 - np.exp(-dt_h / dwell):
            self.regime = self._draw_regime()

        mean, vol = _REGIME_STATS[self.regime]
        drift = self.reversion_per_hour * (mean - self.clearness) * dt_h
        shock = vol * np.sqrt(dt_h) * self.rng.standard_normal()
        self.clearness = float(np.clip(self.clearness + drift + shock, 0.02, 1.0))
        return self.clearness

    @classmethod
    def sunny(cls, rng: np.random.Generator) -> "CloudField":
        return cls(rng, {CloudRegime.CLEAR: 0.85, CloudRegime.PARTLY: 0.13,
                         CloudRegime.OVERCAST: 0.02})

    @classmethod
    def cloudy(cls, rng: np.random.Generator) -> "CloudField":
        return cls(rng, {CloudRegime.CLEAR: 0.25, CloudRegime.PARTLY: 0.55,
                         CloudRegime.OVERCAST: 0.20})

    @classmethod
    def rainy(cls, rng: np.random.Generator) -> "CloudField":
        return cls(rng, {CloudRegime.CLEAR: 0.03, CloudRegime.PARTLY: 0.17,
                         CloudRegime.OVERCAST: 0.80})
