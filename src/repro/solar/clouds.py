"""Stochastic cloud attenuation.

A two-layer model: a slow Markov chain over sky *regimes* (clear, partly
cloudy, overcast) and, within each regime, a mean-reverting clearness
process with regime-specific mean, volatility and dwell time.  Partly
cloudy skies produce the severe minute-scale power fluctuation of Figure
16's Region E; overcast skies produce the low, flat budget of rainy days.
"""

from __future__ import annotations

import enum

import numpy as np


class CloudRegime(enum.Enum):
    """Sky condition regimes with characteristic clearness statistics."""

    CLEAR = "clear"
    PARTLY = "partly"
    OVERCAST = "overcast"


#: Per-regime (mean clearness, clearness volatility per sqrt(hour)).
_REGIME_STATS: dict[CloudRegime, tuple[float, float]] = {
    CloudRegime.CLEAR: (0.97, 0.02),
    CloudRegime.PARTLY: (0.62, 0.45),
    CloudRegime.OVERCAST: (0.24, 0.08),
}

#: Mean regime dwell time in hours.
_REGIME_DWELL_HOURS: dict[CloudRegime, float] = {
    CloudRegime.CLEAR: 2.5,
    CloudRegime.PARTLY: 1.0,
    CloudRegime.OVERCAST: 2.0,
}


class CloudField:
    """Mean-reverting clearness-index process with regime switching.

    Parameters
    ----------
    rng:
        Random generator (use a named stream from
        :class:`repro.sim.rng.RandomStreams`).
    regime_weights:
        Stationary probabilities of each regime; a sunny day is mostly
        CLEAR, a rainy day mostly OVERCAST.
    reversion_per_hour:
        Mean-reversion speed of the within-regime clearness process.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        regime_weights: dict[CloudRegime, float] | None = None,
        reversion_per_hour: float = 6.0,
    ) -> None:
        if reversion_per_hour <= 0:
            raise ValueError("reversion_per_hour must be positive")
        self.rng = rng
        weights = regime_weights or {
            CloudRegime.CLEAR: 0.6,
            CloudRegime.PARTLY: 0.3,
            CloudRegime.OVERCAST: 0.1,
        }
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("regime weights must sum to a positive value")
        self.regime_weights = {k: v / total for k, v in weights.items()}
        self.reversion_per_hour = reversion_per_hour
        self.regime = self._draw_regime()
        self.clearness = _REGIME_STATS[self.regime][0]
        # Per-step transcendentals depend only on (dt, regime); with the
        # fixed engine step they are the same few values every tick, so
        # cache them (bit-identical — the cached numbers are the same
        # np.exp / np.sqrt results the uncached path would produce).
        self._cached_dt_h = -1.0
        self._sqrt_dt_h = 0.0
        self._switch_p: dict[CloudRegime, float] = {}

    def _draw_regime(self) -> CloudRegime:
        regimes = list(self.regime_weights)
        probs = [self.regime_weights[r] for r in regimes]
        return regimes[int(self.rng.choice(len(regimes), p=probs))]

    def step(self, dt_seconds: float) -> float:
        """Advance the process and return clearness index in [0.02, 1]."""
        if dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")
        dt_h = dt_seconds / 3600.0
        if dt_h != self._cached_dt_h:
            self._cached_dt_h = dt_h
            self._sqrt_dt_h = float(np.sqrt(dt_h))
            self._switch_p.clear()

        # Regime switching as a Poisson clock.
        regime = self.regime
        switch_p = self._switch_p.get(regime)
        if switch_p is None:
            dwell = _REGIME_DWELL_HOURS[regime]
            switch_p = float(1.0 - np.exp(-dt_h / dwell))
            self._switch_p[regime] = switch_p
        if self.rng.random() < switch_p:
            self.regime = self._draw_regime()

        mean, vol = _REGIME_STATS[self.regime]
        drift = self.reversion_per_hour * (mean - self.clearness) * dt_h
        shock = vol * self._sqrt_dt_h * self.rng.standard_normal()
        value = self.clearness + drift + shock
        if value < 0.02:
            value = 0.02
        elif value > 1.0:
            value = 1.0
        self.clearness = float(value)
        return self.clearness

    @classmethod
    def sunny(cls, rng: np.random.Generator) -> "CloudField":
        return cls(rng, {CloudRegime.CLEAR: 0.85, CloudRegime.PARTLY: 0.13,
                         CloudRegime.OVERCAST: 0.02})

    @classmethod
    def cloudy(cls, rng: np.random.Generator) -> "CloudField":
        return cls(rng, {CloudRegime.CLEAR: 0.25, CloudRegime.PARTLY: 0.55,
                         CloudRegime.OVERCAST: 0.20})

    @classmethod
    def rainy(cls, rng: np.random.Generator) -> "CloudField":
        return cls(rng, {CloudRegime.CLEAR: 0.03, CloudRegime.PARTLY: 0.17,
                         CloudRegime.OVERCAST: 0.80})
