"""Trace and summary persistence.

Round-trippable export of what a run produced: recorder channels to CSV
(for plotting elsewhere), run summaries to JSON (for archiving paper-vs-
measured records), and solar day traces to CSV (for replaying a measured
day through the simulator — the authors' own methodology).
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.sim.trace import TraceRecorder
from repro.solar.traces import DayTrace
from repro.telemetry.metrics import RunSummary


def export_recorder_csv(recorder: TraceRecorder, path: str | Path) -> Path:
    """Write every recorded channel (plus time) as one CSV."""
    path = Path(path)
    data = recorder.as_dict()
    names = ["t"] + [n for n in data if n != "t"]
    rows = zip(*(data[name] for name in names), strict=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        writer.writerows(rows)
    return path


def save_summary_json(summary: RunSummary, path: str | Path,
                      extra: dict | None = None) -> Path:
    """Persist a run summary (plus free-form metadata) as JSON."""
    path = Path(path)
    payload = dataclasses.asdict(summary)
    if extra:
        overlap = set(payload) & set(extra)
        if overlap:
            raise ValueError(f"extra keys shadow summary fields: {sorted(overlap)}")
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_summary_json(path: str | Path) -> RunSummary:
    """Load a summary saved by :func:`save_summary_json`.

    Unknown (extra) keys are ignored so archived files stay loadable as
    the summary grows new fields.
    """
    payload = json.loads(Path(path).read_text())
    fields = {f.name for f in dataclasses.fields(RunSummary)}
    missing = fields - set(payload)
    if missing:
        raise ValueError(f"summary file missing fields: {sorted(missing)}")
    return RunSummary(**{k: v for k, v in payload.items() if k in fields})


def export_day_trace_csv(trace: DayTrace, path: str | Path) -> Path:
    """Write a solar day trace as (t_seconds, power_w) CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t_seconds", "power_w", "start_hour", "dt_seconds"])
        for i, power in enumerate(trace.power_w):
            writer.writerow([i * trace.dt_seconds, float(power),
                             trace.start_hour, trace.dt_seconds])
    return path


def load_day_trace_csv(path: str | Path) -> DayTrace:
    """Load a trace saved by :func:`export_day_trace_csv` (or hand-made
    measurements in the same layout)."""
    path = Path(path)
    powers: list[float] = []
    start_hour = 7.0
    dt_seconds = 5.0
    with path.open() as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            powers.append(float(row["power_w"]))
            start_hour = float(row.get("start_hour", start_hour))
            dt_seconds = float(row.get("dt_seconds", dt_seconds))
    if not powers:
        raise ValueError(f"no samples in {path}")
    return DayTrace(start_hour=start_hour, dt_seconds=dt_seconds,
                    power_w=np.asarray(powers))
