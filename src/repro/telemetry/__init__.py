"""Measurement and log analysis.

:class:`~repro.telemetry.metrics.MetricsCollector` samples the running
system every tick and produces a :class:`~repro.telemetry.metrics.RunSummary`
holding every quantity the paper reports: system uptime, data throughput,
average latency, e-Buffer energy availability, expected service life,
performance per ampere-hour, effective-vs-total energy usage, control
operation counts, and battery voltage statistics.
"""

from repro.telemetry.analyzer import improvement, table6_row
from repro.telemetry.metrics import MetricsCollector, RunSummary

__all__ = ["MetricsCollector", "RunSummary", "improvement", "table6_row"]
