"""Markdown run reports.

Renders a :class:`~repro.telemetry.metrics.RunSummary` (optionally with a
baseline comparison) as a human-readable Markdown document — the artefact
an operator would file after a day of field operation.
"""

from __future__ import annotations

from repro.telemetry.analyzer import all_improvements
from repro.telemetry.metrics import RunSummary


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:,.{digits}f}"


def render_summary(summary: RunSummary, title: str = "InSURE day report") -> str:
    """One run as a Markdown document."""
    lines = [
        f"# {title}",
        "",
        f"Run length: {summary.elapsed_s / 3600.0:.1f} h",
        "",
        "## Service",
        "",
        "| metric | value |",
        "|---|---|",
        f"| uptime | {summary.availability_pct:.1f} % |",
        f"| data processed | {_fmt(summary.processed_gb, 1)} GB |",
        f"| throughput | {_fmt(summary.throughput_gb_per_hour)} GB/h |",
        f"| mean delay | {_fmt(summary.mean_delay_minutes, 1)} min |",
        f"| data dropped (storage) | {_fmt(summary.dropped_gb, 1)} GB |",
        "",
        "## Energy",
        "",
        "| metric | value |",
        "|---|---|",
        f"| solar available | {_fmt(summary.solar_energy_kwh)} kWh |",
        f"| solar used | {_fmt(summary.solar_used_kwh)} kWh |",
        f"| curtailed | {_fmt(summary.curtailed_kwh)} kWh |",
        f"| server load | {_fmt(summary.load_energy_kwh)} kWh |",
        f"| effective (useful) | {_fmt(summary.effective_energy_kwh)} kWh "
        f"({summary.effective_fraction * 100:.0f} % of load) |",
        "",
        "## Energy buffer",
        "",
        "| metric | value |",
        "|---|---|",
        f"| availability (online stored energy) | {_fmt(summary.energy_availability_wh, 0)} Wh |",
        f"| projected service life | {_fmt(summary.projected_life_days, 0)} days |",
        f"| performance per Ah | {_fmt(summary.perf_per_ah_gb)} GB/Ah |",
        f"| total discharge | {_fmt(summary.total_discharge_ah, 1)} Ah "
        f"(imbalance {_fmt(summary.discharge_imbalance_ah)} Ah) |",
        f"| minimum voltage | {_fmt(summary.min_battery_voltage)} V |",
        f"| end-of-run voltage | {_fmt(summary.end_battery_voltage)} V |",
        "",
        "## Control activity",
        "",
        "| operations | count |",
        "|---|---|",
        f"| relay switching | {summary.power_ctrl_times} |",
        f"| VM control | {summary.vm_ctrl_times} |",
        f"| server on/off cycles | {summary.on_off_cycles} |",
        f"| uncontrolled power losses | {summary.crash_count} |",
        "",
    ]
    return "\n".join(lines)


def render_comparison(
    insure: RunSummary,
    baseline: RunSummary,
    title: str = "InSURE vs baseline",
) -> str:
    """Side-by-side comparison with the six-metric improvement vector."""
    improvements = all_improvements(insure, baseline)
    lines = [
        f"# {title}",
        "",
        "| metric | InSURE | baseline | improvement |",
        "|---|---|---|---|",
        f"| uptime | {insure.availability_pct:.1f} % | "
        f"{baseline.availability_pct:.1f} % | "
        f"{improvements['system_uptime'] * 100:+.0f} % |",
        f"| throughput | {_fmt(insure.throughput_gb_per_hour)} | "
        f"{_fmt(baseline.throughput_gb_per_hour)} GB/h | "
        f"{improvements['load_perf'] * 100:+.0f} % |",
        f"| mean delay | {_fmt(insure.mean_delay_minutes, 1)} | "
        f"{_fmt(baseline.mean_delay_minutes, 1)} min | "
        f"{improvements['avg_latency'] * 100:+.0f} % |",
        f"| e-Buffer availability | {_fmt(insure.energy_availability_wh, 0)} | "
        f"{_fmt(baseline.energy_availability_wh, 0)} Wh | "
        f"{improvements['ebuffer_avail'] * 100:+.0f} % |",
        f"| service life | {_fmt(insure.projected_life_days, 0)} | "
        f"{_fmt(baseline.projected_life_days, 0)} days | "
        f"{improvements['service_life'] * 100:+.0f} % |",
        f"| perf per Ah | {_fmt(insure.perf_per_ah_gb)} | "
        f"{_fmt(baseline.perf_per_ah_gb)} GB/Ah | "
        f"{improvements['perf_per_ah'] * 100:+.0f} % |",
        "",
        f"InSURE wins {sum(1 for v in improvements.values() if v > 0)} of "
        f"{len(improvements)} metrics.",
        "",
    ]
    return "\n".join(lines)
