"""Unified run flight-report.

``repro report run`` (and :func:`run_flight` underneath) flies one
fully instrumented cell and files everything an operator would want
after a day of field operation in a single document:

* the :class:`~repro.telemetry.metrics.RunSummary` service/energy/buffer
  tables (reusing :func:`repro.telemetry.report.render_summary`),
* the joule-level energy ledger — every flow edge from PV harvest to
  effective work, Sankey-style with shares of harvest, plus the
  conservation-closure verdict,
* the alert timeline and decision-event totals,
* the sampled span profile of the tick loop,
* optionally a side-by-side against the other controller on the same
  seed and weather (``--compare``), including a per-edge ledger delta.

Rendered as Markdown and (optionally) a dependency-free HTML page;
:func:`write_flight_report` drops both next to the raw observability
artifacts (metrics, decisions, spans, ledger, alerts).
"""

from __future__ import annotations

import html as _html
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.system import build_system
from repro.obs.hub import Observability
from repro.obs.ledger import EDGE_NAMES, SIGNED_EDGES
from repro.solar.traces import make_day_trace
from repro.telemetry.metrics import RunSummary
from repro.telemetry.report import render_comparison, render_summary
from repro.workloads import SeismicAnalysis, VideoSurveillance


def _make_workload(kind: str):
    if kind == "video":
        return VideoSurveillance()
    if kind == "seismic":
        return SeismicAnalysis()
    raise ValueError(f"unknown workload kind {kind!r}")


@dataclass
class FlightReport:
    """Everything one instrumented run (plus optional comparison) produced."""

    controller: str
    workload: str
    weather: str
    mean_w: float
    seed: int
    summary: RunSummary
    obs: Observability
    ticks: int
    wall_s: float
    #: Policy scenario flown, and the (stepped) policy overlays.
    scenario: str | None = None
    policies: list = None
    #: Optional comparison run on the same seed/trace.
    compare_controller: str | None = None
    compare_summary: RunSummary | None = None
    compare_obs: Observability | None = None

    @property
    def title(self) -> str:
        base = f"{self.controller} / {self.workload} / {self.weather}"
        if self.scenario:
            return f"{base} [{self.scenario}]"
        return base

    @property
    def ledger_edges(self) -> dict[str, float]:
        return self.obs.ledger.edges()

    @property
    def alerts(self) -> list:
        return list(self.obs.alerts.alerts) if self.obs.alerts else []


def _fly(controller: str, workload: str, weather: str, mean_w: float,
         seed: int, initial_soc: float, dt: float,
         duration_s: float | None, stride: int, policies=None):
    trace = make_day_trace(weather, dt_seconds=dt, seed=seed,
                           target_mean_w=mean_w)
    obs = Observability(trace_stride=stride)
    system = build_system(trace, _make_workload(workload),
                          controller=controller, seed=seed,
                          initial_soc=initial_soc, dt=dt, observability=obs,
                          policies=policies)
    t0 = time.perf_counter()
    summary = system.run(duration_s)
    wall_s = time.perf_counter() - t0
    return summary, obs, system.engine.clock.step_index, wall_s


def run_flight(
    controller: str = "insure",
    workload: str = "seismic",
    weather: str = "sunny",
    mean_w: float = 800.0,
    seed: int = 1,
    initial_soc: float = 0.55,
    dt: float = 5.0,
    duration_s: float | None = None,
    stride: int = 16,
    compare: str | None = None,
    scenario: str | None = None,
) -> FlightReport:
    """Fly one instrumented cell (and optionally a comparison controller
    over the identical trace and seed) and collect the flight report.

    ``scenario`` flies a policy scenario instead: the controller, workload,
    weather and seed come from its pinned spec, its policy overlays are
    attached, and the report grows a Policies section.  The comparison run
    (if any) flies *without* overlays — it shows what the plain controller
    would have done on the identical trace.
    """
    policies = None
    if scenario is not None:
        from repro.experiments.scenarios import (
            build_policies,
            get_scenario,
            scenario_seed,
        )

        spec = get_scenario(scenario)
        controller = spec.controller
        workload = spec.workload
        weather = spec.weather
        seed = scenario_seed(scenario)
        policies = build_policies(scenario, seed)
    summary, obs, ticks, wall_s = _fly(controller, workload, weather, mean_w,
                                       seed, initial_soc, dt, duration_s,
                                       stride, policies=policies)
    report = FlightReport(
        controller=controller, workload=workload, weather=weather,
        mean_w=mean_w, seed=seed, summary=summary, obs=obs,
        ticks=ticks, wall_s=wall_s, scenario=scenario, policies=policies,
    )
    if compare is not None:
        if compare == controller and scenario is None:
            raise ValueError(
                f"--compare controller must differ from {controller!r}"
            )
        cmp_summary, cmp_obs, _, _ = _fly(compare, workload, weather, mean_w,
                                          seed, initial_soc, dt, duration_s,
                                          stride)
        report.compare_controller = compare
        report.compare_summary = cmp_summary
        report.compare_obs = cmp_obs
    return report


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------
def _fmt_wh(wh: float) -> str:
    return f"{wh / 1000.0:,.2f} kWh" if abs(wh) >= 1000.0 else f"{wh:,.1f} Wh"


def _hhmm(t: float) -> str:
    minutes = int(round(t / 60.0))
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


def _ledger_rows(edges: dict[str, float]) -> list[tuple[str, str, str]]:
    """(edge, energy, share-of-harvest) rows in catalogue order."""
    harvest = edges.get("pv.harvest", 0.0)
    rows = []
    for name in EDGE_NAMES:
        wh = edges[name]
        if name in SIGNED_EDGES or harvest <= 0.0:
            share = "—"
        else:
            share = f"{100.0 * wh / harvest:.1f} %"
        rows.append((name, _fmt_wh(wh), share))
    return rows


def _summary_body(summary: RunSummary, title: str) -> str:
    """render_summary without its own H1 (we supply the document's)."""
    text = render_summary(summary, title=title)
    return text.split("\n", 2)[2]


def _span_rows(report: FlightReport, top: int = 12) -> list[dict[str, Any]]:
    return report.obs.tracer.report_rows()[:top]


def _comparison_pair(report: FlightReport) -> tuple[RunSummary, RunSummary]:
    """Order (insure-like, baseline-like) for render_comparison."""
    if report.compare_controller == "insure":
        return report.compare_summary, report.summary
    return report.summary, report.compare_summary


def render_markdown(report: FlightReport) -> str:
    """The whole flight report as one Markdown document."""
    ledger = report.obs.ledger
    closure = ledger.closure()
    lines = [
        f"# Flight report — {report.title}",
        "",
        f"Seed {report.seed}, {report.mean_w:.0f} W mean solar, "
        f"{report.summary.elapsed_s / 3600.0:.1f} h simulated "
        f"({report.ticks} ticks in {report.wall_s:.2f} s wall).",
        "",
        _summary_body(report.summary, report.title),
    ]
    if report.policies:
        lines += ["## Policies", ""]
        lines += ["| policy | composition | evaluations | last limit |",
                  "|---|---|---|---|"]
        for policy in report.policies:
            last = policy._last_limit
            lines.append(
                f"| {policy.name} | {policy.describe()} | "
                f"{policy.evaluations} | "
                f"{'—' if last is None else f'{last:.3f}'} |"
            )
        lines.append("")
    lines += [
        "## Energy ledger",
        "",
        "| flow edge | energy | share of harvest |",
        "|---|---|---|",
    ]
    for edge, energy, share in _ledger_rows(report.ledger_edges):
        lines.append(f"| {edge} | {energy} | {share} |")
    lines += ["", f"Closure: {closure}", ""]

    lines += ["## Alerts", ""]
    alerts = report.alerts
    if not alerts:
        lines += ["No alerts fired.", ""]
    else:
        lines += ["| time | rule | severity | message |", "|---|---|---|---|"]
        for alert in alerts:
            lines.append(f"| {_hhmm(alert.t)} | {alert.rule} | "
                         f"{alert.severity} | {alert.message} |")
        lines.append("")

    lines += ["## Decisions", ""]
    counts = report.obs.decisions.counts()
    if not counts:
        lines += ["No decision events recorded.", ""]
    else:
        lines += ["| kind | count |", "|---|---|"]
        for kind, count in counts.items():
            lines.append(f"| {kind} | {count} |")
        lines.append("")

    lines += [
        "## Span profile",
        "",
        f"Sampled {report.obs.tracer.sampled_ticks} of {report.ticks} ticks "
        f"(stride {report.obs.tracer.stride}).",
        "",
        "| span | calls | self ms | share |",
        "|---|---|---|---|",
    ]
    for row in _span_rows(report):
        lines.append(f"| {row['span']} | {row['calls']} | "
                     f"{row['self_s'] * 1e3:.2f} | {row['share'] * 100:.1f} % |")
    lines.append("")

    if report.compare_summary is not None:
        insure, baseline = _comparison_pair(report)
        comparison = render_comparison(
            insure, baseline,
            title=f"vs {report.compare_controller} (same seed and trace)",
        )
        lines += ["## Comparison", ""]
        lines.append(comparison.split("\n", 2)[2])
        lines += [
            "### Ledger delta",
            "",
            f"| flow edge | {report.controller} | {report.compare_controller} |",
            "|---|---|---|",
        ]
        ours = report.ledger_edges
        theirs = report.compare_obs.ledger.edges()
        for name in EDGE_NAMES:
            lines.append(f"| {name} | {_fmt_wh(ours[name])} | "
                         f"{_fmt_wh(theirs[name])} |")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML rendering (dependency-free)
# ----------------------------------------------------------------------
_HTML_STYLE = (
    "body{font-family:sans-serif;margin:2em;max-width:60em}"
    "table{border-collapse:collapse;margin:0.5em 0}"
    "td,th{border:1px solid #999;padding:0.25em 0.6em;text-align:left}"
    "th{background:#eee}"
    ".critical{color:#a00;font-weight:bold}"
)


def _html_table(headers: list[str], rows: list[list[str]],
                row_classes: list[str] | None = None) -> list[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{_html.escape(h)}</th>"
                                       for h in headers) + "</tr>"]
    for i, row in enumerate(rows):
        cls = f' class="{row_classes[i]}"' if row_classes and row_classes[i] \
            else ""
        out.append(f"<tr{cls}>" + "".join(f"<td>{_html.escape(str(c))}</td>"
                                          for c in row) + "</tr>")
    out.append("</table>")
    return out


def render_html(report: FlightReport) -> str:
    """A minimal self-contained HTML flight report."""
    summary = report.summary
    closure = report.obs.ledger.closure()
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Flight report — {_html.escape(report.title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Flight report — {_html.escape(report.title)}</h1>",
        f"<p>Seed {report.seed}, {report.mean_w:.0f} W mean solar, "
        f"{summary.elapsed_s / 3600.0:.1f} h simulated.</p>",
        "<h2>Service</h2>",
    ]
    parts += _html_table(
        ["metric", "value"],
        [["uptime", f"{summary.availability_pct:.1f} %"],
         ["data processed", f"{summary.processed_gb:,.1f} GB"],
         ["throughput", f"{summary.throughput_gb_per_hour:,.2f} GB/h"],
         ["mean delay", f"{summary.mean_delay_minutes:,.1f} min"],
         ["solar used", f"{summary.solar_used_kwh:,.2f} kWh"],
         ["effective energy", f"{summary.effective_energy_kwh:,.2f} kWh"]],
    )
    parts.append("<h2>Energy ledger</h2>")
    parts += _html_table(["flow edge", "energy", "share of harvest"],
                         [list(row) for row in
                          _ledger_rows(report.ledger_edges)])
    parts.append(f"<p>Closure: {_html.escape(str(closure))}</p>")

    parts.append("<h2>Alerts</h2>")
    alerts = report.alerts
    if not alerts:
        parts.append("<p>No alerts fired.</p>")
    else:
        parts += _html_table(
            ["time", "rule", "severity", "message"],
            [[_hhmm(a.t), a.rule, a.severity, a.message] for a in alerts],
            row_classes=["critical" if a.severity == "critical" else ""
                         for a in alerts],
        )

    parts.append("<h2>Decisions</h2>")
    counts = report.obs.decisions.counts()
    if counts:
        parts += _html_table(["kind", "count"],
                             [[k, str(v)] for k, v in counts.items()])
    else:
        parts.append("<p>No decision events recorded.</p>")

    parts.append("<h2>Span profile</h2>")
    parts += _html_table(
        ["span", "calls", "self ms", "share"],
        [[row["span"], str(row["calls"]), f"{row['self_s'] * 1e3:.2f}",
          f"{row['share'] * 100:.1f} %"] for row in _span_rows(report)],
    )

    if report.compare_summary is not None:
        theirs = report.compare_obs.ledger.edges()
        ours = report.ledger_edges
        parts.append(f"<h2>Ledger vs "
                     f"{_html.escape(report.compare_controller)}</h2>")
        parts += _html_table(
            ["flow edge", report.controller, report.compare_controller],
            [[name, _fmt_wh(ours[name]), _fmt_wh(theirs[name])]
             for name in EDGE_NAMES],
        )
    parts.append("</body></html>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def write_flight_report(report: FlightReport, out_dir,
                        with_html: bool = False) -> dict[str, Path]:
    """Write the rendered report plus the raw observability artifacts."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = report.obs.export(out)
    paths["flight_md"] = out / "flight_report.md"
    paths["flight_md"].write_text(render_markdown(report), encoding="utf-8")
    if with_html:
        paths["flight_html"] = out / "flight_report.html"
        paths["flight_html"].write_text(render_html(report), encoding="utf-8")
    return paths
