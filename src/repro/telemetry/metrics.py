"""Per-run metric collection.

The collector is a trailing component: registered after the plant coupler,
it samples true plant state each tick (it is the experimenter's logger,
not part of the control loop, so it may read the plant directly) and
produces a :class:`RunSummary` with the paper's measurement metrics.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.battery.bank import BatteryBank
from repro.cluster.rack import ServerRack
from repro.cluster.server import ServerState
from repro.sim.clock import Clock
from repro.sim.component import Component
from repro.workloads.base import Workload

if TYPE_CHECKING:  # circular at runtime: repro.core imports this module
    from repro.core.controller_base import PowerManager


@dataclass(frozen=True)
class RunSummary:
    """Everything the paper's tables and figures report about one run."""

    elapsed_s: float
    # Service-related metrics.
    uptime_fraction: float
    throughput_gb_per_hour: float
    mean_delay_minutes: float
    processed_gb: float
    # System-related metrics.
    energy_availability_wh: float
    projected_life_days: float
    perf_per_ah_gb: float
    # Energy accounting (Table 6).
    load_energy_kwh: float
    effective_energy_kwh: float
    solar_energy_kwh: float
    solar_used_kwh: float
    curtailed_kwh: float
    # Battery statistics (Table 6).
    min_battery_voltage: float
    end_battery_voltage: float
    battery_voltage_sigma: float
    total_discharge_ah: float
    discharge_imbalance_ah: float
    # Control activity (Table 6).
    power_ctrl_times: int
    on_off_cycles: int
    vm_ctrl_times: int
    crash_count: int
    dropped_gb: float
    deadline_miss_rate: float

    @property
    def availability_pct(self) -> float:
        return 100.0 * self.uptime_fraction

    @property
    def effective_fraction(self) -> float:
        """Effective energy as a share of total load energy."""
        if self.load_energy_kwh <= 0:
            return 0.0
        return self.effective_energy_kwh / self.load_energy_kwh


class MetricsCollector(Component):
    """Samples the plant every tick; produces a :class:`RunSummary`."""

    def __init__(
        self,
        name: str,
        bank: BatteryBank,
        rack: ServerRack,
        workload: Workload,
        controller: PowerManager,
        plant,
    ) -> None:
        super().__init__(name)
        self.bank = bank
        self.rack = rack
        self.workload = workload
        self.controller = controller
        self.plant = plant
        self._elapsed = 0.0
        self._uptime_s = 0.0
        self._stored_wh_integral = 0.0
        self._load_energy_wh = 0.0
        self._effective_energy_wh = 0.0
        self._checkpoint_energy_wh = 0.0
        self._solar_energy_wh = 0.0
        self._solar_used_wh = 0.0
        self._curtailed_wh = 0.0
        self._min_voltage = float("inf")
        self._voltage_samples: list[float] = []
        self._voltage_sample_every = 60.0
        self._since_voltage_sample = float("inf")

    def step(self, clock: Clock) -> None:
        dt = clock.dt
        dt_h = dt / 3600.0
        self._elapsed += dt

        if self.rack.serving():
            self._uptime_s += dt

        # Energy availability counts *reachable* energy: cabinets on the
        # load bus.  A unified bank parked on the charge bus can absorb no
        # emergency, whatever it stores (paper §6.3).
        online_wh = 0
        for u in self.bank.units:
            if u.is_online():
                online_wh += u.stored_energy_wh
        self._stored_wh_integral += online_wh * dt

        # The coupler sampled rack demand earlier this tick; nothing between
        # it and this collector changes server power state unless a shed
        # happened (in which case it invalidates the sample and we re-read).
        demand = getattr(self.plant, "last_server_demand_w", None)
        if demand is None:
            demand = self.rack.demand_w
        self._load_energy_wh += demand * dt_h
        effective = 0
        transition = 0
        for server in self.rack.servers:
            if server.running_vm_count():
                effective += server.power_w
            elif server.state is ServerState.BOOTING or server.state is ServerState.SAVING:
                transition += server.power_w
        self._effective_energy_wh += effective * dt_h
        self._checkpoint_energy_wh += transition * dt_h

        report = self.plant.last_report
        if report is not None:
            self._solar_energy_wh += report.solar_available_w * dt_h
            self._solar_used_wh += (report.solar_to_load_w + report.charge_power_w) * dt_h
            self._curtailed_wh += report.curtailed_w * dt_h

        min_v = self._min_voltage
        for u in self.bank.units:
            tv = u.terminal_voltage
            if tv < min_v:
                min_v = tv
        self._min_voltage = min_v
        self._since_voltage_sample += dt
        if self._since_voltage_sample >= self._voltage_sample_every:
            self._since_voltage_sample = 0.0
            self._voltage_samples.append(self.bank.mean_voltage)

    # ------------------------------------------------------------------
    # Cumulative accumulators (read by the obs energy ledger)
    # ------------------------------------------------------------------
    @property
    def load_energy_wh(self) -> float:
        """Wall-side server energy drawn so far (Wh)."""
        return self._load_energy_wh

    @property
    def effective_energy_wh(self) -> float:
        """Energy spent by servers actually running VMs (Wh)."""
        return self._effective_energy_wh

    @property
    def checkpoint_energy_wh(self) -> float:
        """Energy spent booting or checkpoint-saving — power drawn while
        producing no compute (the On/Off cycle overhead of Table 6)."""
        return self._checkpoint_energy_wh

    @property
    def solar_energy_wh(self) -> float:
        return self._solar_energy_wh

    @property
    def solar_used_wh(self) -> float:
        return self._solar_used_wh

    @property
    def curtailed_wh(self) -> float:
        return self._curtailed_wh

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def summary(self) -> RunSummary:
        if self._elapsed <= 0:
            raise RuntimeError("no samples collected yet")
        elapsed = self._elapsed
        stats = self.workload.stats
        discharge_ah = self.bank.total_discharge_ah()
        life_days = statistics.mean(
            unit.wear.projected_life_days(elapsed) for unit in self.bank
        )
        sigma = (
            statistics.pstdev(self._voltage_samples)
            if len(self._voltage_samples) > 1
            else 0.0
        )
        return RunSummary(
            elapsed_s=elapsed,
            uptime_fraction=self._uptime_s / elapsed,
            throughput_gb_per_hour=stats.throughput_gb_per_hour(elapsed),
            mean_delay_minutes=self.workload.mean_delay_minutes(elapsed),
            processed_gb=stats.processed_gb,
            energy_availability_wh=self._stored_wh_integral / elapsed,
            projected_life_days=life_days,
            perf_per_ah_gb=(stats.processed_gb / discharge_ah) if discharge_ah > 0 else 0.0,
            load_energy_kwh=self._load_energy_wh / 1000.0,
            effective_energy_kwh=self._effective_energy_wh / 1000.0,
            solar_energy_kwh=self._solar_energy_wh / 1000.0,
            solar_used_kwh=self._solar_used_wh / 1000.0,
            curtailed_kwh=self._curtailed_wh / 1000.0,
            min_battery_voltage=self._min_voltage,
            end_battery_voltage=self.bank.mean_voltage,
            battery_voltage_sigma=sigma,
            total_discharge_ah=discharge_ah,
            discharge_imbalance_ah=self.bank.discharge_imbalance(),
            power_ctrl_times=self.controller.power_ctrl_times,
            on_off_cycles=self.rack.total_on_off_cycles(),
            vm_ctrl_times=self.controller.vm_ctrl_times,
            crash_count=stats.crash_count,
            dropped_gb=stats.dropped_gb,
            deadline_miss_rate=stats.deadline_miss_rate,
        )
