"""Log analysis helpers for the paper's comparison tables."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.telemetry.metrics import RunSummary


def improvement(optimised: float, baseline: float, higher_is_better: bool = True) -> float:
    """Relative improvement of ``optimised`` over ``baseline``.

    For lower-is-better metrics (latency), pass ``higher_is_better=False``
    and the sign convention still yields positive = improvement.
    """
    if baseline == 0:
        return 0.0 if optimised == 0 else float("inf")
    delta = (optimised - baseline) / abs(baseline)
    return delta if higher_is_better else -delta


def table6_row(summary: RunSummary) -> dict[str, float | int]:
    """Project a run summary onto Table 6's columns."""
    return {
        "load_kwh": round(summary.load_energy_kwh, 2),
        "effective_kwh": round(summary.effective_energy_kwh, 2),
        "power_ctrl_times": summary.power_ctrl_times,
        "on_off_cycles": summary.on_off_cycles,
        "vm_ctrl_times": summary.vm_ctrl_times,
        "min_battery_volt": round(summary.min_battery_voltage, 1),
        "end_of_day_volt": round(summary.end_battery_voltage, 1),
        "battery_volt_sigma": round(summary.battery_voltage_sigma, 2),
    }


def service_metrics(summary: RunSummary) -> dict[str, float]:
    """The service-related metric group of Figures 20-21."""
    return {
        "system_uptime": summary.uptime_fraction,
        "load_perf": summary.throughput_gb_per_hour,
        "avg_latency_min": summary.mean_delay_minutes,
    }


def system_metrics(summary: RunSummary) -> dict[str, float]:
    """The system-related metric group of Figures 20-21."""
    return {
        "ebuffer_avail_wh": summary.energy_availability_wh,
        "service_life_days": summary.projected_life_days,
        "perf_per_ah": summary.perf_per_ah_gb,
    }


def join_decisions(
    recorder,
    decisions: Iterable,
    channels: Sequence[str] | None = None,
) -> list[dict[str, Any]]:
    """Join decision events against the recorded trace channels.

    For every decision (a :class:`repro.obs.decisions.Decision` or any
    object with ``t``/``kind``/``source``/``data``), the nearest trace
    sample at or before the decision time is attached, giving the plant
    state the controller acted on.  Decisions before the first sample
    carry no channel values.

    Robust to the ragged ends of real logs: an empty recorder (or one
    with no channels yet) yields rows with no ``trace.*`` values, and a
    decision stamped *after* the final trace sample joins against that
    final sample — never an index error.

    Parameters
    ----------
    recorder:
        A :class:`~repro.sim.trace.TraceRecorder`, or a plain mapping of
        channel name to array (e.g. ``recorder.as_dict()`` or arrays
        reloaded from CSV); channel names are then the keys minus ``t``.
    decisions:
        Decision events, e.g. an ``Observability.decisions`` log or one
        reloaded via :meth:`repro.obs.decisions.DecisionLog.from_jsonl`.
    channels:
        Restrict the joined channels (default: all recorded channels).
    """
    if isinstance(recorder, Mapping):
        available: tuple[str, ...] = tuple(k for k in recorder if k != "t")
        t = np.asarray(recorder["t"], dtype=float) if "t" in recorder \
            else np.empty(0)
    else:
        available = recorder.names
        t = np.asarray(recorder["t"], dtype=float)
    names = tuple(channels) if channels is not None else available
    arrays = {name: np.asarray(recorder[name], dtype=float) for name in names}
    rows: list[dict[str, Any]] = []
    for decision in decisions:
        row: dict[str, Any] = {
            "t": decision.t,
            "kind": decision.kind,
            "source": decision.source,
        }
        for key, value in decision.data.items():
            row[f"data.{key}"] = value
        # Nearest sample at or before the decision; clamped so decisions
        # stamped after the final sample join against that last sample.
        index = min(int(np.searchsorted(t, decision.t, side="right")) - 1,
                    len(t) - 1)
        if index >= 0:
            row["trace_t"] = float(t[index])
            for name, values in arrays.items():
                if index < len(values):
                    row[f"trace.{name}"] = float(values[index])
        rows.append(row)
    return rows


def all_improvements(opt: RunSummary, base: RunSummary) -> dict[str, float]:
    """Figures 20-21: improvement on all six metrics, positive = better."""
    return {
        "system_uptime": improvement(opt.uptime_fraction, base.uptime_fraction),
        "load_perf": improvement(
            opt.throughput_gb_per_hour, base.throughput_gb_per_hour
        ),
        "avg_latency": improvement(
            opt.mean_delay_minutes, base.mean_delay_minutes, higher_is_better=False
        ),
        "ebuffer_avail": improvement(
            opt.energy_availability_wh, base.energy_availability_wh
        ),
        "service_life": improvement(
            opt.projected_life_days, base.projected_life_days
        ),
        "perf_per_ah": improvement(opt.perf_per_ah_gb, base.perf_per_ah_gb),
    }
