"""Log analysis helpers for the paper's comparison tables."""

from __future__ import annotations

from repro.telemetry.metrics import RunSummary


def improvement(optimised: float, baseline: float, higher_is_better: bool = True) -> float:
    """Relative improvement of ``optimised`` over ``baseline``.

    For lower-is-better metrics (latency), pass ``higher_is_better=False``
    and the sign convention still yields positive = improvement.
    """
    if baseline == 0:
        return 0.0 if optimised == 0 else float("inf")
    delta = (optimised - baseline) / abs(baseline)
    return delta if higher_is_better else -delta


def table6_row(summary: RunSummary) -> dict[str, float | int]:
    """Project a run summary onto Table 6's columns."""
    return {
        "load_kwh": round(summary.load_energy_kwh, 2),
        "effective_kwh": round(summary.effective_energy_kwh, 2),
        "power_ctrl_times": summary.power_ctrl_times,
        "on_off_cycles": summary.on_off_cycles,
        "vm_ctrl_times": summary.vm_ctrl_times,
        "min_battery_volt": round(summary.min_battery_voltage, 1),
        "end_of_day_volt": round(summary.end_battery_voltage, 1),
        "battery_volt_sigma": round(summary.battery_voltage_sigma, 2),
    }


def service_metrics(summary: RunSummary) -> dict[str, float]:
    """The service-related metric group of Figures 20-21."""
    return {
        "system_uptime": summary.uptime_fraction,
        "load_perf": summary.throughput_gb_per_hour,
        "avg_latency_min": summary.mean_delay_minutes,
    }


def system_metrics(summary: RunSummary) -> dict[str, float]:
    """The system-related metric group of Figures 20-21."""
    return {
        "ebuffer_avail_wh": summary.energy_availability_wh,
        "service_life_days": summary.projected_life_days,
        "perf_per_ah": summary.perf_per_ah_gb,
    }


def all_improvements(opt: RunSummary, base: RunSummary) -> dict[str, float]:
    """Figures 20-21: improvement on all six metrics, positive = better."""
    return {
        "system_uptime": improvement(opt.uptime_fraction, base.uptime_fraction),
        "load_perf": improvement(
            opt.throughput_gb_per_hour, base.throughput_gb_per_hour
        ),
        "avg_latency": improvement(
            opt.mean_delay_minutes, base.mean_delay_minutes, higher_is_better=False
        ),
        "ebuffer_avail": improvement(
            opt.energy_availability_wh, base.energy_availability_wh
        ),
        "service_life": improvement(
            opt.projected_life_days, base.projected_life_days
        ),
        "perf_per_ah": improvement(opt.perf_per_ah_gb, base.perf_per_ah_gb),
    }
