"""Terminal plotting for traces and summaries.

Field deployments rarely have a display server; these helpers render
recorder channels as Unicode sparklines and block charts directly in the
terminal, the way the examples and CLI present a day of operation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BLOCKS = " .:-=+*#%@"


def sparkline(
    values: Sequence[float],
    width: int = 48,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render ``values`` as a fixed-width character sparkline.

    Values are downsampled to ``width`` columns and mapped onto a ten-step
    intensity ramp between ``lo`` and ``hi`` (auto-ranged when omitted).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return " " * width
    idx = np.linspace(0, array.size - 1, width).astype(int)
    array = array[idx]
    lo = float(array.min()) if lo is None else lo
    hi = float(array.max()) if hi is None else hi
    if hi < lo:
        raise ValueError("hi must be >= lo")
    span = (hi - lo) or 1.0
    scaled = ((array - lo) / span * (len(_BLOCKS) - 1)).astype(int)
    scaled = np.clip(scaled, 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[s] for s in scaled)


def bar_chart(
    items: dict[str, float],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal bar chart of labelled values (non-negative)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if not items:
        return ""
    if any(v < 0 for v in items.values()):
        raise ValueError("bar_chart takes non-negative values")
    peak = max(items.values()) or 1.0
    label_width = max(len(k) for k in items)
    lines = []
    for key, value in items.items():
        bar = fill * max(0, round(value / peak * width))
        lines.append(f"{key:>{label_width}s} | {bar} {value:,.1f}")
    return "\n".join(lines)


def channel_panel(
    recorder,
    channels: Sequence[str],
    width: int = 48,
    labels: dict[str, str] | None = None,
) -> str:
    """Multi-channel dashboard of a trace recorder's data."""
    labels = labels or {}
    lines = []
    name_width = max(len(labels.get(c, c)) for c in channels)
    for channel in channels:
        label = labels.get(channel, channel)
        lines.append(f"{label:>{name_width}s} {sparkline(recorder[channel], width)}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 30,
) -> str:
    """Vertical-bar text histogram with bin edges."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return "(no data)"
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() or 1
    lines = []
    for count, lo_edge, hi_edge in zip(counts, edges[:-1], edges[1:], strict=False):
        bar = "#" * max(0, round(count / peak * width))
        lines.append(f"[{lo_edge:9.2f}, {hi_edge:9.2f}) | {bar} {count}")
    return "\n".join(lines)
