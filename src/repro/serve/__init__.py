"""Simulation-as-a-service: an asyncio daemon hosting live sessions.

The paper's in-situ installation is ultimately a *service* — a long-lived
plant whose controllers react to live signals — and this package turns
the reproduction into one.  ``repro serve`` boots a zero-dependency
asyncio daemon that hosts many concurrent simulation sessions:

* a session is created from a JSON :mod:`manifest <repro.serve.manifest>`
  (a golden cell id, a scenario cell, or an explicit configuration);
* the engine steps cooperatively in tick-budget slices
  (:mod:`repro.serve.session`), so hundreds of sessions interleave on
  one event loop;
* metrics, alerts, ledger deltas and decision events stream over
  Server-Sent Events (:mod:`repro.serve.sse`, fed by
  :class:`repro.obs.stream.StreamTap`);
* external clients inject decisions mid-run — attach a policy, force a
  limit, swap a governor, fire a raw control action — through the
  :mod:`repro.policy` registries, every injection recorded as an
  ``inject.*`` decision event so flight reports attribute it for free.

Determinism safety net: a served session with no injections reproduces
the pinned golden summaries within the
:class:`~repro.sim.fleet.validator.FleetValidator` tolerances (the
session's final ``summary`` event carries the verdict).

See ``docs/serving.md`` for the manifest schema, endpoint catalogue and
SSE event types.
"""

from repro.serve.client import ServeClient, SSEvent
from repro.serve.daemon import ServeDaemon
from repro.serve.manager import SessionManager
from repro.serve.manifest import (
    PolicySpec,
    SessionManifest,
    parse_manifest,
    render_manifest,
)
from repro.serve.session import Session, SessionError, SessionState
from repro.serve.sse import EventBuffer, SSEParser, encode_event

__all__ = [
    "EventBuffer",
    "PolicySpec",
    "SSEParser",
    "SSEvent",
    "ServeClient",
    "ServeDaemon",
    "Session",
    "SessionError",
    "SessionManager",
    "SessionManifest",
    "encode_event",
    "parse_manifest",
    "render_manifest",
]
