"""Blocking stdlib client for the serve daemon.

Used by the unit suite, the CI smoke driver and the examples; also a
reference for how to talk to the daemon from outside Python (the wire
format is plain HTTP + JSON + ``text/event-stream``, so ``curl`` works
— see ``docs/serving.md``).

The client is deliberately synchronous (``http.client``, no asyncio):
the daemon serves from its own process/loop, and most callers — tests,
CI drivers, notebooks — want simple call-and-return semantics plus a
generator for the event stream.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from collections.abc import Iterator, Mapping
from typing import Any

from repro.serve.sse import SSEParser


class ServeError(RuntimeError):
    """Non-2xx response from the daemon."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


@dataclass(frozen=True)
class SSEvent:
    """One decoded server-sent event."""

    id: int | None
    event: str
    data: str

    @property
    def payload(self) -> Any:
        """The event's JSON payload (None when data is empty)."""
        return json.loads(self.data) if self.data else None


class ServeClient:
    """Thin wrapper over the daemon's HTTP API."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Mapping[str, Any] | None = None) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    message = json.loads(raw).get("error", raw)
                except (json.JSONDecodeError, AttributeError):
                    message = raw
                raise ServeError(response.status, message)
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                return json.loads(raw)
            return raw
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Daemon-level
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def wait_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the daemon answers (boot barrier)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, ServeError) as exc:
                last_error = exc
                time.sleep(interval)
        raise TimeoutError(
            f"daemon at {self.host}:{self.port} not ready after {timeout}s: "
            f"{last_error}"
        )

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def cells(self) -> list[str]:
        return self._request("GET", "/v1/cells")["cells"]

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def create_session(self, manifest: Mapping[str, Any],
                       autostart: bool = True) -> dict:
        return self._request("POST", "/v1/sessions",
                             {**dict(manifest), "autostart": autostart})

    def list_sessions(self) -> list[dict]:
        return self._request("GET", "/v1/sessions")["sessions"]

    def get_session(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}")

    def start(self, session_id: str) -> dict:
        return self._request("POST", f"/v1/sessions/{session_id}/start")

    def pause(self, session_id: str) -> dict:
        return self._request("POST", f"/v1/sessions/{session_id}/pause")

    def resume(self, session_id: str) -> dict:
        return self._request("POST", f"/v1/sessions/{session_id}/resume")

    def inject(self, session_id: str, payload: Mapping[str, Any]) -> dict:
        return self._request("POST", f"/v1/sessions/{session_id}/inject",
                             dict(payload))

    def summary(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}/summary")

    def session_metrics(self, session_id: str) -> str:
        return self._request("GET", f"/v1/sessions/{session_id}/metrics")

    def delete_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def wait_done(self, session_id: str, timeout: float = 120.0,
                  interval: float = 0.2) -> dict:
        """Poll the session descriptor until it reaches done/failed."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.get_session(session_id)
            if info["state"] in ("done", "failed"):
                return info
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"session {session_id} still {info['state']} "
                    f"after {timeout}s ({info['ticks_done']}"
                    f"/{info['total_ticks']} ticks)"
                )
            time.sleep(interval)

    # ------------------------------------------------------------------
    # Event streaming
    # ------------------------------------------------------------------
    def stream(self, session_id: str, last_event_id: int = 0,
               stop_on_end: bool = True) -> Iterator[SSEvent]:
        """Yield the session's SSE events (blocking generator).

        Resumes from ``last_event_id`` via the ``Last-Event-ID`` header;
        by default the generator finishes when the ``end`` event arrives
        (the stream outlives the run, so without ``stop_on_end`` the
        caller must break out or the read will eventually time out).
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Accept": "text/event-stream"}
            if last_event_id:
                headers["Last-Event-ID"] = str(last_event_id)
            conn.request("GET", f"/v1/sessions/{session_id}/events",
                         headers=headers)
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read().decode("utf-8")
                try:
                    message = json.loads(raw).get("error", raw)
                except (json.JSONDecodeError, AttributeError):
                    message = raw
                raise ServeError(response.status, message)
            parser = SSEParser()
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    return  # server closed the stream
                for parsed in parser.feed(chunk):
                    event = SSEvent(id=parsed.id, event=parsed.event,
                                    data=parsed.data)
                    yield event
                    if stop_on_end and event.event == "end":
                        return
        finally:
            conn.close()
