"""The asyncio daemon: zero-dependency HTTP + SSE over ``asyncio.start_server``.

No third-party web stack: requests are parsed from the raw stream (the
subset of HTTP/1.1 a JSON-API needs), responses close the connection,
and event streams are plain ``text/event-stream`` bodies fed from each
session's replay buffer.  Everything runs on one event loop: the
:class:`~repro.serve.manager.SessionManager` pump interleaves simulation
slices with request handling, so the daemon stays responsive while
hundreds of sessions step.

Endpoint catalogue (see ``docs/serving.md`` for payloads)::

    GET    /healthz                     liveness + session count
    GET    /metrics                     daemon-level Prometheus exposition
    GET    /v1/cells                    every pinned cell id
    GET    /v1/sessions                 list session descriptors
    POST   /v1/sessions                 create from a manifest (+autostart)
    GET    /v1/sessions/{id}            one session descriptor
    DELETE /v1/sessions/{id}            reap a session
    POST   /v1/sessions/{id}/start      lifecycle transitions
    POST   /v1/sessions/{id}/pause
    POST   /v1/sessions/{id}/resume
    POST   /v1/sessions/{id}/inject     decision injection
    GET    /v1/sessions/{id}/events     SSE stream (Last-Event-ID resume)
    GET    /v1/sessions/{id}/summary    final summary (409 until done)
    GET    /v1/sessions/{id}/metrics    per-session Prometheus exposition
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections.abc import Mapping
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.serve.manager import CapacityError, SessionManager
from repro.serve.manifest import ManifestError, parse_manifest
from repro.serve.session import Session, SessionError, SessionState
from repro.serve.sse import encode_comment

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8737
#: Largest accepted request body (a manifest is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20
#: Idle seconds between SSE keep-alive comments.
SSE_HEARTBEAT_S = 10.0

_STATUS_TEXT = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Terminates a request with a status + JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _response(status: int, body: bytes, content_type: str) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Any) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _response(status, body, "application/json")


def _text_response(status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> bytes:
    return _response(status, text.encode(), content_type)


class ServeDaemon:
    """Bind, accept, route; owns the session manager and its pump."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_sessions: int = 64,
        max_buffered_events: int = 4096,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = SessionManager(max_sessions=max_sessions,
                                      max_buffered_events=max_buffered_events)
        self._server: asyncio.AbstractServer | None = None
        self._pump: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (port 0 picks an ephemeral port) and start
        the stepping pump."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump = asyncio.create_task(self.manager.run())

    async def stop(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        await self.start()
        print(f"repro serve: listening on http://{self.host}:{self.port} "
              f"(max {self.manager.max_sessions} sessions)", flush=True)
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            method, target, headers, body = await self._read_request(reader)
            await self._route(method, target, headers, body, writer)
        except HttpError as exc:
            writer.write(_json_response(exc.status, {"error": str(exc)}))
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # never kill the daemon on one request
            try:
                writer.write(_json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, Mapping):
            raise HttpError(400, "body must be a JSON object")
        return dict(payload)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, target: str, headers: Mapping[str, str],
                     body: bytes, writer: asyncio.StreamWriter) -> None:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        segments = [s for s in path.split("/") if s]

        if path == "/healthz" and method == "GET":
            writer.write(_json_response(200, {
                "ok": True,
                "sessions": len(self.manager.sessions),
                "live": len(self.manager.live_sessions()),
            }))
            return
        if path == "/metrics" and method == "GET":
            writer.write(_text_response(200, self.manager.registry.to_prometheus()))
            return
        if path == "/v1/cells" and method == "GET":
            from repro.validate.golden import available_cell_ids

            writer.write(_json_response(200, {"cells": available_cell_ids()}))
            return
        if path == "/v1/sessions":
            if method == "GET":
                writer.write(_json_response(
                    200, {"sessions": self.manager.list_info()}))
                return
            if method == "POST":
                self._create_session(body, writer)
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if len(segments) >= 3 and segments[:2] == ["v1", "sessions"]:
            session = self._session_or_404(segments[2])
            action = segments[3] if len(segments) > 3 else None
            await self._route_session(method, session, action, body,
                                      headers, query, writer)
            return
        raise HttpError(404, f"no route {method} {path}")

    def _session_or_404(self, session_id: str) -> Session:
        try:
            return self.manager.get(session_id)
        except KeyError as exc:
            raise HttpError(404, str(exc)) from None

    def _create_session(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        payload = self._json_body(body)
        autostart = bool(payload.pop("autostart", True))
        try:
            manifest = parse_manifest(payload)
            session = self.manager.create(manifest, autostart=autostart)
        except ManifestError as exc:
            raise HttpError(400, str(exc)) from None
        except CapacityError as exc:
            raise HttpError(503, str(exc)) from None
        writer.write(_json_response(201, session.info()))

    async def _route_session(
        self, method: str, session: Session, action: str | None, body: bytes,
        headers: Mapping[str, str], query: Mapping[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        if action is None:
            if method == "GET":
                writer.write(_json_response(200, session.info()))
                return
            if method == "DELETE":
                self.manager.remove(session.id)
                writer.write(_json_response(200, {"session": session.id,
                                                  "reaped": True}))
                return
            raise HttpError(405, f"{method} not allowed on a session")
        if action in ("start", "pause", "resume") and method == "POST":
            try:
                getattr(session, action)()
            except SessionError as exc:
                raise HttpError(409, str(exc)) from None
            self.manager.kick()
            writer.write(_json_response(200, session.info()))
            return
        if action == "inject" and method == "POST":
            try:
                ack = session.inject(self._json_body(body))
            except SessionError as exc:
                raise HttpError(400, str(exc)) from None
            self.manager.note_injection()
            writer.write(_json_response(200, ack))
            return
        if action == "summary" and method == "GET":
            if session.summary_payload is None:
                raise HttpError(
                    409, f"session {session.id} is {session.state}; "
                         f"summary available once done")
            writer.write(_json_response(200, session.summary_payload))
            return
        if action == "metrics" and method == "GET":
            writer.write(_text_response(
                200, session.obs.registry.to_prometheus()))
            return
        if action == "events" and method == "GET":
            await self._stream_events(session, headers, query, writer)
            return
        raise HttpError(404, f"no session action {action!r}")

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------
    async def _stream_events(
        self, session: Session, headers: Mapping[str, str],
        query: Mapping[str, str], writer: asyncio.StreamWriter,
    ) -> None:
        raw = headers.get("last-event-id", query.get("last_event_id", "0"))
        try:
            last_id = int(raw)
        except ValueError:
            last_id = 0

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        queue: asyncio.Queue = asyncio.Queue()
        listener = queue.put_nowait
        # Subscribe *before* replay so nothing appended mid-replay is
        # lost; the id filter below drops any duplicates that race in.
        session.events.subscribe(listener)
        try:
            ended = False
            for event in session.events.events_after(last_id):
                writer.write(event.encode())
                last_id = event.id
                ended = ended or event.event == "end"
            await writer.drain()
            while not ended:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=SSE_HEARTBEAT_S)
                except asyncio.TimeoutError:
                    writer.write(encode_comment("keep-alive"))
                    await writer.drain()
                    continue
                if event.id <= last_id:
                    continue
                writer.write(event.encode())
                last_id = event.id
                await writer.drain()
                ended = event.event == "end"
        finally:
            session.events.unsubscribe(listener)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="simulation-as-a-service daemon (SSE streaming telemetry)",
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--max-sessions", type=int, default=64,
                        help="live-session capacity (default 64)")
    parser.add_argument("--max-buffered-events", type=int, default=4096,
                        help="per-session SSE replay buffer (default 4096)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    daemon = ServeDaemon(
        host=args.host, port=args.port, max_sessions=args.max_sessions,
        max_buffered_events=args.max_buffered_events,
    )
    try:
        asyncio.run(daemon.serve_forever())
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI/CI
    sys.exit(main())
