"""Session manifests: the JSON wire schema a session is created from.

A manifest is one JSON object.  Two forms:

**Cell form** — replay a pinned cell by id, the determinism-guaranteed
path (``repro validate`` pins these exact configurations)::

    {"cell": "insure:seismic:cloudy"}
    {"cell": "scenario-grid-hybrid", "tick_slice": 480}

The plant axes, seed and policies come from the pinned configuration;
only the pacing knobs (``duration_s``, ``tick_slice``, ``trace_stride``)
may be overridden.  A full-length, injection-free session over a cell
manifest reproduces the stored golden summary within the
:class:`~repro.sim.fleet.validator.FleetValidator` tolerances.

**Explicit form** — spell out the configuration::

    {"controller": "insure", "workload": "video", "weather": "sunny",
     "mean_w": 800.0, "seed": 7, "duration_s": 43200.0,
     "policies": [{"name": "carbon-duty", "signal": "carbon",
                   "governor": "step:420=80%:560=60%",
                   "control": "duty_cap", "interval_s": 300.0}]}

Policy entries use the :mod:`repro.policy` registry grammar verbatim —
``signal``/``control`` are registry names, ``governor`` is a
``parse_governor`` rule string — so the wire format and the Python API
share one vocabulary.  Every field is validated at parse time; parsing
is total over rendered manifests (``parse(render(m)) == m``, property
tested in ``tests/serve/test_manifest.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

from repro.validate.golden import (
    BASE_SEED,
    DT_SECONDS,
    DURATION_S,
    INITIAL_SOC,
    TARGET_MEAN_W,
    available_cell_ids,
)

CONTROLLERS = ("insure", "baseline")
WORKLOADS = ("video", "seismic")
WEATHERS = ("sunny", "cloudy", "rainy")

#: Default ticks per cooperative slice — ~10 ms of engine work, so a
#: few hundred live sessions still turn the event loop over quickly.
DEFAULT_TICK_SLICE = 240
DEFAULT_TRACE_STRIDE = 16

#: Keys a cell-form manifest may carry besides ``cell`` itself.
_CELL_OVERRIDES = frozenset({"duration_s", "tick_slice", "trace_stride"})
_EXPLICIT_KEYS = frozenset({
    "controller", "workload", "weather", "mean_w", "seed", "initial_soc",
    "dt", "duration_s", "tick_slice", "trace_stride", "policies",
})
_POLICY_KEYS = frozenset({"name", "signal", "governor", "control", "interval_s"})

#: Controls that turn the DVFS duty knob, which only the insure
#: controller exposes (the baseline controller has no duty cycling).
DVFS_CONTROLS = frozenset({"duty_cap"})


class ManifestError(ValueError):
    """Raised on any invalid manifest payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class PolicySpec:
    """One policy overlay in registry wire format."""

    name: str
    signal: str
    governor: str
    control: str
    interval_s: float = 300.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "signal": self.signal,
            "governor": self.governor,
            "control": self.control,
            "interval_s": self.interval_s,
        }


@dataclass(frozen=True)
class SessionManifest:
    """A fully resolved session configuration."""

    controller: str = "insure"
    workload: str = "seismic"
    weather: str = "sunny"
    mean_w: float = TARGET_MEAN_W
    seed: int = BASE_SEED
    initial_soc: float = INITIAL_SOC
    dt: float = DT_SECONDS
    duration_s: float = DURATION_S
    tick_slice: int = DEFAULT_TICK_SLICE
    trace_stride: int = DEFAULT_TRACE_STRIDE
    policies: tuple[PolicySpec, ...] = ()
    #: The pinned cell id this manifest was resolved from (None for the
    #: explicit form).  Cell-backed sessions get a golden verdict in
    #: their final ``summary`` event.
    cell: str | None = None

    @property
    def total_ticks(self) -> int:
        return max(1, round(self.duration_s / self.dt))


def _unknown_cell(cell_id: str) -> ManifestError:
    listing = "\n  ".join(available_cell_ids())
    return ManifestError(
        f"unknown cell {cell_id!r}; available cells:\n  {listing}"
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _number(payload: Mapping[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{key} must be a number, got {value!r}")
    return float(value)


def _integer(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{key} must be an integer, got {value!r}")
    return int(value)


def parse_policy(payload: Mapping[str, Any]) -> PolicySpec:
    """Validate one policy entry against the :mod:`repro.policy` registry."""
    from repro.policy.registry import (
        control_names,
        make_governor,
        signal_names,
    )

    _require(isinstance(payload, Mapping), f"policy must be an object, got {payload!r}")
    unknown = set(payload) - _POLICY_KEYS
    _require(not unknown, f"unknown policy keys {sorted(unknown)}")
    for key in ("name", "signal", "governor", "control"):
        _require(isinstance(payload.get(key), str) and payload.get(key),
                 f"policy {key} must be a non-empty string")
    _require(payload["signal"] in signal_names(),
             f"unknown signal {payload['signal']!r}; known: {signal_names()}")
    _require(payload["control"] in control_names(),
             f"unknown control {payload['control']!r}; known: {control_names()}")
    try:
        make_governor(payload["governor"])
    except ValueError as exc:
        raise ManifestError(f"bad governor spec: {exc}") from None
    interval_s = _number(payload, "interval_s", 300.0)
    _require(interval_s > 0, f"interval_s must be positive, got {interval_s}")
    return PolicySpec(
        name=payload["name"],
        signal=payload["signal"],
        governor=payload["governor"],
        control=payload["control"],
        interval_s=interval_s,
    )


def _parse_cell_form(payload: Mapping[str, Any]) -> SessionManifest:
    cell_id = payload["cell"]
    _require(isinstance(cell_id, str), f"cell must be a string, got {cell_id!r}")
    extras = set(payload) - {"cell"} - _CELL_OVERRIDES
    _require(
        not extras,
        f"cell manifests pin the plant configuration; remove {sorted(extras)} "
        f"(only {sorted(_CELL_OVERRIDES)} may be overridden)",
    )
    if cell_id.startswith("scenario-"):
        from repro.experiments.scenarios import (
            SCENARIOS,
            get_scenario,
            scenario_seed,
        )

        name = cell_id[len("scenario-"):]
        if name not in SCENARIOS:
            raise _unknown_cell(cell_id)
        spec = get_scenario(name)
        controller, workload, weather = spec.controller, spec.workload, spec.weather
        seed = scenario_seed(name)
        policies = tuple(
            PolicySpec(name=p.name, signal=p.signal, governor=p.governor,
                       control=p.control, interval_s=p.interval_s)
            for p in spec.policies
        )
    else:
        parts = cell_id.split(":")
        if len(parts) != 3:
            raise _unknown_cell(cell_id)
        controller, workload, weather = parts
        if (controller not in CONTROLLERS or workload not in WORKLOADS
                or weather not in WEATHERS):
            raise _unknown_cell(cell_id)
        from repro.experiments.runner import derive_seed

        seed = derive_seed(BASE_SEED, controller, workload, weather)
        policies = ()

    duration_s = _number(payload, "duration_s", DURATION_S)
    _require(duration_s > 0, f"duration_s must be positive, got {duration_s}")
    tick_slice = _integer(payload, "tick_slice", DEFAULT_TICK_SLICE)
    _require(tick_slice >= 1, f"tick_slice must be >= 1, got {tick_slice}")
    trace_stride = _integer(payload, "trace_stride", DEFAULT_TRACE_STRIDE)
    _require(trace_stride >= 1, f"trace_stride must be >= 1, got {trace_stride}")
    return SessionManifest(
        controller=controller, workload=workload, weather=weather,
        mean_w=TARGET_MEAN_W, seed=seed, initial_soc=INITIAL_SOC,
        dt=DT_SECONDS, duration_s=duration_s, tick_slice=tick_slice,
        trace_stride=trace_stride, policies=policies, cell=cell_id,
    )


def parse_manifest(payload: Mapping[str, Any]) -> SessionManifest:
    """Validate a JSON manifest object into a :class:`SessionManifest`.

    Raises :class:`ManifestError` (a ``ValueError``) naming the offending
    field; unknown-cell errors list every available cell id.
    """
    _require(isinstance(payload, Mapping),
             f"manifest must be a JSON object, got {type(payload).__name__}")
    if "cell" in payload:
        return _parse_cell_form(payload)

    unknown = set(payload) - _EXPLICIT_KEYS
    _require(not unknown, f"unknown manifest keys {sorted(unknown)}")
    controller = payload.get("controller", "insure")
    _require(controller in CONTROLLERS,
             f"controller must be one of {CONTROLLERS}, got {controller!r}")
    workload = payload.get("workload", "seismic")
    _require(workload in WORKLOADS,
             f"workload must be one of {WORKLOADS}, got {workload!r}")
    weather = payload.get("weather", "sunny")
    _require(weather in WEATHERS,
             f"weather must be one of {WEATHERS}, got {weather!r}")

    mean_w = _number(payload, "mean_w", TARGET_MEAN_W)
    _require(mean_w > 0, f"mean_w must be positive, got {mean_w}")
    seed = _integer(payload, "seed", BASE_SEED)
    _require(seed >= 0, f"seed must be non-negative, got {seed}")
    initial_soc = _number(payload, "initial_soc", INITIAL_SOC)
    _require(0.0 < initial_soc <= 1.0,
             f"initial_soc must be in (0, 1], got {initial_soc}")
    dt = _number(payload, "dt", DT_SECONDS)
    _require(dt > 0, f"dt must be positive, got {dt}")
    duration_s = _number(payload, "duration_s", DURATION_S)
    _require(duration_s > 0, f"duration_s must be positive, got {duration_s}")
    tick_slice = _integer(payload, "tick_slice", DEFAULT_TICK_SLICE)
    _require(tick_slice >= 1, f"tick_slice must be >= 1, got {tick_slice}")
    trace_stride = _integer(payload, "trace_stride", DEFAULT_TRACE_STRIDE)
    _require(trace_stride >= 1, f"trace_stride must be >= 1, got {trace_stride}")

    raw_policies = payload.get("policies", [])
    _require(isinstance(raw_policies, (list, tuple)),
             f"policies must be a list, got {raw_policies!r}")
    policies = tuple(parse_policy(p) for p in raw_policies)
    if controller != "insure":
        for spec in policies:
            _require(
                spec.control not in DVFS_CONTROLS,
                f"control {spec.control!r} (policy {spec.name!r}) requires "
                f"the insure controller; {controller!r} has no DVFS duty knob",
            )
    return SessionManifest(
        controller=controller, workload=workload, weather=weather,
        mean_w=mean_w, seed=seed, initial_soc=initial_soc, dt=dt,
        duration_s=duration_s, tick_slice=tick_slice,
        trace_stride=trace_stride, policies=policies, cell=None,
    )


def render_manifest(manifest: SessionManifest) -> dict[str, Any]:
    """The canonical JSON form; ``parse_manifest`` round-trips it exactly.

    Cell manifests render as their compact cell form (the pinned fields
    are re-derived on parse); explicit manifests render every field.
    """
    if manifest.cell is not None:
        return {
            "cell": manifest.cell,
            "duration_s": manifest.duration_s,
            "tick_slice": manifest.tick_slice,
            "trace_stride": manifest.trace_stride,
        }
    return {
        "controller": manifest.controller,
        "workload": manifest.workload,
        "weather": manifest.weather,
        "mean_w": manifest.mean_w,
        "seed": manifest.seed,
        "initial_soc": manifest.initial_soc,
        "dt": manifest.dt,
        "duration_s": manifest.duration_s,
        "tick_slice": manifest.tick_slice,
        "trace_stride": manifest.trace_stride,
        "policies": [p.to_dict() for p in manifest.policies],
    }


def build_policies(manifest: SessionManifest) -> list:
    """Instantiate the manifest's policy overlays for its seed."""
    from repro.policy.policy import Policy
    from repro.policy.registry import make_control, make_governor, make_signal

    return [
        Policy(
            name=spec.name,
            signal=make_signal(spec.signal, seed=manifest.seed),
            governor=make_governor(spec.governor),
            control=make_control(spec.control),
            interval_s=spec.interval_s,
        )
        for spec in manifest.policies
    ]


def build_session_system(manifest: SessionManifest):
    """Assemble the (system, observability) pair a session runs.

    Observability is attached with the ledger and alert engine on — the
    streaming payload sources — which is proven read-only, so cell-backed
    sessions still reproduce their pinned summaries.
    """
    from repro.core.system import build_system
    from repro.obs.hub import Observability
    from repro.solar.traces import make_day_trace
    from repro.validate.golden import _make_workload

    trace = make_day_trace(manifest.weather, dt_seconds=manifest.dt,
                           seed=manifest.seed, target_mean_w=manifest.mean_w)
    obs = Observability(trace_stride=manifest.trace_stride)
    system = build_system(
        trace, _make_workload(manifest.workload),
        controller=manifest.controller, seed=manifest.seed,
        initial_soc=manifest.initial_soc, dt=manifest.dt,
        observability=obs, policies=build_policies(manifest),
    )
    return system, obs


def golden_record_name(cell_id: str) -> str:
    """Map a manifest cell id onto its golden record file stem."""
    if cell_id.startswith("scenario-"):
        return cell_id
    controller, workload, weather = cell_id.split(":")
    from repro.validate.golden import cell_name

    return cell_name(controller, workload, weather)


def golden_verdict(manifest: SessionManifest, summary: Mapping[str, Any]):
    """Compare a served summary against the manifest's pinned golden record.

    Returns a :class:`~repro.sim.fleet.validator.CellVerdict`, or None
    when the manifest is not cell-backed, the session ran a non-pinned
    horizon, or no record exists on disk.
    """
    if manifest.cell is None or manifest.duration_s != DURATION_S:
        return None
    from repro.sim.fleet.validator import compare_summaries
    from repro.validate.golden import load_record

    name = golden_record_name(manifest.cell)
    try:
        record = load_record(name)
    except FileNotFoundError:
        return None
    return compare_summaries(name, dict(summary), record["summary"])
